//! Workspace symbol table, call graph, and transitive panic reachability.
//!
//! [`Workspace`] flattens every parsed file's functions into one table
//! with (type, method) and free-function indexes, infers receiver types
//! from parameter/`let`/field declarations, and resolves call edges. On
//! top of that, [`check_panic_path`] implements the `panic_path` rule:
//! a protocol-path function whose call graph *reaches* a panic source
//! (`.unwrap()` / `.expect()` / panic macro / non-literal index) through
//! at least one call edge is a finding — the single-line `panic` rule
//! cannot see a panic laundered through a helper, which is exactly how
//! reproductions drift from their panic-freedom claims.
//!
//! Crates `pairing`, `bigint`, `hash` and `parallel` are *trusted
//! leaves*: constant-size field/curve arithmetic indexes fixed-length
//! arrays pervasively, is covered by its own property tests, and takes
//! no attacker-controlled lengths, so their bodies are neither scanned
//! for sources nor traversed for edges. An `// lint: allow(panic,
//! reason=…)` at a source line removes that source from the can-panic
//! set, so one documented invariant silences the whole caller chain.

use std::collections::HashMap;

use crate::ast::{Ast, Expr, FnDecl, Item, Param};
use crate::rules::{FileCtx, Finding, Report, RULE_PANIC, RULE_PANIC_PATH};

/// Protocol-path prefixes whose functions are `panic_path` roots.
const PANIC_PATH_ROOTS: [&str; 6] = [
    "crates/ibs/src/",
    "crates/merkle/src/",
    "crates/core/src/",
    "crates/cloudsim/src/",
    "crates/resilience/src/",
    "crates/analyzer/src/",
];

/// Crates treated as non-panicking leaves (see module docs). `testkit` is
/// here because its fault injector *deliberately* mangles payloads with
/// bounded random indexing — it is test harness, not protocol path.
const TRUSTED_CRATES: [&str; 5] = [
    "crates/pairing/",
    "crates/bigint/",
    "crates/hash/",
    "crates/parallel/",
    "crates/testkit/",
];

/// Macros that panic when reached (kept in sync with the token rule).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// One function in the flattened workspace table.
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Owning type for methods/associated fns (`impl` head or trait).
    pub owner: Option<String>,
    /// Parameters (receiver included as `self: Self`).
    pub params: Vec<Param>,
    /// Return type text.
    pub ret: Option<String>,
    /// Body expression tree (`None` for trait signatures).
    pub body: Option<Expr>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Test-only functions are excluded from roots and sources.
    pub is_test: bool,
}

/// The whole-workspace symbol table and call graph.
pub struct Workspace {
    /// Workspace-relative file paths, parallel to the parse inputs.
    pub files: Vec<String>,
    /// Flattened function table.
    pub fns: Vec<FnNode>,
    /// Struct name → field name → field type text.
    pub struct_fields: HashMap<String, HashMap<String, String>>,
    /// `(type, method)` → fn indices.
    by_type_method: HashMap<(String, String), Vec<usize>>,
    /// Free functions by name.
    free_by_name: HashMap<String, Vec<usize>>,
    /// All methods by name (for unresolved receivers).
    methods_by_name: HashMap<String, Vec<usize>>,
    /// Per-fn resolved call edges `(callee fn, call line)`.
    edges: Vec<Vec<(usize, u32)>>,
}

impl Workspace {
    /// Builds the symbol table and call graph from parsed files.
    pub fn build(parsed: Vec<(String, Ast)>) -> Self {
        let mut ws = Workspace {
            files: Vec::with_capacity(parsed.len()),
            fns: Vec::new(),
            struct_fields: HashMap::new(),
            by_type_method: HashMap::new(),
            free_by_name: HashMap::new(),
            methods_by_name: HashMap::new(),
            edges: Vec::new(),
        };
        for (path, ast) in parsed {
            let file_idx = ws.files.len();
            ws.files.push(path);
            flatten_items(ast.items, file_idx, None, false, &mut ws);
        }
        for (i, f) in ws.fns.iter().enumerate() {
            match &f.owner {
                Some(owner) => {
                    ws.by_type_method
                        .entry((owner.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    ws.methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(i);
                }
                None => ws.free_by_name.entry(f.name.clone()).or_default().push(i),
            }
        }
        ws.edges = (0..ws.fns.len()).map(|i| ws.resolve_edges(i)).collect();
        ws
    }

    /// The file path of a fn.
    pub fn path_of(&self, fn_idx: usize) -> &str {
        self.fns
            .get(fn_idx)
            .and_then(|f| self.files.get(f.file))
            .map_or("", String::as_str)
    }

    /// Resolved call edges of a fn: `(callee index, call line)`.
    pub fn edges_of(&self, fn_idx: usize) -> &[(usize, u32)] {
        self.edges.get(fn_idx).map_or(&[], Vec::as_slice)
    }

    /// Iterates per-fn summaries to fixpoint with a reverse-edge worklist:
    /// after one full pass, a fn is re-examined only when a callee whose
    /// summary it reads actually changed. `edges_of` is built with the
    /// same call resolution the analyses use, so the dependency set is
    /// exact — this computes the identical fixpoint to the old
    /// whole-program rounds at a fraction of the body walks. Summaries
    /// only grow, so the per-fn requeue budget (mirroring the old
    /// 12-round cap) only guards degenerate resolution cycles.
    pub fn fixpoint_summaries<S, F>(&self, default: S, mut analyze: F) -> Vec<S>
    where
        S: Copy + PartialEq,
        F: FnMut(usize, &[S]) -> S,
    {
        let n = self.fns.len();
        let mut summaries = vec![default; n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for caller in 0..n {
            for &(callee, _) in self.edges_of(caller) {
                if let Some(v) = rev.get_mut(callee) {
                    v.push(caller);
                }
            }
        }
        for v in &mut rev {
            v.sort_unstable();
            v.dedup();
        }
        // Seed in DFS post-order — callees before callers — so most fns
        // see their callees' final summaries on the first analysis and
        // the requeue tail stays short.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 expanded, 2 emitted
        for root in 0..n {
            if state.get(root).copied() != Some(0) {
                continue;
            }
            let mut stack = vec![root];
            while let Some(&i) = stack.last() {
                match state.get(i).copied() {
                    Some(0) => {
                        if let Some(s) = state.get_mut(i) {
                            *s = 1;
                        }
                        for &(callee, _) in self.edges_of(i) {
                            if state.get(callee).copied() == Some(0) {
                                stack.push(callee);
                            }
                        }
                    }
                    Some(1) => {
                        if let Some(s) = state.get_mut(i) {
                            *s = 2;
                        }
                        order.push(i);
                        stack.pop();
                    }
                    _ => {
                        stack.pop();
                    }
                }
            }
        }
        let mut queue: std::collections::VecDeque<usize> = order.into_iter().collect();
        let mut queued = vec![true; n];
        let mut budget = vec![12u8; n];
        while let Some(i) = queue.pop_front() {
            if let Some(q) = queued.get_mut(i) {
                *q = false;
            }
            let next = analyze(i, &summaries);
            if summaries.get(i).copied() == Some(next) {
                continue;
            }
            if let Some(slot) = summaries.get_mut(i) {
                *slot = next;
            }
            for &caller in rev.get(i).map_or(&[][..], Vec::as_slice) {
                if queued.get(caller).copied() != Some(false) {
                    continue;
                }
                let Some(b) = budget.get_mut(caller) else {
                    continue;
                };
                if *b == 0 {
                    continue;
                }
                *b -= 1;
                if let Some(q) = queued.get_mut(caller) {
                    *q = true;
                }
                queue.push_back(caller);
            }
        }
        summaries
    }

    /// Resolves the functions a `Type::name` / free-name call can reach.
    pub fn resolve_call(&self, segs: &[String], owner: Option<&str>) -> Vec<usize> {
        let Some(name) = segs.last() else {
            return Vec::new();
        };
        if segs.len() >= 2 {
            let ty = segs
                .get(segs.len().wrapping_sub(2))
                .map_or("", String::as_str);
            let ty = if ty == "Self" {
                owner.unwrap_or(ty)
            } else {
                ty
            };
            if let Some(v) = self.by_type_method.get(&(ty.to_string(), name.clone())) {
                return v.clone();
            }
            // Module-qualified free fn (`seccloud_hash::sha256`): the
            // qualifier is lowercase, the name resolves to free fns.
            if ty.chars().next().is_some_and(char::is_lowercase) {
                if let Some(v) = self.free_by_name.get(name) {
                    return v.clone();
                }
            }
            return Vec::new();
        }
        self.free_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolves a method call: exact `(receiver type, name)` when the
    /// receiver type is inferable, otherwise the union of same-named
    /// workspace methods — narrowed to candidates that actually take a
    /// `self` receiver plus `argc` arguments, so `sig.verify(a, b, c)`
    /// does not pick up every 2- or 6-parameter `verify` in the tree.
    pub fn resolve_method(&self, recv_ty: Option<&str>, name: &str, argc: usize) -> Vec<usize> {
        if let Some(ty) = recv_ty {
            if let Some(v) = self.by_type_method.get(&(ty.to_string(), name.to_string())) {
                return v.clone();
            }
            // A typed receiver that has no such method: a std/primitive
            // method (`.min()`, `.push()`) — no workspace edge.
            if self.struct_fields.contains_key(ty) {
                return Vec::new();
            }
        }
        let Some(all) = self.methods_by_name.get(name) else {
            return Vec::new();
        };
        all.iter()
            .copied()
            .filter(|&i| {
                self.fns.get(i).is_some_and(|f| {
                    f.params.first().is_some_and(|p| p.name == "self") && f.params.len() == argc + 1
                })
            })
            .collect()
    }

    fn resolve_edges(&self, fn_idx: usize) -> Vec<(usize, u32)> {
        let Some(f) = self.fns.get(fn_idx) else {
            return Vec::new();
        };
        let Some(body) = &f.body else {
            return Vec::new();
        };
        let typer = Typer::for_fn(self, f);
        let mut out = Vec::new();
        body.walk(&mut |e| match e {
            Expr::Call { callee, line, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    for t in self.resolve_call(segs, f.owner.as_deref()) {
                        out.push((t, *line));
                    }
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                let recv_ty = typer.infer(recv);
                for t in self.resolve_method(recv_ty.as_deref(), name, args.len()) {
                    out.push((t, *line));
                }
            }
            _ => {}
        });
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Moves items into the flat fn table, tracking impl owner and test
/// gating.
fn flatten_items(
    items: Vec<Item>,
    file_idx: usize,
    _owner: Option<&str>,
    under_test: bool,
    ws: &mut Workspace,
) {
    for item in items {
        match item {
            Item::Fn(decl) => push_fn(decl, file_idx, None, under_test, ws),
            Item::Impl { type_name, fns, .. } => {
                for decl in fns {
                    push_fn(decl, file_idx, Some(type_name.clone()), under_test, ws);
                }
            }
            Item::Trait { name, fns } => {
                for decl in fns {
                    push_fn(decl, file_idx, Some(name.clone()), under_test, ws);
                }
            }
            Item::Mod { items, is_test, .. } => {
                flatten_items(items, file_idx, None, under_test || is_test, ws);
            }
            Item::Struct { name, fields, .. } => {
                let entry = ws.struct_fields.entry(name).or_default();
                for (fname, fty) in fields {
                    entry.insert(fname, fty);
                }
            }
            Item::Enum { name, .. } => {
                // Register the type so `resolve_method` knows a typed
                // receiver with no matching method is a std method.
                ws.struct_fields.entry(name).or_default();
            }
            Item::Other => {}
        }
    }
}

fn push_fn(
    decl: FnDecl,
    file_idx: usize,
    owner: Option<String>,
    under_test: bool,
    ws: &mut Workspace,
) {
    let is_test = decl.is_test || under_test;
    ws.fns.push(FnNode {
        file: file_idx,
        name: decl.name,
        owner,
        params: decl.params,
        ret: decl.ret,
        body: decl.body,
        line: decl.line,
        is_test,
    });
}

/// The head type name of a type string: `&mut HmacDrbg` → `HmacDrbg`,
/// `seccloud_hash::HmacDrbg` → `HmacDrbg`, `Option<Server>` → `Option`.
pub fn type_head(ty: &str) -> String {
    let mut rest = ty.trim();
    loop {
        let trimmed = rest
            .trim_start_matches('&')
            .trim_start_matches("'static")
            .trim_start()
            .trim_start_matches("mut ")
            .trim_start_matches("dyn ")
            .trim_start();
        if trimmed == rest {
            break;
        }
        rest = trimmed;
    }
    // Walk `seg::seg::Head<…>` to the last segment before generics.
    let mut head: &str;
    let mut cur = rest;
    loop {
        let end = cur
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map_or(cur.len(), |(i, _)| i);
        head = cur.get(..end).unwrap_or(cur);
        match cur.get(end..).and_then(|r| r.strip_prefix("::")) {
            Some(next) => cur = next,
            None => break,
        }
    }
    head.to_string()
}

/// The element-type head of a container type: `Vec<T>`, `&[T]`, and
/// `[T; N]` all yield `type_head(T)`. `None` for anything else.
pub fn elem_head(ty: &str) -> Option<String> {
    let mut t = ty.trim();
    loop {
        let peeled = t
            .trim_start_matches('&')
            .trim_start()
            .trim_start_matches("mut ")
            .trim_start();
        if peeled == t {
            break;
        }
        t = peeled;
    }
    let inner = if let Some(rest) = t.strip_prefix("Vec<") {
        rest.strip_suffix('>')?
    } else if let Some(rest) = t.strip_prefix('[') {
        rest.split([';', ']']).next()?
    } else {
        return None;
    };
    let head = type_head(inner);
    (!head.is_empty()).then_some(head)
}

/// Local type environment for one fn: resolves receiver expressions to
/// type heads using params, annotated/inferable `let`s, and struct
/// fields. Shared by the call graph and the taint engine.
pub struct Typer<'w> {
    ws: &'w Workspace,
    owner: Option<String>,
    locals: HashMap<String, String>,
    /// Raw declared types (generics intact) for params and annotated
    /// `let`s — the head alone cannot answer element-type questions
    /// (`&[VerifierKey]` has head `""` but element `VerifierKey`).
    raws: HashMap<String, String>,
}

impl<'w> Typer<'w> {
    /// Builds the environment for `f`: parameter types plus every
    /// resolvable `let` binding in the body (flat — shadowing across
    /// scopes keeps the innermost annotation, which is the common case).
    pub fn for_fn(ws: &'w Workspace, f: &FnNode) -> Self {
        let mut t = Typer {
            ws,
            owner: f.owner.clone(),
            locals: HashMap::new(),
            raws: HashMap::new(),
        };
        for p in &f.params {
            let head = if p.name == "self" {
                f.owner.clone().unwrap_or_else(|| "Self".to_string())
            } else {
                type_head(&p.ty)
            };
            t.locals.insert(p.name.clone(), head);
            if p.name != "self" {
                t.raws.insert(p.name.clone(), p.ty.clone());
            }
        }
        if let Some(body) = &f.body {
            // Collect the (sparse) declaration sites once, then resolve
            // them in two rounds so a `let` referring to a later-typed
            // local still resolves — without re-walking the whole body.
            let mut decls: Vec<&Expr> = Vec::new();
            body.walk(&mut |e| {
                if matches!(e, Expr::Let { .. } | Expr::For { .. }) {
                    decls.push(e);
                }
            });
            for _ in 0..2 {
                for e in &decls {
                    if let Expr::Let {
                        bindings, ty, init, ..
                    } = e
                    {
                        if let (Some(name), 1) = (bindings.first(), bindings.len()) {
                            let resolved = match ty {
                                Some(t_str) => {
                                    t.raws.insert(name.clone(), t_str.clone());
                                    Some(type_head(t_str))
                                }
                                None => init.as_ref().and_then(|i| t.infer(i)),
                            };
                            if let Some(head) = resolved {
                                if !head.is_empty() {
                                    t.locals.insert(name.clone(), head);
                                }
                            }
                        }
                    }
                    // `for s in [&mut a, &mut b]` — a homogeneous array
                    // literal types its loop binding.
                    if let Expr::For { bindings, iter, .. } = e {
                        if let (Some(name), 1) = (bindings.first(), bindings.len()) {
                            if let Some(head) = t.infer_elem(iter) {
                                t.locals.insert(name.clone(), head);
                            }
                        }
                    }
                }
            }
        }
        t
    }

    /// Infers the head type of an expression, if the environment can.
    pub fn infer(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] => self.locals.get(one).cloned(),
                _ => None,
            },
            Expr::Field { base, name, .. } => {
                let base_ty = self.infer(base)?;
                let fields = self.ws.struct_fields.get(&base_ty)?;
                Some(type_head(fields.get(name)?))
            }
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    let targets = self.ws.resolve_call(segs, self.owner.as_deref());
                    self.ret_head(&targets, segs.get(segs.len().wrapping_sub(2)))
                } else {
                    None
                }
            }
            Expr::MethodCall {
                recv, name, args, ..
            } => {
                let recv_ty = self.infer(recv);
                let targets = self.ws.resolve_method(recv_ty.as_deref(), name, args.len());
                // Only trust an exact-receiver resolution for typing.
                if recv_ty.is_some() && !targets.is_empty() {
                    self.ret_head(&targets, recv_ty.as_ref())
                } else {
                    None
                }
            }
            Expr::StructLit { segs, .. } => segs.last().cloned(),
            // `verifiers[i]` — the element type of a container-typed base.
            Expr::Index { base, .. } => elem_head(&self.raw_of(base)?),
            Expr::Cast { ty, .. } => Some(type_head(ty)),
            Expr::Group { children, .. } => match children.as_slice() {
                [one] => self.infer(one),
                _ => None,
            },
            _ => None,
        }
    }

    /// The element type of an iterated expression: either a container
    /// (`Vec<T>`, `&[T]`, `[T; N]`) with a declared element type reachable
    /// through struct fields, or an array literal whose elements all infer
    /// to the same head. Both possibly behind
    /// `.iter()`/`.iter_mut()`/`.into_iter()` and `&` wrappers.
    fn infer_elem(&self, iter: &Expr) -> Option<String> {
        let inner = match iter {
            Expr::MethodCall { recv, name, .. }
                if matches!(name.as_str(), "iter" | "iter_mut" | "into_iter") =>
            {
                recv.as_ref()
            }
            other => other,
        };
        // `for block in &item.inputs` with `inputs: Vec<SignedBlock>` —
        // the declared field type names the element type directly.
        if let Some(head) = self.container_elem(inner) {
            return Some(head);
        }
        let Expr::Group { children, .. } = inner else {
            return None;
        };
        let first = self.infer(children.first()?)?;
        children
            .iter()
            .all(|c| self.infer(c).as_deref() == Some(&first))
            .then_some(first)
    }

    /// The declared element type of a container-typed field access or
    /// local (peeling `&x`/`(x)` wrappers, which parse as single-child
    /// groups).
    fn container_elem(&self, e: &Expr) -> Option<String> {
        elem_head(&self.raw_of(e)?)
    }

    /// The raw declared type of an expression (generics intact), when the
    /// declaration is reachable. Public face of [`Self::raw_of`] for the
    /// concurrency analyses, which key lock identity and stream tracking
    /// off declared generic arguments (`Arc<Mutex<Receiver<TcpStream>>>`)
    /// that [`Self::infer`]'s head types erase.
    pub fn raw_type_of(&self, e: &Expr) -> Option<String> {
        self.raw_of(e)
    }

    /// The raw declared type of an expression, when the declaration is
    /// reachable (param/annotated local, or a struct field).
    fn raw_of(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Group { children, .. } => match children.as_slice() {
                [one] => self.raw_of(one),
                _ => None,
            },
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] => self.raws.get(one).cloned(),
                _ => None,
            },
            Expr::Field { base, name, .. } => {
                let base_ty = self.infer(base)?;
                self.ws.struct_fields.get(&base_ty)?.get(name).cloned()
            }
            _ => None,
        }
    }

    /// The declared component types of a call returning a tuple —
    /// `fn make() -> (MasterKey, Vec<Item>)` yields the two component
    /// texts — so `let (key, items) = make();` can bind per-component
    /// secrecy instead of smearing the whole tuple's taint over every
    /// binding.
    pub fn ret_tuple_types(&self, e: &Expr) -> Option<Vec<String>> {
        let targets = match e {
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    self.ws.resolve_call(segs, self.owner.as_deref())
                } else {
                    return None;
                }
            }
            Expr::MethodCall {
                recv, name, args, ..
            } => {
                let recv_ty = self.infer(recv)?;
                self.ws.resolve_method(Some(&recv_ty), name, args.len())
            }
            Expr::Group { children, .. } => match children.as_slice() {
                [one] => return self.ret_tuple_types(one),
                _ => return None,
            },
            _ => return None,
        };
        let ret = self.ws.fns.get(*targets.first()?)?.ret.as_deref()?;
        let inner = ret.trim().strip_prefix('(')?.strip_suffix(')')?;
        let mut comps = Vec::new();
        let mut depth = 0i32;
        let mut cur = String::new();
        for ch in inner.chars() {
            match ch {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth -= 1,
                ',' if depth == 0 => {
                    comps.push(cur.trim().to_string());
                    cur.clear();
                    continue;
                }
                _ => {}
            }
            cur.push(ch);
        }
        if !cur.trim().is_empty() {
            comps.push(cur.trim().to_string());
        }
        (comps.len() > 1).then_some(comps)
    }

    /// The shared return-type head of resolved callees (`Self` resolved
    /// against `self_ty`).
    fn ret_head(&self, targets: &[usize], self_ty: Option<&String>) -> Option<String> {
        let first = targets.first().and_then(|i| self.ws.fns.get(*i))?;
        let ret = first.ret.as_deref()?;
        let head = type_head(ret);
        if head == "Self" {
            return first.owner.clone().or_else(|| self_ty.cloned());
        }
        if head == "Option" || head == "Result" {
            // `Result<Self, E>` constructors: peel one generic level.
            let inner = ret.split_once('<').map(|(_, r)| r)?;
            let inner_head = type_head(inner);
            if inner_head == "Self" {
                return first.owner.clone().or_else(|| self_ty.cloned());
            }
            return Some(head);
        }
        Some(head)
    }
}

// --- panic reachability ---------------------------------------------------

/// A direct panic source inside a fn.
struct PanicSource {
    line: u32,
    what: String,
}

fn is_trusted(path: &str) -> bool {
    TRUSTED_CRATES.iter().any(|p| path.starts_with(p))
}

fn literal_index(index: &Expr) -> bool {
    match index {
        Expr::Lit { is_int, .. } => *is_int,
        Expr::Range { lo, hi, .. } => {
            let ok = |side: &Option<Box<Expr>>| {
                side.as_ref()
                    .is_none_or(|e| matches!(e.as_ref(), Expr::Lit { is_int: true, .. }))
            };
            ok(lo) && ok(hi)
        }
        _ => false,
    }
}

/// Collects the direct panic sources of one fn, honoring
/// `// lint: allow(panic, …)` at the source line.
fn panic_sources(f: &FnNode, ctx: Option<&FileCtx>) -> Vec<PanicSource> {
    let mut out = Vec::new();
    let Some(body) = &f.body else {
        return out;
    };
    let line_allowed = |line: u32| {
        ctx.is_some_and(|c| c.rule_allowed(RULE_PANIC, line) || c.test_lines.contains(&line))
    };
    body.walk(&mut |e| match e {
        Expr::MethodCall { name, line, .. }
            if (name == "unwrap" || name == "expect") && !line_allowed(*line) =>
        {
            out.push(PanicSource {
                line: *line,
                what: format!(".{name}()"),
            });
        }
        Expr::MacroCall { name, line, .. }
            if PANIC_MACROS.contains(&name.as_str()) && !line_allowed(*line) =>
        {
            out.push(PanicSource {
                line: *line,
                what: format!("{name}!"),
            });
        }
        Expr::Index { index, line, .. } if !literal_index(index) && !line_allowed(*line) => {
            out.push(PanicSource {
                line: *line,
                what: "non-literal index".to_string(),
            });
        }
        _ => {}
    });
    out
}

/// The `panic_path` rule: protocol-path fns that transitively reach a
/// panic source through at least one call edge. `ctxs` must be keyed by
/// the same paths the workspace was built from.
pub fn check_panic_path(
    ws: &Workspace,
    ctxs: &HashMap<&str, &FileCtx>,
    all_rules: bool,
    report: &mut Report,
) {
    let n = ws.fns.len();
    let mut direct: Vec<Option<PanicSource>> = Vec::with_capacity(n);
    for (i, f) in ws.fns.iter().enumerate() {
        let path = ws.path_of(i);
        if f.is_test || (!all_rules && is_trusted(path)) {
            direct.push(None);
            continue;
        }
        let mut sources = panic_sources(f, ctxs.get(path).copied());
        direct.push(if sources.is_empty() {
            None
        } else {
            Some(sources.swap_remove(0))
        });
    }
    // Fixpoint: reach[f] = ∃ edge f→g with direct[g] or reach[g]. Trusted
    // and test fns contribute no edges.
    let mut reach = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if reach.get(i).copied().unwrap_or(true) {
                continue;
            }
            let skip = ws.fns.get(i).is_some_and(|f| f.is_test)
                || (!all_rules && is_trusted(ws.path_of(i)));
            if skip {
                continue;
            }
            let hits = ws.edges_of(i).iter().any(|(g, _)| {
                direct.get(*g).is_some_and(Option::is_some)
                    || reach.get(*g).copied().unwrap_or(false)
            });
            if hits {
                if let Some(slot) = reach.get_mut(i) {
                    *slot = true;
                }
                changed = true;
            }
        }
    }
    for (i, f) in ws.fns.iter().enumerate() {
        let path = ws.path_of(i);
        if f.is_test || !reach.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !all_rules && !PANIC_PATH_ROOTS.iter().any(|p| path.starts_with(p)) {
            continue;
        }
        let ctx = ctxs.get(path).copied();
        if ctx.is_some_and(|c| {
            c.rule_allowed(RULE_PANIC_PATH, f.line) || c.test_lines.contains(&f.line)
        }) {
            continue;
        }
        let chain = witness_chain(ws, &direct, i);
        report.findings.push(Finding {
            rule: RULE_PANIC_PATH,
            file: path.to_string(),
            line: f.line,
            message: format!(
                "`{}` can reach a panic: {chain} — make the callee total or annotate the \
                 source `// lint: allow(panic, reason=...)`",
                qualified(f)
            ),
        });
    }
}

fn qualified(f: &FnNode) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

/// Shortest call chain from `root` to a fn with a direct source, rendered
/// as `root → callee → … → .unwrap() (file:line)`.
fn witness_chain(ws: &Workspace, direct: &[Option<PanicSource>], root: usize) -> String {
    // BFS over edges.
    let n = ws.fns.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if let Some(s) = seen.get_mut(root) {
        *s = true;
    }
    queue.push_back(root);
    let mut hit = None;
    'bfs: while let Some(cur) = queue.pop_front() {
        for (g, _) in ws.edges_of(cur) {
            if seen.get(*g).copied().unwrap_or(true) {
                continue;
            }
            if let Some(s) = seen.get_mut(*g) {
                *s = true;
            }
            if let Some(p) = prev.get_mut(*g) {
                *p = Some(cur);
            }
            if direct.get(*g).is_some_and(Option::is_some) {
                hit = Some(*g);
                break 'bfs;
            }
            queue.push_back(*g);
        }
    }
    let Some(mut cur) = hit else {
        return "(call chain unavailable)".to_string();
    };
    let mut names = Vec::new();
    let tail = match (ws.fns.get(cur), direct.get(cur).and_then(Option::as_ref)) {
        (Some(f), Some(src)) => format!(
            "{} ({} at {}:{})",
            qualified(f),
            src.what,
            ws.path_of(cur),
            src.line
        ),
        _ => "?".to_string(),
    };
    names.push(tail);
    while let Some(p) = prev.get(cur).copied().flatten() {
        if p == root {
            break;
        }
        if let Some(f) = ws.fns.get(p) {
            names.push(qualified(f));
        }
        cur = p;
    }
    names.reverse();
    let mut chain = ws.fns.get(root).map(qualified).unwrap_or_default();
    for n in names {
        chain.push_str(" → ");
        chain.push_str(&n);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn build(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| ((*p).to_string(), parse(&lex(s).0)))
                .collect(),
        )
    }

    #[test]
    fn free_and_method_edges_resolve() {
        let ws = build(&[(
            "crates/core/src/a.rs",
            "struct S;\n\
             impl S { fn helper(&self) { free(); } }\n\
             fn free() {}\n\
             fn root(s: S) { s.helper(); }",
        )]);
        let root = ws.fns.iter().position(|f| f.name == "root").unwrap();
        let helper = ws.fns.iter().position(|f| f.name == "helper").unwrap();
        let free = ws.fns.iter().position(|f| f.name == "free").unwrap();
        assert_eq!(ws.edges_of(root), &[(helper, 4)]);
        assert_eq!(ws.edges_of(helper), &[(free, 2)]);
    }

    #[test]
    fn self_field_receivers_resolve_via_struct_fields() {
        let ws = build(&[(
            "crates/core/src/a.rs",
            "struct Inner;\n\
             impl Inner { fn go(&self) {} }\n\
             struct Outer { inner: Inner }\n\
             impl Outer { fn run(&self) { self.inner.go(); } }",
        )]);
        let run = ws.fns.iter().position(|f| f.name == "run").unwrap();
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(ws.edges_of(run), &[(go, 4)]);
    }

    #[test]
    fn typed_receiver_without_matching_method_gets_no_union_edge() {
        // `v.push(…)` on a known workspace type that lacks `push` must not
        // link to some other type's `push`.
        let ws = build(&[(
            "crates/core/src/a.rs",
            "struct Buf;\n\
             struct Other;\n\
             impl Other { fn push(&mut self) { panic!(\"boom\") } }\n\
             fn root(b: Buf) { b.push(); }",
        )]);
        let root = ws.fns.iter().position(|f| f.name == "root").unwrap();
        assert!(ws.edges_of(root).is_empty());
    }

    #[test]
    fn type_head_handles_refs_paths_and_generics() {
        assert_eq!(type_head("&mut HmacDrbg"), "HmacDrbg");
        assert_eq!(type_head("seccloud_hash::HmacDrbg"), "HmacDrbg");
        assert_eq!(type_head("Option<Server>"), "Option");
        assert_eq!(type_head("&[u8]"), "");
    }
}
