//! The lint rules and the annotation grammar.
//!
//! Four rule families (see `DESIGN.md` §9 for the rationale):
//!
//! * [`RULE_PANIC`] — no `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in protocol-path code.
//! * [`RULE_INDEX`] — no bare index/slice expressions in wire-decode paths.
//! * [`RULE_SECRET`] — `// lint: secret` types must not derive
//!   `Debug`/`Serialize`, must implement `Drop` (zeroize-on-drop), and must
//!   never appear inside a `format!`-family macro invocation.
//! * [`RULE_CT`] — no `==` / `!=` on digest/tag/MAC/root operands in
//!   verification code; use `seccloud_hash::ct_eq`.
//! * [`RULE_UNSAFE`] — every crate root carries `#![forbid(unsafe_code)]`
//!   (except `crates/parallel`), and every `unsafe` keyword is preceded by
//!   a `// SAFETY:` comment.
//! * [`RULE_TRANSPORT`] — raw wire channels (`WireTransport` /
//!   `WireServer`) must not be named outside the crates that define and
//!   wrap them (`cloudsim`, `resilience`, `testkit`, `net`): audits everywhere
//!   else must go through `ResilientTransport`, so a flaky channel can
//!   never abort or launder an audit (DESIGN.md §10).
//!
//! # Annotation grammar
//!
//! * `// lint: allow(<rule>, reason=<free text>)` — suppresses `<rule>` on
//!   the same line and the next line; the reason is mandatory and surfaced
//!   in the lint summary.
//! * `// lint: secret` — marks the next `struct`/`enum` as secret material.
//! * `// lint: declassify(<reason>)` — declares the next line's
//!   secret-derived value public by protocol design (suppresses `ctflow`;
//!   recorded as a `ctflow` allowance).
//! * `// lint: ordering(<reason>)` — justifies the next line's
//!   `Ordering::*` choice (rule `atomics`; recorded as an allowance).
//! * `// lint: vartime(<reason>)` — sanctions the following fn as a
//!   variable-time primitive: the `vartime` rule proves no secret-tainted
//!   value can reach it anywhere in the call graph.
//! * `// lint: lock(<reason>)` — justifies the next line's blocking
//!   operation under a held lock (rule `blocking`; recorded as an
//!   allowance).
//!
//! Any other `lint:` comment is itself reported (rule `annotation`), so a
//! typo'd escape hatch can never silently disable a rule.

use std::collections::{HashMap, HashSet};

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Rule id: panic-freedom in protocol paths.
pub const RULE_PANIC: &str = "panic";
/// Rule id: transitive panic reachability over the call graph.
pub const RULE_PANIC_PATH: &str = "panic_path";
/// Rule id: no bare indexing in decode paths.
pub const RULE_INDEX: &str = "index";
/// Rule id: secret hygiene.
pub const RULE_SECRET: &str = "secret";
/// Rule id: interprocedural secret taint flow.
pub const RULE_TAINT: &str = "taint";
/// Rule id: constant-time discipline (token-level fallback tier; the
/// dataflow-backed [`RULE_CTFLOW`] suppresses duplicates at the same site).
pub const RULE_CT: &str = "ct";
/// Rule id: interprocedural constant-time dataflow (timing sinks).
pub const RULE_CTFLOW: &str = "ctflow";
/// Rule id: variable-time primitives reachable from secret inputs.
pub const RULE_VARTIME: &str = "vartime";
/// Rule id: memory-ordering justification policy.
pub const RULE_ATOMICS: &str = "atomics";
/// Rule id: lock-order cycles and re-entrant acquisitions.
pub const RULE_LOCKS: &str = "locks";
/// Rule id: blocking/expensive operations under a held lock.
pub const RULE_BLOCKING: &str = "blocking";
/// Rule id: socket I/O must be dominated by a read/write deadline.
pub const RULE_DEADLINE: &str = "deadline";
/// Rule id: overflow-safe sampling/backoff arithmetic.
pub const RULE_ARITH: &str = "arith";
/// Rule id: exhaustive wire dispatch.
pub const RULE_DISPATCH: &str = "dispatch";
/// Rule id: unsafe audit.
pub const RULE_UNSAFE: &str = "unsafe";
/// Rule id: raw-transport discipline.
pub const RULE_TRANSPORT: &str = "transport";
/// Rule id: malformed `lint:` annotations.
pub const RULE_ANNOTATION: &str = "annotation";

/// Every rule id, in reporting order (drives the SARIF rule catalogue).
pub const ALL_RULES: [&str; 17] = [
    RULE_PANIC,
    RULE_PANIC_PATH,
    RULE_INDEX,
    RULE_SECRET,
    RULE_TAINT,
    RULE_CT,
    RULE_CTFLOW,
    RULE_VARTIME,
    RULE_ATOMICS,
    RULE_LOCKS,
    RULE_BLOCKING,
    RULE_DEADLINE,
    RULE_ARITH,
    RULE_DISPATCH,
    RULE_UNSAFE,
    RULE_TRANSPORT,
    RULE_ANNOTATION,
];

/// One finding: a rule violation at a location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `RULE_*` ids).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One use of the `// lint: allow(...)` escape hatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allowance {
    /// The rule being allowed.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the annotation.
    pub line: u32,
    /// The mandatory reason string.
    pub reason: String,
}

/// The result of linting a set of files.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Escape-hatch uses, sorted by (file, line).
    pub allowances: Vec<Allowance>,
    /// Number of files scanned.
    pub files: usize,
}

/// Protocol-path prefixes for [`RULE_PANIC`].
const PANIC_SCOPE: [&str; 3] = [
    "crates/core/src/",
    "crates/cloudsim/src/",
    "crates/ibs/src/",
];

/// Verification-code prefixes for [`RULE_CT`].
const CT_SCOPE: [&str; 5] = [
    "crates/core/src/",
    "crates/cloudsim/src/",
    "crates/ibs/src/",
    "crates/merkle/src/",
    "crates/hash/src/",
];

/// Decode-path files for [`RULE_INDEX`].
const INDEX_SCOPE: [&str; 1] = ["crates/core/src/wire.rs"];

/// Places allowed to name raw wire channels for [`RULE_TRANSPORT`]:
/// `cloudsim` defines the trait and the direct server, `resilience` wraps
/// it, `testkit` interposes fault injection, `net` serves the trait over
/// TCP (its server/client *are* the channel), and the analyzer's own tree
/// holds the rule's fixtures. Everywhere else must drive audits through
/// `ResilientTransport` (or annotate a deliberate raw-path baseline).
const TRANSPORT_ALLOWED: [&str; 5] = [
    "crates/cloudsim/src/",
    "crates/resilience/src/",
    "crates/testkit/src/",
    "crates/net/src/",
    "crates/analyzer/",
];

/// Identifiers that name a raw wire channel.
const TRANSPORT_IDENTS: [&str; 2] = ["WireTransport", "WireServer"];

/// Identifier segments that mark a comparison operand as digest-like.
const CT_SEGMENTS: [&str; 5] = ["digest", "tag", "mac", "hmac", "root"];

/// Macros that panic when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Macros whose arguments are formatted — a secret value reaching one of
/// these is a leak vector (shared with the taint engine).
pub(crate) const FORMAT_MACROS: [&str; 18] = [
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// A lexed file plus the structural facts rules need. The AST-backed
/// rules ([`crate::callgraph`], [`crate::taint`]) consume it for the
/// annotation and test-line maps.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The lexed token stream.
    pub toks: Vec<Tok>,
    /// All comments (the annotation carrier).
    pub comments: Vec<Comment>,
    /// Lines inside `#[cfg(test)]` / `#[test]` items.
    pub test_lines: HashSet<u32>,
    /// rule → lines on which it is allowed.
    pub allows: HashMap<String, HashSet<u32>>,
    /// Lines whose vicinity carries a `SAFETY:` comment.
    pub safety_lines: HashSet<u32>,
    /// Lines justified by `// lint: ordering(reason)` (the `atomics` rule).
    pub ordering_lines: HashSet<u32>,
    /// Lines of fns sanctioned by `// lint: vartime(reason)` (the
    /// `vartime` rule treats them as variable-time primitives).
    pub vartime_lines: HashSet<u32>,
    /// Lines justified by `// lint: lock(reason)` (the `blocking` rule's
    /// escape: a deliberate blocking call under a held lock).
    pub lock_lines: HashSet<u32>,
}

impl FileCtx {
    /// Is `rule` allowed (via `// lint: allow`) on `line`?
    #[must_use]
    pub fn rule_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(rule).is_some_and(|s| s.contains(&line))
    }
}

/// A type marked `// lint: secret`.
struct SecretType {
    name: String,
    file: String,
    line: u32,
    derives: Vec<String>,
}

/// Lints `(path, source)` pairs. With `all_rules` set, every scoped rule
/// applies to every file regardless of its path (single-file / fixture
/// mode); otherwise rules apply only inside their workspace scopes.
pub fn lint_files(inputs: &[(String, String)], all_rules: bool) -> Report {
    let mut report = Report {
        files: inputs.len(),
        ..Report::default()
    };
    let timing = std::env::var("SECCLOUD_LINT_TIMINGS").is_ok();
    let mut mark = std::time::Instant::now();
    let phase = |name: &str, mark: &mut std::time::Instant| {
        if timing {
            eprintln!("phase {name}: {:?}", mark.elapsed());
        }
        *mark = std::time::Instant::now();
    };
    // Per-file lexing, annotation parsing, and test-line detection are
    // independent — fan them out over SECCLOUD_THREADS workers.
    // `parallel_map` preserves input order, and the final sort below makes
    // finding order deterministic regardless of scheduling.
    let built = seccloud_parallel::parallel_map(inputs, |_, (path, src)| {
        let (toks, comments) = lex(src);
        let test_lines = test_item_lines(&toks);
        let ann = parse_annotations(path, &comments);
        (
            FileCtx {
                path: path.replace('\\', "/"),
                toks,
                comments,
                test_lines,
                allows: ann.allows,
                safety_lines: ann.safety,
                ordering_lines: ann.ordering,
                vartime_lines: ann.vartime,
                lock_lines: ann.lock,
            },
            ann.findings,
            ann.allowances,
        )
    });
    phase("lex+ann", &mut mark);
    let mut ctxs = Vec::with_capacity(built.len());
    for (ctx, findings, allowances) in built {
        report.findings.extend(findings);
        report.allowances.extend(allowances);
        ctxs.push(ctx);
    }

    // Secret types are collected across every file first: the marker, the
    // `impl Drop`, and a leaking `format!` may live in different files.
    let secrets: Vec<SecretType> = ctxs.iter().flat_map(collect_secret_types).collect();

    // Token-level rules only read their own file's ctx — run them in
    // parallel, one scratch report per file, merged in input order.
    let token_reports = seccloud_parallel::parallel_map(&ctxs, |_, ctx| {
        let mut r = Report::default();
        check_panic(ctx, all_rules, &mut r);
        check_index(ctx, all_rules, &mut r);
        check_ct(ctx, all_rules, &mut r);
        check_unsafe(ctx, all_rules, &mut r);
        check_transport(ctx, all_rules, &mut r);
        crate::atomics::check_atomics(ctx, all_rules, &mut r);
        r
    });
    for r in token_reports {
        report.findings.extend(r.findings);
        report.allowances.extend(r.allowances);
    }
    phase("token-rules", &mut mark);
    check_secret_types(&ctxs, &secrets, &mut report);
    phase("secret-types", &mut mark);

    // AST-backed interprocedural rules: parse every file (in parallel —
    // parsing is per-file), build the workspace call graph, then run panic
    // reachability, taint flow, constant-time dataflow, arithmetic, and
    // dispatch analyses over it. The fixpoint passes themselves stay
    // sequential: they iterate shared whole-program summaries.
    let parsed: Vec<(String, crate::ast::Ast)> =
        seccloud_parallel::parallel_map(&ctxs, |_, c| (c.path.clone(), crate::ast::parse(&c.toks)));
    phase("parse", &mut mark);
    let ws = crate::callgraph::Workspace::build(parsed);
    // One shared type environment per fn: the taint and ctflow passes
    // (fixpoint + reporting each) would otherwise rebuild it 4x per fn.
    let typers: Vec<crate::callgraph::Typer<'_>> = ws
        .fns
        .iter()
        .map(|f| crate::callgraph::Typer::for_fn(&ws, f))
        .collect();
    phase("ws-build", &mut mark);
    let ctx_map: HashMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    crate::callgraph::check_panic_path(&ws, &ctx_map, all_rules, &mut report);
    phase("panic_path", &mut mark);
    let secret_names: HashSet<String> = secrets.iter().map(|s| s.name.clone()).collect();
    crate::taint::check_taint(
        &ws,
        &typers,
        &ctx_map,
        &secret_names,
        all_rules,
        &mut report,
    );
    phase("taint", &mut mark);
    crate::ctflow::check_ctflow(
        &ws,
        &typers,
        &ctx_map,
        &secret_names,
        all_rules,
        &mut report,
    );
    phase("ctflow", &mut mark);
    crate::astrules::check_arith(&ws, &ctx_map, all_rules, &mut report);
    crate::astrules::check_dispatch(&ws, &ctx_map, all_rules, &mut report);
    phase("arith+dispatch", &mut mark);
    // Concurrency tier: the deadline pass computes per-fn stream-I/O
    // summaries that the locks pass reuses (a call handing a TcpStream to
    // an I/O-doing callee blocks like a direct socket op).
    let net = crate::blocking::check_deadline(&ws, &typers, &ctx_map, all_rules, &mut report);
    phase("deadline", &mut mark);
    crate::locks::check_locks(&ws, &typers, &ctx_map, &net, &mut report);
    phase("locks+blocking", &mut mark);

    // Fallback tier: the token-level `ct` heuristic stands down wherever
    // the dataflow-backed `ctflow` rule covered the same site.
    let ctflow_sites: HashSet<(String, u32)> = report
        .findings
        .iter()
        .filter(|f| f.rule == RULE_CTFLOW)
        .map(|f| (f.file.clone(), f.line))
        .collect();
    report
        .findings
        .retain(|f| f.rule != RULE_CT || !ctflow_sites.contains(&(f.file.clone(), f.line)));

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    report.findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    report
        .allowances
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

// --- annotations ----------------------------------------------------------

/// Parsed per-file annotation state.
#[derive(Default)]
struct ParsedAnnotations {
    allows: HashMap<String, HashSet<u32>>,
    safety: HashSet<u32>,
    ordering: HashSet<u32>,
    vartime: HashSet<u32>,
    lock: HashSet<u32>,
    findings: Vec<Finding>,
    allowances: Vec<Allowance>,
}

/// Parses `lint:` and `SAFETY:` comments.
///
/// An `allow`/`declassify`/`ordering`/`vartime` annotation covers its own
/// line (trailing-comment form) and the immediately following line
/// (standalone-comment form) — a `vartime` sanction must therefore sit
/// directly above its `fn`, never separated by an attribute, so the
/// sanction can never bleed onto a neighbouring declaration.
fn parse_annotations(path: &str, comments: &[Comment]) -> ParsedAnnotations {
    let mut out = ParsedAnnotations::default();
    for c in comments {
        if c.text.contains("SAFETY:") {
            // A SAFETY comment blesses the unsafe block on the following
            // few lines.
            for l in c.line..=c.end_line + 3 {
                out.safety.insert(l);
            }
        }
        let Some(rest) = c.text.trim().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "secret" {
            continue; // handled by collect_secret_types
        }
        let mut record = |rule: &str, reason: String| {
            out.allowances.push(Allowance {
                rule: rule.to_string(),
                file: path.to_string(),
                line: c.line,
                reason,
            });
        };
        if let Some(reason) = keyword_reason(rest, "declassify") {
            // Publication of a secret-derived value is a protocol-level
            // decision; it suppresses the dataflow rule like an allow.
            let entry = out.allows.entry(RULE_CTFLOW.to_string()).or_default();
            entry.insert(c.line);
            entry.insert(c.end_line + 1);
            record(RULE_CTFLOW, reason);
            continue;
        }
        if let Some(reason) = keyword_reason(rest, "ordering") {
            out.ordering.insert(c.line);
            out.ordering.insert(c.end_line + 1);
            record(RULE_ATOMICS, reason);
            continue;
        }
        if let Some(reason) = keyword_reason(rest, "vartime") {
            out.vartime.insert(c.line);
            out.vartime.insert(c.end_line + 1);
            record(RULE_VARTIME, reason);
            continue;
        }
        if let Some(reason) = keyword_reason(rest, "lock") {
            out.lock.insert(c.line);
            out.lock.insert(c.end_line + 1);
            record(RULE_BLOCKING, reason);
            continue;
        }
        match parse_allow(rest) {
            Some((rule, reason)) => {
                let entry = out.allows.entry(rule.clone()).or_default();
                entry.insert(c.line);
                entry.insert(c.end_line + 1);
                out.allowances.push(Allowance {
                    rule,
                    file: path.to_string(),
                    line: c.line,
                    reason,
                });
            }
            None => out.findings.push(Finding {
                rule: RULE_ANNOTATION,
                file: path.to_string(),
                line: c.line,
                message: format!(
                    "malformed lint annotation `{}` — expected \
                     `lint: allow(<rule>, reason=<text>)`, `lint: secret`, \
                     `lint: declassify(<reason>)`, `lint: ordering(<reason>)`, \
                     `lint: vartime(<reason>)`, or `lint: lock(<reason>)`",
                    c.text.trim()
                ),
            }),
        }
    }
    out
}

/// Parses `<kw>(<reason>)`, demanding a non-empty reason. Returns `None`
/// both for "not this keyword" and for an empty reason — the latter then
/// falls through to the malformed-annotation finding, so a blanket
/// `declassify()` can never silently disable a rule.
fn keyword_reason(s: &str, kw: &str) -> Option<String> {
    let body = s
        .strip_prefix(kw)?
        .trim()
        .strip_prefix('(')?
        .strip_suffix(')')?;
    let reason = body.trim();
    if reason.is_empty() {
        return None;
    }
    Some(reason.to_string())
}

/// Parses `allow(<rule>, reason=<text>)`; the reason is mandatory.
fn parse_allow(s: &str) -> Option<(String, String)> {
    let body = s.strip_prefix("allow(")?.strip_suffix(')')?;
    let (rule, reason) = body.split_once(',')?;
    let reason = reason.trim().strip_prefix("reason=")?.trim();
    let rule = rule.trim();
    let known = [
        RULE_PANIC,
        RULE_PANIC_PATH,
        RULE_INDEX,
        RULE_SECRET,
        RULE_TAINT,
        RULE_CT,
        RULE_CTFLOW,
        RULE_VARTIME,
        RULE_ATOMICS,
        RULE_LOCKS,
        RULE_BLOCKING,
        RULE_DEADLINE,
        RULE_ARITH,
        RULE_DISPATCH,
        RULE_UNSAFE,
        RULE_TRANSPORT,
    ];
    if rule.is_empty() || reason.is_empty() || !known.contains(&rule) {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}

fn allowed(ctx: &FileCtx, rule: &str, line: u32) -> bool {
    ctx.allows.get(rule).is_some_and(|s| s.contains(&line))
}

// --- test-code detection --------------------------------------------------

/// Lines belonging to `#[cfg(test)]` / `#[test]` items (the brace-matched
/// body of the `mod`/`fn`/`impl` that follows the attribute). Test code
/// may unwrap freely — a failing test *should* panic.
fn test_item_lines(toks: &[Tok]) -> HashSet<u32> {
    let mut lines = HashSet::new();
    let mut i = 0;
    while let Some(tok) = toks.get(i) {
        if tok.text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_toks, after) = attribute_span(toks, i);
            // `#[test]` / `#[cfg(test)]` / `#[cfg(all(test, …))]` — but not
            // `#[cfg(not(test))]`, which guards *production* code.
            let is_test_attr = attr_toks.iter().any(|t| t.text == "test")
                && !attr_toks.iter().any(|t| t.text == "not");
            if is_test_attr {
                // Skip any further attributes, then brace-match the item.
                let mut j = after;
                while toks.get(j).is_some_and(|t| t.text == "#")
                    && toks.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    j = attribute_span(toks, j).1;
                }
                if let Some((open, close)) = item_body(toks, j) {
                    if let (Some(o), Some(c)) = (toks.get(open), toks.get(close)) {
                        for l in o.line..=c.line {
                            lines.insert(l);
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
            i = after;
            continue;
        }
        i += 1;
    }
    lines
}

/// Returns the tokens inside `#[...]` starting at `start` (which must point
/// at `#`), and the index just past the closing `]`.
fn attribute_span(toks: &[Tok], start: usize) -> (&[Tok], usize) {
    let mut depth = 0usize;
    let mut i = start + 1;
    while let Some(tok) = toks.get(i) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return (toks.get(start + 2..i).unwrap_or(&[]), i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (toks.get(start + 1..).unwrap_or(&[]), toks.len())
}

/// From `start`, finds the item's `{ … }` body: scans to the first `{` at
/// nesting depth zero (aborting at a top-level `;`, e.g. `mod m;`), then
/// brace-matches. Returns (open index, close index).
fn item_body(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    let mut paren = 0i32;
    while let Some(tok) = toks.get(i) {
        match tok.text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren == 0 => return None,
            "{" if paren == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let mut depth = 0i32;
    while let Some(tok) = toks.get(i) {
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((open, toks.len() - 1))
}

// --- rule: panic-freedom --------------------------------------------------

fn in_scope(path: &str, scope: &[&str], all_rules: bool) -> bool {
    all_rules || scope.iter().any(|p| path.starts_with(p) || path == *p)
}

fn check_panic(ctx: &FileCtx, all_rules: bool, report: &mut Report) {
    if !in_scope(&ctx.path, &PANIC_SCOPE, all_rules) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.test_lines.contains(&t.line) {
            continue;
        }
        let prev = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .map(|t| t.text.as_str());
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => (prev == Some(".") || prev == Some("::")) && next == Some("("),
            m if PANIC_MACROS.contains(&m) => next == Some("!"),
            _ => false,
        };
        if !hit {
            continue;
        }
        if allowed(ctx, RULE_PANIC, t.line) {
            continue;
        }
        let what = if next == Some("!") {
            format!("{}!", t.text)
        } else {
            format!(".{}()", t.text)
        };
        report.findings.push(Finding {
            rule: RULE_PANIC,
            file: ctx.path.clone(),
            line: t.line,
            message: format!(
                "{what} in protocol path — return the typed error instead, or annotate \
                 `// lint: allow(panic, reason=...)`"
            ),
        });
    }
}

// --- rule: bare indexing in decode paths ----------------------------------

fn check_index(ctx: &FileCtx, all_rules: bool, report: &mut Report) {
    if !in_scope(&ctx.path, &INDEX_SCOPE, all_rules) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "[" || ctx.test_lines.contains(&t.line) {
            continue;
        }
        // Postfix position: the previous token ends an expression.
        let postfix = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|prev| {
                matches!(prev.kind, TokKind::Ident | TokKind::Number | TokKind::Str)
                    || matches!(prev.text.as_str(), ")" | "]" | "?")
            });
        // `foo!["…"]` and `#[attr]` are not index expressions.
        let macro_or_attr = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|t| matches!(t.text.as_str(), "!" | "#"));
        if !postfix || macro_or_attr {
            continue;
        }
        if allowed(ctx, RULE_INDEX, t.line) {
            continue;
        }
        report.findings.push(Finding {
            rule: RULE_INDEX,
            file: ctx.path.clone(),
            line: t.line,
            message: "bare index/slice in decode path — use `.get(..)` and return \
                      `WireError::Truncated`, or annotate `// lint: allow(index, reason=...)`"
                .to_string(),
        });
    }
}

// --- rule: constant-time discipline ---------------------------------------

/// Tokens that terminate an operand scan at nesting depth zero.
fn operand_stop(text: &str) -> bool {
    matches!(
        text,
        ";" | "{"
            | "}"
            | ","
            | "="
            | "=="
            | "!="
            | "&&"
            | "||"
            | "=>"
            | "?"
            | "if"
            | "else"
            | "while"
            | "let"
            | "return"
            | "match"
            | "for"
            | "in"
    )
}

/// Does this identifier look like digest/tag material?
fn digest_like(ident: &str) -> bool {
    ident
        .split('_')
        .any(|seg| CT_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

fn check_ct(ctx: &FileCtx, all_rules: bool, report: &mut Report) {
    if !in_scope(&ctx.path, &CT_SCOPE, all_rules) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if (t.text != "==" && t.text != "!=") || ctx.test_lines.contains(&t.line) {
            continue;
        }
        let mut suspicious: Option<String> = None;
        // Left operand: walk backwards, skipping balanced groups.
        let mut depth = 0i32;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let Some(tok) = toks.get(j) else { break };
            let text = tok.text.as_str();
            match text {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ if depth == 0 && operand_stop(text) => break,
                _ => {}
            }
            if tok.kind == TokKind::Ident && digest_like(text) {
                suspicious = Some(text.to_string());
            }
        }
        // Right operand: walk forwards.
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(tok) = toks.get(j) {
            let text = tok.text.as_str();
            match text {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ if depth == 0 && operand_stop(text) => break,
                _ => {}
            }
            if tok.kind == TokKind::Ident && digest_like(text) {
                suspicious.get_or_insert_with(|| text.to_string());
            }
            j += 1;
        }
        let Some(ident) = suspicious else { continue };
        if allowed(ctx, RULE_CT, t.line) {
            continue;
        }
        report.findings.push(Finding {
            rule: RULE_CT,
            file: ctx.path.clone(),
            line: t.line,
            message: format!(
                "`{}` on digest-like operand `{ident}` in verification code — use \
                 `seccloud_hash::ct_eq`, or annotate `// lint: allow(ct, reason=...)`",
                t.text
            ),
        });
    }
}

// --- rule: unsafe audit ---------------------------------------------------

/// Crate roots allowed to downgrade `forbid(unsafe_code)` to
/// `deny(unsafe_code)` so that *one* sanctioned module can opt back in with
/// `allow(unsafe_code)` (a `forbid` cannot be overridden further down).
const UNSAFE_DENY_ROOTS: &[&str] = &["crates/pairing/src/lib.rs"];

/// Files permitted to *contain* `unsafe` at all: the parallelism crate and
/// the pairing crate's arch-intrinsics module. Every occurrence still needs
/// a `SAFETY:` comment.
const UNSAFE_ALLOWED_FILES: &[&str] = &["crates/pairing/src/arch/x86_64.rs"];

fn unsafe_allowed_file(path: &str) -> bool {
    path.starts_with("crates/parallel/") || UNSAFE_ALLOWED_FILES.contains(&path)
}

/// Is this path a crate root that must carry `#![forbid(unsafe_code)]`
/// (or, for [`UNSAFE_DENY_ROOTS`], at least `#![deny(unsafe_code)]`)?
fn is_guarded_crate_root(path: &str) -> bool {
    if path.starts_with("crates/parallel/") {
        // The one crate permitted to contain `unsafe` throughout (each
        // block still needs a `SAFETY:` comment, checked below).
        return false;
    }
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("src/bin/") && path.ends_with(".rs"))
}

fn has_unsafe_gate(toks: &[Tok], lint: &str) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == lint
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

fn check_unsafe(ctx: &FileCtx, all_rules: bool, report: &mut Report) {
    let root_check = if all_rules {
        ctx.path.ends_with("lib.rs") || ctx.path.ends_with("main.rs")
    } else {
        is_guarded_crate_root(&ctx.path)
    };
    if root_check && !has_unsafe_gate(&ctx.toks, "forbid") {
        // Roots on the deny list may use the weaker gate; everyone else
        // must forbid.
        let deny_ok =
            UNSAFE_DENY_ROOTS.contains(&ctx.path.as_str()) && has_unsafe_gate(&ctx.toks, "deny");
        if !deny_ok {
            report.findings.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.path.clone(),
                line: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
    for t in &ctx.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // Scope check: `unsafe` may only appear in the sanctioned modules
        // (skipped in single-file fixture mode, where paths are synthetic).
        if !all_rules && !unsafe_allowed_file(&ctx.path) {
            report.findings.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.path.clone(),
                line: t.line,
                message: "`unsafe` outside the sanctioned modules (crates/parallel, \
                          crates/pairing/src/arch/x86_64.rs)"
                    .to_string(),
            });
        }
        if !ctx.safety_lines.contains(&t.line) {
            report.findings.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.path.clone(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on the preceding lines"
                    .to_string(),
            });
        }
    }
}

// --- rule: raw-transport discipline ---------------------------------------

fn check_transport(ctx: &FileCtx, all_rules: bool, report: &mut Report) {
    // Exclusion-scoped: the rule fires *outside* the allowed prefixes (the
    // inverse of `in_scope`), or everywhere in single-file fixture mode.
    if !all_rules && TRANSPORT_ALLOWED.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for t in &ctx.toks {
        if t.kind != TokKind::Ident || !TRANSPORT_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        if allowed(ctx, RULE_TRANSPORT, t.line) {
            continue;
        }
        report.findings.push(Finding {
            rule: RULE_TRANSPORT,
            file: ctx.path.clone(),
            line: t.line,
            message: format!(
                "raw `{}` outside cloudsim/resilience/testkit/net — drive audits through \
                 `seccloud_resilience::ResilientTransport` so channel faults are retried \
                 and byzantine evidence is pinned, or annotate \
                 `// lint: allow(transport, reason=...)`",
                t.text
            ),
        });
    }
}

// --- rule: secret hygiene -------------------------------------------------

/// Finds `// lint: secret` markers and resolves the type they annotate,
/// collecting any `#[derive(...)]` idents between marker and type.
fn collect_secret_types(ctx: &FileCtx) -> Vec<SecretType> {
    let mut out = Vec::new();
    for c in &ctx.comments {
        if c.text.trim() != "lint: secret" {
            continue;
        }
        let mut derives = Vec::new();
        let mut name = None;
        let mut line = c.line;
        let mut i = ctx.toks.partition_point(|t| t.line <= c.end_line);
        while let Some(t) = ctx.toks.get(i).filter(|t| t.line <= c.end_line + 15) {
            if t.text == "#" && ctx.toks.get(i + 1).is_some_and(|n| n.text == "[") {
                let (attr, after) = attribute_span(&ctx.toks, i);
                if attr.first().is_some_and(|a| a.text == "derive") {
                    derives.extend(
                        attr.iter()
                            .skip(1)
                            .filter(|a| a.kind == TokKind::Ident)
                            .map(|a| a.text.clone()),
                    );
                }
                i = after;
                continue;
            }
            if matches!(t.text.as_str(), "struct" | "enum" | "union") {
                if let Some(n) = ctx.toks.get(i + 1) {
                    name = Some(n.text.clone());
                    line = n.line;
                }
                break;
            }
            i += 1;
        }
        if let Some(name) = name {
            out.push(SecretType {
                name,
                file: ctx.path.clone(),
                line,
                derives,
            });
        }
    }
    out
}

/// Per-type checks: no `Debug`/`Serialize` derive, and an `impl Drop`
/// must exist somewhere in the scanned set (zeroize-on-drop).
fn check_secret_types(ctxs: &[FileCtx], secrets: &[SecretType], report: &mut Report) {
    for s in secrets {
        for bad in ["Debug", "Serialize"] {
            if s.derives.iter().any(|d| d == bad) {
                report.findings.push(Finding {
                    rule: RULE_SECRET,
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "secret type `{}` derives `{bad}` — implement a redacted manual \
                         `Debug` (and never serialize secrets)",
                        s.name
                    ),
                });
            }
        }
        let has_drop = ctxs.iter().any(|ctx| impls_drop(&ctx.toks, &s.name));
        if !has_drop {
            report.findings.push(Finding {
                rule: RULE_SECRET,
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "secret type `{}` has no `impl Drop` — wipe key material on drop \
                     (see `seccloud_hash::wipe`)",
                    s.name
                ),
            });
        }
    }
}

/// Looks for `impl Drop for <name>` (allowing generics between the parts).
fn impls_drop(toks: &[Tok], name: &str) -> bool {
    for (i, t) in toks.iter().enumerate() {
        if t.text == "Drop" && toks.get(i + 1).is_some_and(|n| n.text == "for") {
            let impl_before = toks
                .get(i.saturating_sub(6)..i)
                .unwrap_or(&[])
                .iter()
                .any(|p| p.text == "impl");
            let named_after = toks
                .get(i + 2..toks.len().min(i + 8))
                .unwrap_or(&[])
                .iter()
                .any(|n| n.text == name);
            if impl_before && named_after {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Report {
        lint_files(&[(path.to_string(), src.to_string())], false)
    }

    fn rules_of(r: &Report) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn panic_rule_fires_only_in_scope() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let hit = lint_one("crates/core/src/foo.rs", src);
        assert_eq!(rules_of(&hit), vec![RULE_PANIC]);
        let miss = lint_one("crates/bench/src/foo.rs", src);
        assert!(miss.findings.is_empty());
    }

    #[test]
    fn panic_rule_skips_tests_strings_and_comments() {
        let src = r#"
            // a.unwrap() in a comment
            fn f() -> &'static str { "don't panic!()" }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
        "#;
        let r = lint_one("crates/core/src/foo.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn panic_macros_and_expect_fire() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                if x.is_none() { panic!("boom"); }
                x.expect("present")
            }
            fn g() { unreachable!() }
        "#;
        let r = lint_one("crates/ibs/src/foo.rs", src);
        assert_eq!(r.findings.len(), 3);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }";
        let r = lint_one("crates/core/src/foo.rs", src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn allow_annotation_downgrades_to_allowance() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                // lint: allow(panic, reason=precondition documented on f)
                x.expect("caller checked")
            }
        "#;
        let r = lint_one("crates/core/src/foo.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowances.len(), 1);
        assert_eq!(r.allowances[0].rule, RULE_PANIC);
        assert!(r.allowances[0].reason.contains("precondition"));
    }

    #[test]
    fn malformed_annotation_is_a_finding() {
        let src = "// lint: allow(panic)\nfn f() {}";
        let r = lint_one("crates/core/src/foo.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_ANNOTATION]);
    }

    #[test]
    fn index_rule_fires_in_decode_paths() {
        let src = "fn take(d: &[u8]) -> u8 { d[0] }";
        let r = lint_one("crates/core/src/wire.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_INDEX]);
        // Attributes and macro brackets are not index expressions.
        let ok = "#[derive(Clone)]\nstruct S;\nfn f() -> Vec<u8> { vec![1, 2] }";
        assert!(lint_one("crates/core/src/wire.rs", ok).findings.is_empty());
    }

    #[test]
    fn ct_rule_flags_digest_equality() {
        let src = "fn verify(tag: &[u8], expected_tag: &[u8]) -> bool { tag == expected_tag }";
        let r = lint_one("crates/core/src/foo.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_CT]);
    }

    #[test]
    fn ct_rule_ignores_benign_comparisons() {
        let src = r#"
            fn f(version: u32, expected_version: u32) -> bool { version != expected_version }
            fn g(identity: &str, other: &str) -> bool { identity == other }
        "#;
        let r = lint_one("crates/core/src/foo.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn ct_rule_stops_at_assignment() {
        // The *assigned* variable name must not contaminate the operand scan.
        let src = "fn f(a: &str, b: &str) { let root_ok = a == b; let _ = root_ok; }";
        let r = lint_one("crates/core/src/foo.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unsafe_rule_requires_forbid_on_crate_roots() {
        let r = lint_one("crates/hash/src/lib.rs", "pub fn f() {}");
        assert_eq!(rules_of(&r), vec![RULE_UNSAFE]);
        let ok = lint_one(
            "crates/hash/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        assert!(ok.findings.is_empty());
        // parallel is exempt from the forbid requirement…
        let par = lint_one("crates/parallel/src/lib.rs", "pub fn f() {}");
        assert!(par.findings.is_empty());
    }

    #[test]
    fn unsafe_deny_root_is_accepted_only_for_the_pairing_crate() {
        // pairing's root may downgrade to `deny` (its arch-intrinsics
        // module opts back in with `allow`, which `forbid` would reject).
        let ok = lint_one(
            "crates/pairing/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod arch;",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        // Any other root must still forbid.
        let bad = lint_one(
            "crates/hash/src/lib.rs",
            "#![deny(unsafe_code)]\npub fn f() {}",
        );
        assert_eq!(rules_of(&bad), vec![RULE_UNSAFE]);
        // And an ungated pairing root still fires.
        let none = lint_one("crates/pairing/src/lib.rs", "pub fn f() {}");
        assert_eq!(rules_of(&none), vec![RULE_UNSAFE]);
    }

    #[test]
    fn unsafe_outside_sanctioned_modules_fires_even_with_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads.\n    unsafe { *p }\n}";
        let r = lint_one("crates/core/src/foo.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_UNSAFE], "{:?}", r.findings);
        // The pairing arch-intrinsics module and parallel are sanctioned.
        for path in [
            "crates/pairing/src/arch/x86_64.rs",
            "crates/parallel/src/scope.rs",
        ] {
            let ok = lint_one(path, src);
            assert!(ok.findings.is_empty(), "{path}: {:?}", ok.findings);
        }
    }

    #[test]
    fn unsafe_blocks_need_safety_comments() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let r = lint_one("crates/parallel/src/scope.rs", bad);
        assert_eq!(rules_of(&r), vec![RULE_UNSAFE]);
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads.\n    unsafe { *p }\n}";
        assert!(lint_one("crates/parallel/src/scope.rs", good)
            .findings
            .is_empty());
    }

    #[test]
    fn secret_type_without_drop_or_with_debug_fires() {
        let src = r#"
            // lint: secret
            #[derive(Clone, Debug)]
            pub struct KeyMaterial([u8; 32]);
        "#;
        let r = lint_one("crates/hash/src/k.rs", src);
        let rules = rules_of(&r);
        assert_eq!(rules, vec![RULE_SECRET, RULE_SECRET], "{:?}", r.findings);
    }

    #[test]
    fn secret_type_with_drop_and_no_debug_is_clean() {
        let src = r#"
            // lint: secret
            #[derive(Clone)]
            pub struct KeyMaterial([u8; 32]);
            impl Drop for KeyMaterial {
                fn drop(&mut self) {}
            }
        "#;
        let r = lint_one("crates/hash/src/k.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn drop_impl_may_live_in_another_file() {
        let a = (
            "crates/hash/src/k.rs".to_string(),
            "// lint: secret\n#[derive(Clone)]\npub struct KeyMaterial([u8; 32]);".to_string(),
        );
        let b = (
            "crates/hash/src/drop.rs".to_string(),
            "impl Drop for KeyMaterial { fn drop(&mut self) {} }".to_string(),
        );
        let r = lint_files(&[a, b], false);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn secret_in_format_macro_fires_via_taint() {
        // The same-line leak heuristic of PR 3 is now the taint rule's
        // base case. `crates/core` keeps the sink reportable (the hash
        // crate itself declassifies).
        let src = r#"
            // lint: secret
            #[derive(Clone)]
            pub struct KeyMaterial([u8; 32]);
            impl Drop for KeyMaterial { fn drop(&mut self) {} }
            fn leak(k: &KeyMaterial) -> String { format!("{:?}", KeyMaterial::clone(k)) }
        "#;
        let r = lint_one("crates/core/src/k.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_TAINT]);
        assert!(r.findings[0].message.contains("format"));
    }

    #[test]
    fn transport_rule_fires_outside_allowed_crates() {
        let src = "fn f<T: WireTransport>(t: &mut T) { let _ = t; }";
        let hit = lint_one("tests/some_harness.rs", src);
        assert_eq!(rules_of(&hit), vec![RULE_TRANSPORT]);
        let bench = lint_one("crates/bench/src/util.rs", "use x::WireServer;");
        assert_eq!(rules_of(&bench), vec![RULE_TRANSPORT]);
    }

    #[test]
    fn transport_rule_spares_defining_and_wrapping_crates() {
        for path in [
            "crates/cloudsim/src/rpc.rs",
            "crates/resilience/src/transport.rs",
            "crates/testkit/src/fault.rs",
            "crates/net/src/server.rs",
        ] {
            let r = lint_one(path, "pub trait WireTransport {}\nstruct WireServer;");
            assert!(r.findings.is_empty(), "{path}: {:?}", r.findings);
        }
    }

    #[test]
    fn transport_rule_honors_allow_annotation() {
        let src = r#"
            // lint: allow(transport, reason=baseline arm of the with/without comparison)
            fn raw<T: WireTransport>(t: &mut T) { let _ = t; }
        "#;
        let r = lint_one("crates/bench/src/util.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowances.len(), 1);
        assert_eq!(r.allowances[0].rule, RULE_TRANSPORT);
    }

    #[test]
    fn all_rules_mode_ignores_path_scoping() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let r = lint_files(&[("anything.rs".to_string(), src.to_string())], true);
        assert_eq!(rules_of(&r), vec![RULE_PANIC]);
    }
}
