//! Cryptographic hashing for the SecCloud reproduction.
//!
//! Everything is implemented from scratch:
//!
//! * [`Sha256`] — FIPS 180-4 SHA-256 (verified against NIST vectors).
//! * [`hmac_sha256`] — RFC 2104 HMAC over SHA-256.
//! * [`HmacDrbg`] — a deterministic random bit generator in the style of
//!   NIST SP 800-90A HMAC_DRBG, used wherever the protocol needs
//!   reproducible randomness (nonces, audit challenges, simulations).
//!
//! The paper's three hash functions `H : {0,1}* → Z_q`,
//! `H1 : {0,1}* → G1` and `H2 : {0,1}* → Z_q*` are built on these
//! primitives: the `Z_q` maps live here as [`hash_to_int_bytes`] (wide
//! reduction happens in the field layer), and `H1` lives in
//! `seccloud-pairing` as hash-to-curve.
//!
//! # Examples
//!
//! ```
//! use seccloud_hash::Sha256;
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ct;
mod drbg;
mod entropy;
mod hmac;
mod sha256;
mod zeroize;

pub use ct::{ct_eq, hmac_verify};
pub use drbg::HmacDrbg;
pub use entropy::entropy_seed;
pub use hmac::hmac_sha256;
pub use sha256::{Digest, Sha256};
pub use zeroize::{wipe, wipe_copy};

/// Produces `n` bytes of domain-separated hash output by counter-mode
/// expansion: `SHA256(len(domain) ‖ domain ‖ ctr_be ‖ msg)` for
/// `ctr = 0, 1, …`.
///
/// This is the "wide output" building block behind the paper's `H` and `H2`
/// (hash-to-`Z_q`): producing more than 256 bits and reducing mod `q` keeps
/// the output distribution within 2⁻¹²⁸ of uniform.
///
/// # Examples
///
/// ```
/// use seccloud_hash::hash_to_int_bytes;
/// let a = hash_to_int_bytes(b"H2", b"message", 48);
/// let b = hash_to_int_bytes(b"H2", b"message", 48);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 48);
/// assert_ne!(a, hash_to_int_bytes(b"H", b"message", 48));
/// ```
pub fn hash_to_int_bytes(domain: &[u8], msg: &[u8], n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    let mut ctr: u32 = 0;
    while out.len() < n {
        let mut h = Sha256::new();
        h.update(&(domain.len() as u64).to_be_bytes());
        h.update(domain);
        h.update(&ctr.to_be_bytes());
        h.update(msg);
        out.extend_from_slice(&h.finalize());
        ctr += 1;
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_prefix_consistent() {
        let long = hash_to_int_bytes(b"d", b"m", 100);
        let short = hash_to_int_bytes(b"d", b"m", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    fn domain_separation_is_not_length_malleable() {
        // ("ab", "c") must differ from ("a", "bc") thanks to the length
        // prefix on the domain.
        assert_ne!(
            hash_to_int_bytes(b"ab", b"c", 32),
            hash_to_int_bytes(b"a", b"bc", 32)
        );
    }
}
