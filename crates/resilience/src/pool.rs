//! Tier-3 resilience: failover across a replicated server pool.
//!
//! The CSP replicates data across servers (paper Section III-A, the SLA's
//! `replication` knob), so an audit does not have to die with its primary
//! endpoint. [`ResilientPool`] holds one [`ResilientTransport`] per server
//! and runs batches of audit jobs with per-job failover:
//!
//! * a job whose primary endpoint resolves normally yields `Clean` or
//!   `Detected`, exactly as a single-endpoint audit would;
//! * when the primary's circuit breaker is open (or the audit comes back
//!   [`Unresolved`](AuditResolution::Unresolved)), the job **fails over**
//!   to the next replica in its route and, if a replica answers, yields
//!   [`Degraded`](PoolVerdict::Degraded) — the answer is trustworthy, the
//!   service is not;
//! * only when every routed replica fails does the job report
//!   [`Unreachable`](PoolVerdict::Unreachable) — and *only that job*: a
//!   dead server never poisons the rest of the batch.
//!
//! Detection always wins over degradation: a replica that produces
//! cryptographically pinned evidence convicts the pool member regardless of
//! how many failovers it took to reach it.

use seccloud_cloudsim::agency::DesignatedAgency;
use seccloud_cloudsim::rpc::WireTransport;
use seccloud_core::computation::ComputationRequest;
use seccloud_core::CloudUser;

use crate::driver::{run_job_resilient, AuditResolution, RecoveryStats};
use crate::transport::ResilientTransport;

/// One audit job routed across the pool.
#[derive(Clone, Debug)]
pub struct PoolJob {
    /// The computation to dispatch and audit.
    pub request: ComputationRequest,
    /// Endpoint indices to try, in order: primary first, then replicas.
    /// Out-of-range indices are skipped (counted as failed replicas).
    pub route: Vec<usize>,
    /// Challenge sample size `t` for the opening round.
    pub sample_size: usize,
}

/// The per-job outcome of a pool audit batch.
#[must_use = "an unexamined pool verdict silently drops detected cheating"]
#[derive(Clone, Debug)]
pub enum PoolVerdict {
    /// The primary endpoint answered and the audit verified clean.
    Clean {
        /// The answering endpoint index.
        server: usize,
        /// The passing audit's resolution (always `Clean`).
        resolution: AuditResolution,
    },
    /// Some endpoint produced cryptographically pinned wrong results.
    Detected {
        /// The convicted endpoint index.
        server: usize,
        /// Endpoints that failed before the conviction (possibly empty).
        failed_over: Vec<usize>,
        /// The convicting resolution (always `Detected`).
        resolution: AuditResolution,
    },
    /// The primary was down but a replica answered clean: the result is
    /// trustworthy, the service degraded.
    Degraded {
        /// The replica that finally answered.
        server: usize,
        /// The endpoints that failed before it, in route order.
        failed_over: Vec<usize>,
        /// The passing audit's resolution (always `Clean`).
        resolution: AuditResolution,
    },
    /// Every routed endpoint failed; nothing can be concluded about the
    /// computation — but nothing was concluded *wrongly* either.
    Unreachable {
        /// The endpoints that were tried, in route order.
        attempted: Vec<usize>,
        /// The last endpoint's failure reason.
        reason: String,
    },
}

impl PoolVerdict {
    /// Whether the job obtained a trustworthy answer (clean or degraded).
    pub fn answered(&self) -> bool {
        matches!(
            self,
            PoolVerdict::Clean { .. } | PoolVerdict::Degraded { .. }
        )
    }

    /// Whether the job convicted a server.
    pub fn is_detected(&self) -> bool {
        matches!(self, PoolVerdict::Detected { .. })
    }

    /// The recovery stats of the deciding endpoint, when one answered.
    pub fn stats(&self) -> Option<&RecoveryStats> {
        match self {
            PoolVerdict::Clean { resolution, .. }
            | PoolVerdict::Detected { resolution, .. }
            | PoolVerdict::Degraded { resolution, .. } => Some(resolution.stats()),
            PoolVerdict::Unreachable { .. } => None,
        }
    }
}

/// A pool of resilient endpoints with per-job failover (see module docs).
pub struct ResilientPool<T> {
    endpoints: Vec<ResilientTransport<T>>,
}

impl<T> std::fmt::Debug for ResilientPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientPool")
            .field("endpoints", &self.endpoints.len())
            .finish()
    }
}

impl<T: WireTransport> ResilientPool<T> {
    /// A pool over `endpoints` (index = server index in every job route).
    pub fn new(endpoints: Vec<ResilientTransport<T>>) -> Self {
        Self { endpoints }
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// One endpoint, if in range.
    pub fn endpoint(&self, index: usize) -> Option<&ResilientTransport<T>> {
        self.endpoints.get(index)
    }

    /// Mutable access to one endpoint (test fault scheduling), if in range.
    pub fn endpoint_mut(&mut self, index: usize) -> Option<&mut ResilientTransport<T>> {
        self.endpoints.get_mut(index)
    }

    /// Indices of endpoints whose breaker is currently open — the health
    /// tracker's view of the pool.
    pub fn open_breakers(&self) -> Vec<usize> {
        self.endpoints
            .iter()
            .enumerate()
            .filter(|(_, e)| e.breaker_is_open())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total suspicion (authenticated-misbehaviour marks) across the pool.
    pub fn suspicion(&self) -> u64 {
        self.endpoints
            .iter()
            .map(ResilientTransport::suspicion)
            .sum()
    }

    /// Runs every job with per-job failover, returning verdicts in input
    /// order. A job with an empty (or fully out-of-range) route is
    /// `Unreachable`; no job outcome ever depends on another job's servers
    /// being up.
    pub fn audit_many(
        &mut self,
        da: &mut DesignatedAgency,
        owner: &CloudUser,
        jobs: &[PoolJob],
        now: u64,
    ) -> Vec<PoolVerdict> {
        jobs.iter()
            .map(|job| self.run_one(da, owner, job, now))
            .collect()
    }

    fn run_one(
        &mut self,
        da: &mut DesignatedAgency,
        owner: &CloudUser,
        job: &PoolJob,
        now: u64,
    ) -> PoolVerdict {
        let mut attempted = Vec::new();
        let mut last_reason = "empty route".to_string();
        for &server in &job.route {
            let Some(endpoint) = self.endpoints.get_mut(server) else {
                last_reason = format!("endpoint {server} not in pool");
                continue;
            };
            attempted.push(server);
            if endpoint.breaker_is_open() {
                // The health tracker says this server is down: fail over
                // without burning the job's retry budget on it.
                last_reason = format!("endpoint {server} breaker open");
                continue;
            }
            let resolution =
                run_job_resilient(da, endpoint, owner, &job.request, job.sample_size, now);
            match resolution {
                AuditResolution::Clean { .. } => {
                    let failed_over: Vec<usize> = attempted
                        .split_last()
                        .map_or_else(Vec::new, |(_, rest)| rest.to_vec());
                    return if failed_over.is_empty() {
                        PoolVerdict::Clean { server, resolution }
                    } else {
                        PoolVerdict::Degraded {
                            server,
                            failed_over,
                            resolution,
                        }
                    };
                }
                AuditResolution::Detected { .. } => {
                    return PoolVerdict::Detected {
                        server,
                        failed_over: attempted
                            .split_last()
                            .map_or_else(Vec::new, |(_, rest)| rest.to_vec()),
                        resolution,
                    };
                }
                AuditResolution::Unresolved { ref reason, .. } => {
                    last_reason = format!("endpoint {server}: {reason}");
                }
            }
        }
        PoolVerdict::Unreachable {
            attempted,
            reason: last_reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RetryPolicy;
    use seccloud_cloudsim::behavior::Behavior;
    use seccloud_cloudsim::rpc::{encode_store_body, WireServer, WireTransport};
    use seccloud_cloudsim::server::CloudServer;
    use seccloud_core::computation::{ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;
    use seccloud_core::Sio;
    use seccloud_testkit::fault::{Endpoint, FaultKind, FaultyChannel};

    const N_BLOCKS: u64 = 8;

    struct World {
        user: CloudUser,
        da: DesignatedAgency,
        pool: ResilientPool<FaultyChannel<WireServer>>,
    }

    /// A pool of `behaviors.len()` servers, every block replicated to all
    /// of them (full replication: any server can serve any slice).
    fn world(behaviors: &[Behavior], seed: u64) -> World {
        let sio = Sio::new(b"pool-tests");
        let user = sio.register("alice");
        let da = DesignatedAgency::new(&sio, "da", b"agency");
        let servers: Vec<CloudServer> = behaviors
            .iter()
            .enumerate()
            .map(|(i, b)| CloudServer::new(&sio, &format!("cs-{i}"), b.clone(), b"srv"))
            .collect();
        let blocks: Vec<DataBlock> = (0..N_BLOCKS)
            .map(|i| DataBlock::from_values(i, &[i * 3, i + 2]))
            .collect();
        let mut verifiers: Vec<_> = servers.iter().map(|s| s.public().clone()).collect();
        verifiers.push(da.public().clone());
        let refs: Vec<&_> = verifiers.iter().collect();
        let signed = user.sign_blocks(&blocks, &refs);
        let body = encode_store_body(&signed);
        let endpoints = servers
            .into_iter()
            .enumerate()
            .map(|(i, server)| {
                let channel = FaultyChannel::new(WireServer::new(server), seed + i as u64, 0.0);
                let mut t = ResilientTransport::new(
                    channel,
                    RetryPolicy::default(),
                    &[b"pool", &seed.to_be_bytes()[..], &[i as u8]].concat(),
                );
                assert_eq!(
                    t.rpc_store(user.identity(), &body).unwrap(),
                    N_BLOCKS,
                    "replica {i} seeded"
                );
                t
            })
            .collect();
        World {
            user,
            da,
            pool: ResilientPool::new(endpoints),
        }
    }

    fn job(route: &[usize]) -> PoolJob {
        PoolJob {
            request: ComputationRequest::new(
                (0..4u64)
                    .map(|i| RequestItem {
                        function: ComputeFunction::Sum,
                        positions: vec![i, i + 1],
                    })
                    .collect(),
            ),
            route: route.to_vec(),
            sample_size: 4,
        }
    }

    /// Kills an endpoint: every audit and compute payload is truncated
    /// forever, so calls exhaust their retries and trip the breaker.
    fn kill(w: &mut World, index: usize) {
        w.pool
            .endpoint_mut(index)
            .expect("in range")
            .inner_mut()
            .set_forced(Some((Endpoint::Compute, FaultKind::Truncate)));
    }

    #[test]
    fn healthy_pool_resolves_every_job_clean() {
        let mut w = world(&[Behavior::Honest, Behavior::Honest, Behavior::Honest], 1);
        let jobs = [job(&[0, 1]), job(&[1, 2]), job(&[2, 0])];
        let verdicts = w.pool.audit_many(&mut w.da, &w.user, &jobs, 0);
        for (i, v) in verdicts.iter().enumerate() {
            assert!(
                matches!(v, PoolVerdict::Clean { server, .. } if *server == jobs[i].route[0]),
                "job {i}: {v:?}"
            );
        }
        assert!(w.pool.open_breakers().is_empty());
    }

    #[test]
    fn dead_primary_fails_over_to_a_degraded_verdict() {
        let mut w = world(&[Behavior::Honest, Behavior::Honest], 2);
        kill(&mut w, 0);
        let verdicts = w.pool.audit_many(&mut w.da, &w.user, &[job(&[0, 1])], 0);
        let PoolVerdict::Degraded {
            server,
            failed_over,
            resolution,
        } = &verdicts[0]
        else {
            panic!("expected Degraded, got {:?}", verdicts[0]);
        };
        assert_eq!(*server, 1);
        assert_eq!(failed_over, &[0]);
        assert!(resolution.is_clean());
    }

    #[test]
    fn open_breaker_skips_the_primary_without_burning_budget() {
        let mut w = world(&[Behavior::Honest, Behavior::Honest], 3);
        kill(&mut w, 0);
        // First job grinds endpoint 0 down and trips its breaker.
        let first = w.pool.audit_many(&mut w.da, &w.user, &[job(&[0, 1])], 0);
        assert!(first[0].answered());
        assert_eq!(w.pool.open_breakers(), vec![0], "breaker tripped");
        let attempts_before = w
            .pool
            .endpoint(0)
            .expect("in range")
            .stats(crate::transport::Op::Compute)
            .attempts;
        // Second job must fail over instantly: no new wire attempts on 0.
        let second = w.pool.audit_many(&mut w.da, &w.user, &[job(&[0, 1])], 0);
        let PoolVerdict::Degraded { failed_over, .. } = &second[0] else {
            panic!("expected Degraded, got {:?}", second[0]);
        };
        assert_eq!(failed_over, &[0]);
        assert_eq!(
            w.pool
                .endpoint(0)
                .expect("in range")
                .stats(crate::transport::Op::Compute)
                .attempts,
            attempts_before,
            "open breaker means zero traffic to the dead endpoint"
        );
    }

    #[test]
    fn cheating_replica_is_detected_even_after_failover() {
        let mut w = world(
            &[
                Behavior::Honest,
                Behavior::ComputationCheater {
                    csc: 0.0,
                    guess_range: None,
                },
            ],
            4,
        );
        kill(&mut w, 0);
        let verdicts = w.pool.audit_many(&mut w.da, &w.user, &[job(&[0, 1])], 0);
        let PoolVerdict::Detected {
            server,
            failed_over,
            resolution,
        } = &verdicts[0]
        else {
            panic!("expected Detected, got {:?}", verdicts[0]);
        };
        assert_eq!(*server, 1);
        assert_eq!(failed_over, &[0]);
        assert!(resolution.is_detected());
        assert_eq!(w.pool.suspicion(), 1);
    }

    #[test]
    fn fully_dead_route_is_unreachable_and_does_not_poison_the_batch() {
        let mut w = world(&[Behavior::Honest, Behavior::Honest, Behavior::Honest], 5);
        kill(&mut w, 0);
        kill(&mut w, 1);
        let jobs = [job(&[0, 1]), job(&[2])];
        let verdicts = w.pool.audit_many(&mut w.da, &w.user, &jobs, 0);
        let PoolVerdict::Unreachable { attempted, reason } = &verdicts[0] else {
            panic!("expected Unreachable, got {:?}", verdicts[0]);
        };
        assert_eq!(attempted, &[0, 1]);
        assert!(!reason.is_empty());
        assert!(
            matches!(&verdicts[1], PoolVerdict::Clean { server: 2, .. }),
            "the healthy job is unaffected: {:?}",
            verdicts[1]
        );
    }

    #[test]
    fn out_of_range_and_empty_routes_degrade_gracefully() {
        let mut w = world(&[Behavior::Honest], 6);
        let jobs = [job(&[9, 0]), job(&[])];
        let verdicts = w.pool.audit_many(&mut w.da, &w.user, &jobs, 0);
        assert!(
            matches!(&verdicts[0], PoolVerdict::Clean { server: 0, .. }),
            "bad index skipped, real endpoint answers: {:?}",
            verdicts[0]
        );
        let PoolVerdict::Unreachable { attempted, .. } = &verdicts[1] else {
            panic!("expected Unreachable, got {:?}", verdicts[1]);
        };
        assert!(attempted.is_empty());
    }

    #[test]
    fn same_seed_same_batch_outcome() {
        let run = || {
            let mut w = world(&[Behavior::Honest, Behavior::Honest], 7);
            w.pool
                .endpoint_mut(0)
                .expect("in range")
                .inner_mut()
                .set_forced_burst(Endpoint::Audit, FaultKind::BitFlip, 2);
            let verdicts = w
                .pool
                .audit_many(&mut w.da, &w.user, &[job(&[0, 1]), job(&[1, 0])], 0);
            verdicts
                .iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
