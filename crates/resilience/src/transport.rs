//! Tier-1 resilience: a retrying, breaker-gated [`WireTransport`] wrapper.
//!
//! [`ResilientTransport`] sits between the protocol logic and a raw
//! channel. Each RPC is retried under the [`RetryPolicy`] whenever the
//! failure is *structural* — a decode error from the server, a timeout, or
//! a returned payload that does not even parse as the expected message
//! type. Structural damage is unauthenticated channel noise; retrying it is
//! sound and invisible to the protocol above.
//!
//! What tier 1 deliberately does **not** retry:
//!
//! * [`ServerError`](seccloud_cloudsim::server::ServerError)s — deterministic,
//!   authenticated decisions by the far end;
//! * responses that decode but fail *verification* — those reach the audit
//!   driver (tier 2), which decides between escalation and conviction.
//!
//! A per-endpoint [`CircuitBreaker`] watches final call outcomes (not
//! individual attempts) and fails fast while open, so a dead server cannot
//! stall a whole audit batch. Byzantine evidence is tracked separately via
//! [`ResilientTransport::note_byzantine`] and never trips the breaker: a
//! lying server must stay reachable to be convicted.

use seccloud_cloudsim::rpc::{RpcError, WireTransport};
use seccloud_cloudsim::server::ServerError;
use seccloud_core::computation::Commitment;
use seccloud_core::storage::SignedBlock;
use seccloud_core::wire::{Reader, WireMessage};
use seccloud_hash::HmacDrbg;
use seccloud_ibs::{UserPublic, VerifierPublic};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::clock::{LatencyModel, VirtualClock};
use crate::policy::RetryPolicy;

/// The four wire endpoints, as stat buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Block upload.
    Store,
    /// Computation dispatch.
    Compute,
    /// Delegated audit challenge/response.
    Audit,
    /// Single-block retrieval.
    Retrieve,
}

impl Op {
    /// All endpoints, in stat-bucket order.
    pub const ALL: [Op; 4] = [Op::Store, Op::Compute, Op::Audit, Op::Retrieve];

    fn idx(self) -> usize {
        match self {
            Op::Store => 0,
            Op::Compute => 1,
            Op::Audit => 2,
            Op::Retrieve => 3,
        }
    }
}

/// Per-endpoint counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Individual wire attempts (including retries).
    pub attempts: u64,
    /// Calls that ultimately returned a structurally valid result.
    pub successes: u64,
    /// Attempts that failed transiently and were (or could be) retried.
    pub transient_faults: u64,
    /// Authenticated-misbehaviour marks recorded against this endpoint.
    pub byzantine_marks: u64,
}

/// Outcome of one attempt, before retry classification.
enum Attempt<T> {
    Ok(T),
    Transient(RpcError),
    Fatal(RpcError),
}

/// A [`WireTransport`] that retries structural damage, charges virtual
/// latency, and fails fast behind a circuit breaker.
///
/// All nondeterminism (backoff jitter, latency draws) comes from a seeded
/// [`HmacDrbg`] over a [`VirtualClock`], so a recovery schedule replays
/// bit-for-bit from its seed.
pub struct ResilientTransport<T> {
    inner: T,
    policy: RetryPolicy,
    clock: VirtualClock,
    drbg: HmacDrbg,
    latency: Option<LatencyModel>,
    breaker: CircuitBreaker,
    stats: [OpStats; 4],
}

impl<T> std::fmt::Debug for ResilientTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientTransport")
            .field("clock", &self.clock)
            .field("breaker", &self.breaker)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<T: WireTransport> ResilientTransport<T> {
    /// Wraps `inner` with `policy`, seeding the jitter/latency DRBG from
    /// `seed`. The virtual clock starts at zero and no latency is modeled
    /// until [`set_latency`](Self::set_latency).
    pub fn new(inner: T, policy: RetryPolicy, seed: &[u8]) -> Self {
        Self {
            inner,
            policy,
            clock: VirtualClock::new(0),
            drbg: HmacDrbg::new(seed),
            latency: None,
            breaker: CircuitBreaker::new(BreakerConfig::default()),
            stats: [OpStats::default(); 4],
        }
    }

    /// Replaces the breaker configuration (resets the breaker to Closed).
    pub fn set_breaker(&mut self, config: BreakerConfig) {
        self.breaker = CircuitBreaker::new(config);
    }

    /// Installs a per-attempt latency model; attempts whose drawn latency
    /// exceeds the policy's `call_timeout_ms` become transient timeouts.
    pub fn set_latency(&mut self, latency: Option<LatencyModel>) {
        self.latency = latency;
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The transport's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The per-server circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Whether the breaker is refusing traffic right now.
    pub fn breaker_is_open(&self) -> bool {
        self.breaker.is_open(self.clock.now_ms())
    }

    /// Counters for one endpoint.
    pub fn stats(&self, op: Op) -> OpStats {
        self.stats.get(op.idx()).copied().unwrap_or_default()
    }

    /// Total authenticated-misbehaviour marks across all endpoints. Any
    /// nonzero suspicion makes the audit driver escalate its next
    /// challenge.
    pub fn suspicion(&self) -> u64 {
        self.stats.iter().map(|s| s.byzantine_marks).sum()
    }

    /// Records authenticated misbehaviour against `op`. Deliberately does
    /// **not** touch the breaker — see the module docs.
    pub fn note_byzantine(&mut self, op: Op) {
        if let Some(s) = self.stats.get_mut(op.idx()) {
            s.byzantine_marks += 1;
        }
    }

    /// The wrapped channel.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped channel (for test fault scheduling).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the channel.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Charges one attempt's latency; returns `Err(Timeout)` when the draw
    /// exceeds the per-call deadline (the full latency is still charged —
    /// the caller waited that long to find out).
    fn charge_latency(&mut self) -> Result<(), RpcError> {
        let Some(model) = self.latency else {
            return Ok(());
        };
        let elapsed_ms = model.sample(&mut self.drbg);
        self.clock.advance(elapsed_ms);
        if elapsed_ms > self.policy.call_timeout_ms {
            Err(RpcError::Timeout { elapsed_ms })
        } else {
            Ok(())
        }
    }

    /// The shared retry loop: run `attempt` up to `max_attempts` times with
    /// exponential backoff between transient failures, then report the
    /// final outcome to the breaker.
    fn call<R>(
        &mut self,
        op: Op,
        mut attempt: impl FnMut(&mut T) -> Attempt<R>,
    ) -> Result<R, RpcError> {
        if !self.breaker.allow(self.clock.now_ms()) {
            if let Some(s) = self.stats.get_mut(op.idx()) {
                s.transient_faults += 1;
            }
            return Err(RpcError::ChannelUnavailable);
        }
        let mut last = RpcError::ChannelUnavailable;
        for attempt_no in 1..=self.policy.max_attempts.max(1) {
            if attempt_no > 1 {
                let wait = self.policy.backoff_ms(attempt_no - 1, &mut self.drbg);
                self.clock.advance(wait);
            }
            if let Some(s) = self.stats.get_mut(op.idx()) {
                s.attempts += 1;
            }
            let outcome = match self.charge_latency() {
                Err(timeout) => Attempt::Transient(timeout),
                Ok(()) => attempt(&mut self.inner),
            };
            match outcome {
                Attempt::Ok(value) => {
                    if let Some(s) = self.stats.get_mut(op.idx()) {
                        s.successes += 1;
                    }
                    self.breaker.on_success();
                    return Ok(value);
                }
                Attempt::Transient(e) => {
                    if let Some(s) = self.stats.get_mut(op.idx()) {
                        s.transient_faults += 1;
                    }
                    last = e;
                }
                Attempt::Fatal(e) => {
                    // An authenticated server decision: not the channel's
                    // fault, so the breaker stays untouched.
                    return Err(e);
                }
            }
        }
        self.breaker.on_failure(self.clock.now_ms());
        Err(last)
    }
}

/// Splits an [`RpcError`] into retryable vs. final.
fn classify<R>(e: RpcError) -> Attempt<R> {
    if e.is_transient() {
        Attempt::Transient(e)
    } else {
        Attempt::Fatal(e)
    }
}

/// The block indices declared by an (honest, caller-built) store body.
/// Returns `None` when the body itself does not parse — a caller bug, not
/// channel damage, so no read-back is possible.
fn store_body_indices(body: &[u8]) -> Option<Vec<u64>> {
    let mut r = Reader::new(body).ok()?;
    let n = r.take_len_elems(8 + 8 + 8).ok()?;
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(SignedBlock::decode_body(&mut r).ok()?.block().index());
    }
    r.finish().ok()?;
    Some(indices)
}

impl<T: WireTransport> WireTransport for ResilientTransport<T> {
    /// Store with read-your-writes verification: an attempt only counts as
    /// successful when the server accepted *every* block and each uploaded
    /// index reads back as a block at that index. A channel that mangles
    /// part of an upload (the server auth-rejects damaged blocks at ingest)
    /// therefore triggers a clean retry instead of a silent partial store.
    fn rpc_store(&mut self, owner_identity: &str, body: &[u8]) -> Result<u64, RpcError> {
        let expected = store_body_indices(body);
        self.call(Op::Store, |inner| {
            let accepted = match inner.rpc_store(owner_identity, body) {
                Ok(n) => n,
                Err(e) => return classify(e),
            };
            let Some(indices) = &expected else {
                // Unparseable caller body: pass the server's answer through.
                return Attempt::Ok(accepted);
            };
            if accepted != indices.len() as u64 {
                return Attempt::Transient(RpcError::Server(ServerError::RejectedUpload {
                    slot: accepted as usize,
                }));
            }
            for &index in indices {
                let ok = inner
                    .rpc_retrieve(owner_identity, index)
                    .and_then(|bytes| SignedBlock::from_wire(&bytes).ok())
                    .is_some_and(|b| b.block().index() == index);
                if !ok {
                    return Attempt::Transient(RpcError::Server(ServerError::MissingBlock {
                        position: index,
                    }));
                }
            }
            Attempt::Ok(accepted)
        })
    }

    /// Compute with structural validation: the returned bytes must decode
    /// as a [`Commitment`] or the attempt is retried. Whether the
    /// commitment is *correct* is the audit's job, not the transport's.
    fn rpc_compute(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        body: &[u8],
    ) -> Result<(u64, Vec<u8>), RpcError> {
        self.call(Op::Compute, |inner| {
            match inner.rpc_compute(owner_identity, auditor_identity, body) {
                Err(e) => classify(e),
                Ok((job_id, bytes)) => match Commitment::from_wire(&bytes) {
                    Ok(_) => Attempt::Ok((job_id, bytes)),
                    Err(e) => Attempt::Transient(RpcError::Malformed(e)),
                },
            }
        })
    }

    /// Audit with structural validation: the response bytes must decode as
    /// an [`AuditResponse`](seccloud_core::computation::AuditResponse).
    /// Responses that decode but fail verification pass through untouched —
    /// distinguishing replay from lies takes the commitment, which lives a
    /// layer up in [`run_job_resilient`](crate::run_job_resilient).
    fn rpc_audit(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        job_id: u64,
        challenge_bytes: &[u8],
        warrant_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, RpcError> {
        self.call(Op::Audit, |inner| {
            match inner.rpc_audit(
                owner_identity,
                auditor_identity,
                job_id,
                challenge_bytes,
                warrant_bytes,
                now,
            ) {
                Err(e) => classify(e),
                Ok(bytes) => match seccloud_core::computation::AuditResponse::from_wire(&bytes) {
                    Ok(_) => Attempt::Ok(bytes),
                    Err(e) => Attempt::Transient(RpcError::Malformed(e)),
                },
            }
        })
    }

    /// Retrieve with structural validation. `None` from the channel is
    /// authoritative (the server has no such block — retrying cannot
    /// conjure one); bytes that fail to decode as a
    /// [`SignedBlock`] are retried. If every attempt returns damaged
    /// bytes, the *last* damaged payload is returned so the caller's own
    /// verification can only push toward an unhealthy verdict, never a
    /// false pass.
    fn rpc_retrieve(&mut self, owner_identity: &str, position: u64) -> Option<Vec<u8>> {
        let mut last_damaged: Option<Vec<u8>> = None;
        let result = self.call(Op::Retrieve, |inner| {
            match inner.rpc_retrieve(owner_identity, position) {
                None => Attempt::Ok(None),
                Some(bytes) => {
                    if SignedBlock::from_wire(&bytes).is_ok() {
                        Attempt::Ok(Some(bytes))
                    } else {
                        last_damaged = Some(bytes);
                        Attempt::Transient(RpcError::Malformed(
                            seccloud_core::wire::WireError::BadElement,
                        ))
                    }
                }
            }
        });
        match result {
            Ok(found) => found,
            Err(_) => last_damaged,
        }
    }

    fn peer_verifier(&self) -> VerifierPublic {
        self.inner.peer_verifier()
    }

    fn peer_signer(&self) -> UserPublic {
        self.inner.peer_signer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scriptable transport: fails the next `fail_next` calls of every
    /// endpoint with a transient decode error, then succeeds with canned
    /// payloads.
    struct Flaky {
        fail_next: u32,
        calls: u32,
        commitment_bytes: Vec<u8>,
        response_bytes: Vec<u8>,
        block_bytes: Vec<u8>,
        verifier: VerifierPublic,
        signer: UserPublic,
    }

    fn canned() -> Flaky {
        use seccloud_cloudsim::behavior::Behavior;
        use seccloud_cloudsim::server::CloudServer;
        use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
        use seccloud_core::storage::DataBlock;
        use seccloud_core::Sio;

        let sio = Sio::new(b"transport-tests");
        let user = sio.register("alice");
        let mut server = CloudServer::new(&sio, "cs", Behavior::Honest, b"s");
        let da = sio.register_verifier("da");
        let blocks: Vec<DataBlock> = (0..4).map(|i| DataBlock::from_values(i, &[i])).collect();
        let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
        let block_bytes = signed[0].to_wire();
        server.store(&user, signed);
        let request = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![0, 1],
        }]);
        let handle = server
            .handle_computation(&"alice".to_string(), &request, da.public())
            .unwrap();
        let challenge = {
            let mut drbg = seccloud_hash::HmacDrbg::new(b"ch");
            seccloud_core::computation::AuditChallenge::sample(&mut drbg, 1, 1)
        };
        let warrant = seccloud_core::warrant::Warrant::issue(
            &user,
            "da",
            1_000,
            request.digest(),
            &[server.public(), da.public()],
        );
        let response = server
            .handle_audit(handle.job_id, &challenge, &warrant, user.public(), "da", 0)
            .unwrap();
        Flaky {
            fail_next: 0,
            calls: 0,
            commitment_bytes: handle.commitment.to_wire(),
            response_bytes: response.to_wire(),
            block_bytes,
            verifier: server.public().clone(),
            signer: server.signer_public().clone(),
        }
    }

    impl WireTransport for Flaky {
        fn rpc_store(&mut self, _owner: &str, _body: &[u8]) -> Result<u64, RpcError> {
            unimplemented!("store path is covered by the fault-injection suite")
        }

        fn rpc_compute(
            &mut self,
            _owner: &str,
            _auditor: &str,
            _body: &[u8],
        ) -> Result<(u64, Vec<u8>), RpcError> {
            self.calls += 1;
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Err(RpcError::Malformed(
                    seccloud_core::wire::WireError::Truncated,
                ));
            }
            Ok((7, self.commitment_bytes.clone()))
        }

        fn rpc_audit(
            &mut self,
            _owner: &str,
            _auditor: &str,
            _job: u64,
            _challenge: &[u8],
            _warrant: &[u8],
            _now: u64,
        ) -> Result<Vec<u8>, RpcError> {
            self.calls += 1;
            if self.fail_next > 0 {
                self.fail_next -= 1;
                // Decodable garbage is also damage: return bytes that are
                // not an AuditResponse.
                return Ok(vec![0xFF; 9]);
            }
            Ok(self.response_bytes.clone())
        }

        fn rpc_retrieve(&mut self, _owner: &str, position: u64) -> Option<Vec<u8>> {
            self.calls += 1;
            if position == 99 {
                return None;
            }
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Some(vec![0xAB; 5]);
            }
            Some(self.block_bytes.clone())
        }

        fn peer_verifier(&self) -> VerifierPublic {
            self.verifier.clone()
        }

        fn peer_signer(&self) -> UserPublic {
            self.signer.clone()
        }
    }

    fn wrap(inner: Flaky) -> ResilientTransport<Flaky> {
        ResilientTransport::new(inner, RetryPolicy::default(), b"rt-test")
    }

    #[test]
    fn transient_compute_failures_are_retried_to_success() {
        let mut flaky = canned();
        flaky.fail_next = 2;
        let mut rt = wrap(flaky);
        let (job_id, bytes) = rt.rpc_compute("alice", "da", b"ignored").unwrap();
        assert_eq!(job_id, 7);
        assert!(Commitment::from_wire(&bytes).is_ok());
        let s = rt.stats(Op::Compute);
        assert_eq!(s.attempts, 3);
        assert_eq!(s.transient_faults, 2);
        assert_eq!(s.successes, 1);
        assert!(rt.clock().now_ms() > 0, "backoff advanced the clock");
    }

    #[test]
    fn undecodable_audit_responses_count_as_damage() {
        let mut flaky = canned();
        flaky.fail_next = 1;
        let mut rt = wrap(flaky);
        let bytes = rt.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap();
        assert!(seccloud_core::computation::AuditResponse::from_wire(&bytes).is_ok());
        assert_eq!(rt.stats(Op::Audit).transient_faults, 1);
    }

    #[test]
    fn exhausted_retries_trip_the_breaker_and_fail_fast() {
        let mut flaky = canned();
        flaky.fail_next = u32::MAX; // never heals
        let mut rt = wrap(flaky);
        rt.set_breaker(BreakerConfig {
            failure_threshold: 2,
            cooloff_ms: 1_000_000,
            max_cooloff_ms: 1_000_000,
        });
        let per_call = rt.policy().max_attempts;
        assert!(rt.rpc_compute("a", "d", b"").is_err());
        assert!(rt.rpc_compute("a", "d", b"").is_err());
        assert!(rt.breaker_is_open());
        let attempts_before = rt.stats(Op::Compute).attempts;
        assert_eq!(attempts_before, u64::from(per_call) * 2);
        assert_eq!(
            rt.rpc_compute("a", "d", b"").unwrap_err(),
            RpcError::ChannelUnavailable,
            "open breaker fails fast"
        );
        assert_eq!(
            rt.stats(Op::Compute).attempts,
            attempts_before,
            "no wire traffic while open"
        );
    }

    #[test]
    fn missing_block_is_authoritative_not_retried() {
        let mut rt = wrap(canned());
        assert!(rt.rpc_retrieve("alice", 99).is_none());
        let s = rt.stats(Op::Retrieve);
        assert_eq!(s.attempts, 1, "None is final: no retry");
        assert_eq!(s.successes, 1);
    }

    #[test]
    fn persistently_damaged_retrieve_returns_the_damage() {
        let mut flaky = canned();
        flaky.fail_next = u32::MAX;
        let mut rt = wrap(flaky);
        let bytes = rt.rpc_retrieve("alice", 0).expect("damaged bytes surface");
        assert!(
            SignedBlock::from_wire(&bytes).is_err(),
            "caller's verification sees the damage and reports unhealthy"
        );
    }

    #[test]
    fn byzantine_marks_raise_suspicion_without_touching_the_breaker() {
        let mut rt = wrap(canned());
        assert_eq!(rt.suspicion(), 0);
        rt.note_byzantine(Op::Audit);
        rt.note_byzantine(Op::Audit);
        assert_eq!(rt.suspicion(), 2);
        assert_eq!(rt.stats(Op::Audit).byzantine_marks, 2);
        assert!(!rt.breaker_is_open(), "liars stay reachable");
    }

    #[test]
    fn latency_over_deadline_becomes_a_transient_timeout() {
        let mut rt = wrap(canned());
        rt.policy.call_timeout_ms = 10;
        rt.set_latency(Some(LatencyModel {
            base_ms: 50,
            jitter_ms: 0,
        }));
        let err = rt.rpc_compute("a", "d", b"").unwrap_err();
        assert!(matches!(err, RpcError::Timeout { elapsed_ms: 50 }));
        assert!(err.is_transient());
        assert_eq!(
            rt.inner().calls,
            0,
            "timed-out attempts never reach the server"
        );
        assert!(rt.clock().now_ms() >= 200, "latency was still charged");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut flaky = canned();
            flaky.fail_next = 3;
            let mut rt = ResilientTransport::new(flaky, RetryPolicy::default(), b"det");
            rt.set_latency(Some(LatencyModel {
                base_ms: 5,
                jitter_ms: 4,
            }));
            rt.rpc_compute("a", "d", b"").unwrap();
            (rt.clock().now_ms(), rt.stats(Op::Compute))
        };
        assert_eq!(run(), run());
    }
}
