//! Signing, designation, verification and verifier-side simulation
//! (paper Sections V-B and VII-B).

use seccloud_hash::HmacDrbg;
use seccloud_pairing::{pairing, pairing_prepared, Fr, Gt, G1, G2};

use crate::keys::{SystemParams, UserKey, UserPublic, VerifierKey, VerifierPublic};

/// The raw identity-based signature `(U, V)` before designation.
///
/// Publicly verifiable against the master public key — which is exactly why
/// the protocol never transmits it: the user immediately transforms it with
/// [`designate`] and deletes `V`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbsSignature {
    u: G1,
    v: G1,
}

impl IbsSignature {
    /// The commitment component `U = r·Q_ID`.
    pub fn u(&self) -> &G1 {
        &self.u
    }

    /// The proof component `V = (r + h)·sk_ID`.
    pub fn v(&self) -> &G1 {
        &self.v
    }

    /// Public verification `ê(V, P₂) = ê(U + h·Q_ID, s·P₂)` — the underlying
    /// Cha–Cheon check. Anyone holding the system parameters can run this,
    /// which is the capability the designated transform removes.
    pub fn verify_public(
        &self,
        params: &SystemParams,
        signer: &UserPublic,
        message: &[u8],
    ) -> bool {
        let h = challenge_hash(&self.u, message);
        let lhs = pairing(&self.v.to_affine(), &G2::generator().to_affine());
        let target = self.u.add(&signer.q().mul_fr(&h));
        let rhs = pairing(&target.to_affine(), &params.p_pub_g2().to_affine());
        lhs == rhs
    }
}

/// A designated-verifier signature `(U, Σ)` with `Σ = ê(V, Q_V)`.
///
/// Only the named verifier (holding `sk_V = s·Q_V`) can check it, and the
/// verifier itself can forge indistinguishable ones ([`simulate`]), so the
/// signature convinces no third party — the paper's privacy-cheating
/// discouragement (Definition 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DesignatedSignature {
    u: G1,
    sigma: Gt,
}

impl DesignatedSignature {
    /// The commitment component `U`.
    pub fn u(&self) -> &G1 {
        &self.u
    }

    /// The designated proof `Σ ∈ GT`.
    pub fn sigma(&self) -> &Gt {
        &self.sigma
    }

    /// Constructs from raw parts (used by serialization layers and the
    /// simulator; verification decides validity).
    pub fn from_parts(u: G1, sigma: Gt) -> Self {
        Self { u, sigma }
    }

    /// Designated verification (paper eq. 5 / eq. 7):
    /// `Σ = ê(U + H2(U‖m)·Q_ID, sk_V)`.
    ///
    /// Pairs against the verifier's cached [`seccloud_pairing::G2Prepared`]
    /// key, so repeated verifications skip the twist arithmetic entirely.
    pub fn verify(&self, verifier: &VerifierKey, signer: &UserPublic, message: &[u8]) -> bool {
        let h = challenge_hash(&self.u, message);
        let target = self.u.add(&signer.q().mul_fr(&h));
        pairing_prepared(&target.to_affine(), &verifier.sk_prepared()).ct_eq(&self.sigma)
    }

    /// What a *non-designated* third party can conclude from the signature:
    /// nothing. This helper runs the only check available without `sk_V` —
    /// pairing against the public `Q_V` — and documents that it never
    /// authenticates (it compares against `ê(·, Q_V)` which differs from `Σ`
    /// by the unknown master secret exponent).
    pub fn third_party_check_is_useless(
        &self,
        verifier: &VerifierPublic,
        signer: &UserPublic,
        message: &[u8],
    ) -> bool {
        let h = challenge_hash(&self.u, message);
        let target = self.u.add(&signer.q().mul_fr(&h));
        // A third party can compute this value…
        let guess = pairing_prepared(&target.to_affine(), &verifier.q_prepared());
        // …but it never equals Σ (unless s = 1): there is no public
        // equation linking Σ to the message.
        guess == self.sigma
    }
}

/// The challenge hash `h = H2(U ‖ m) ∈ Z_q*` (paper Section V-B-1).
pub(crate) fn challenge_hash(u: &G1, message: &[u8]) -> Fr {
    let ua = u.to_affine();
    let mut input = Vec::with_capacity(64 + message.len());
    if ua.is_identity() {
        input.extend_from_slice(&[0u8; 64]);
    } else {
        input.extend_from_slice(&ua.x().to_be_bytes());
        input.extend_from_slice(&ua.y().to_be_bytes());
    }
    input.extend_from_slice(message);
    Fr::hash_nonzero(&input)
}

/// Signs a message block: `U = r·Q_ID`, `V = (r + H2(U‖m))·sk_ID`, with the
/// nonce `r` derived deterministically from the key, message and `nonce`
/// bytes (RFC-6979 style — no RNG misuse possible).
pub fn sign(user: &UserKey, message: &[u8], nonce: &[u8]) -> IbsSignature {
    let mut seed = Vec::new();
    seed.extend_from_slice(user.identity().as_bytes());
    seed.extend_from_slice(&(message.len() as u64).to_be_bytes());
    seed.extend_from_slice(message);
    seed.extend_from_slice(nonce);
    let mut drbg = HmacDrbg::new(&seed);
    sign_with_rng(user, message, &mut drbg)
}

/// Signs with an explicit randomness source (for protocol layers that
/// manage their own DRBG).
pub fn sign_with_rng(user: &UserKey, message: &[u8], drbg: &mut HmacDrbg) -> IbsSignature {
    let r = Fr::random_nonzero(drbg);
    // Constant-time ladders: leaking the nonce `r` through the wNAF digit
    // pattern leaks `sk` via `V = (r + h)·sk`.
    let u = user.public().q().mul_fr_ct(&r);
    let h = challenge_hash(&u, message);
    let v = user.sk().mul_fr_ct(&r.add(&h));
    IbsSignature { u, v }
}

/// Transforms a raw signature into its designated form for `verifier`:
/// `Σ = ê(V, Q_V)` (paper Section V-B-1, "the user then transforms the
/// signature through the idea of designated signature").
pub fn designate(sig: &IbsSignature, verifier: &VerifierPublic) -> DesignatedSignature {
    DesignatedSignature {
        u: sig.u,
        sigma: pairing_prepared(&sig.v.to_affine(), &verifier.q_prepared()),
    }
}

/// Verifier-side simulation: the designated verifier fabricates a signature
/// on any `(signer, message)` pair that passes its own verification — the
/// non-transferability property (paper Section IV-B / VII-B: "the verifier
/// could take advantage of its private key to generate a fake signature").
pub fn simulate(
    verifier: &VerifierKey,
    signer: &UserPublic,
    message: &[u8],
    drbg: &mut HmacDrbg,
) -> DesignatedSignature {
    let r = Fr::random_nonzero(drbg);
    let u = signer.q().mul_fr_ct(&r);
    let h = challenge_hash(&u, message);
    let target = u.add(&signer.q().mul_fr(&h));
    let sigma = pairing_prepared(&target.to_affine(), &verifier.sk_prepared());
    DesignatedSignature { u, sigma }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MasterKey;

    fn setup() -> (MasterKey, UserKey, VerifierKey, VerifierKey) {
        let m = MasterKey::from_seed(b"ibs-tests");
        let user = m.extract_user("alice@example.com");
        let cs = m.extract_verifier("cs-01");
        let da = m.extract_verifier("da-gov");
        (m, user, cs, da)
    }

    #[test]
    fn raw_signature_verifies_publicly() {
        let (m, user, _, _) = setup();
        let sig = sign(&user, b"block-0", b"n0");
        assert!(sig.verify_public(m.params(), user.public(), b"block-0"));
        assert!(!sig.verify_public(m.params(), user.public(), b"block-1"));
    }

    #[test]
    fn raw_signature_rejects_wrong_signer_or_params() {
        let (m, user, _, _) = setup();
        let sig = sign(&user, b"block-0", b"n0");
        let mallory = UserPublic::from_identity("mallory");
        assert!(!sig.verify_public(m.params(), &mallory, b"block-0"));
        let other = MasterKey::from_seed(b"other-system");
        assert!(!sig.verify_public(other.params(), user.public(), b"block-0"));
    }

    #[test]
    fn designated_signature_verifies_only_for_the_designee() {
        let (_, user, cs, da) = setup();
        let raw = sign(&user, b"m", b"n");
        let for_cs = designate(&raw, cs.public());
        assert!(for_cs.verify(&cs, user.public(), b"m"));
        // The DA cannot verify a CS-designated signature with its own key.
        assert!(!for_cs.verify(&da, user.public(), b"m"));
        // A separate designation for the DA verifies for the DA.
        let for_da = designate(&raw, da.public());
        assert!(for_da.verify(&da, user.public(), b"m"));
    }

    #[test]
    fn designated_signature_binds_message_and_signer() {
        let (_, user, cs, _) = setup();
        let d = designate(&sign(&user, b"m", b"n"), cs.public());
        assert!(!d.verify(&cs, user.public(), b"m'"));
        assert!(!d.verify(&cs, &UserPublic::from_identity("eve"), b"m"));
    }

    #[test]
    fn third_party_learns_nothing() {
        let (_, user, cs, _) = setup();
        let d = designate(&sign(&user, b"secret-data", b"n"), cs.public());
        // The only public computation never matches.
        assert!(!d.third_party_check_is_useless(cs.public(), user.public(), b"secret-data"));
    }

    #[test]
    fn simulated_signatures_verify_like_real_ones() {
        let (_, user, cs, _) = setup();
        let mut drbg = HmacDrbg::new(b"sim");
        let fake = simulate(&cs, user.public(), b"never signed this", &mut drbg);
        // The verifier's own check accepts the forgery…
        assert!(fake.verify(&cs, user.public(), b"never signed this"));
        // …which is precisely why a leaked designated signature is
        // worthless as evidence (privacy-cheating discouragement).
    }

    #[test]
    fn simulated_and_real_signatures_have_identical_shape() {
        let (_, user, cs, _) = setup();
        let real = designate(&sign(&user, b"m", b"n"), cs.public());
        let mut drbg = HmacDrbg::new(b"sim2");
        let fake = simulate(&cs, user.public(), b"m", &mut drbg);
        // Same structural form; both verify; a distinguisher has nothing
        // deterministic to latch onto.
        assert!(real.verify(&cs, user.public(), b"m"));
        assert!(fake.verify(&cs, user.public(), b"m"));
        assert_ne!(real, fake, "distinct randomness, distinct transcripts");
    }

    #[test]
    fn nonce_separation_prevents_identical_signatures() {
        let (_, user, _, _) = setup();
        let s1 = sign(&user, b"m", b"n1");
        let s2 = sign(&user, b"m", b"n2");
        assert_ne!(s1, s2);
        // Deterministic per (key, message, nonce):
        assert_eq!(sign(&user, b"m", b"n1"), s1);
    }

    #[test]
    fn tampered_u_component_fails() {
        let (_, user, cs, _) = setup();
        let raw = sign(&user, b"m", b"n");
        let d = designate(&raw, cs.public());
        let tampered = DesignatedSignature::from_parts(d.u().double(), *d.sigma());
        assert!(!tampered.verify(&cs, user.public(), b"m"));
    }

    #[test]
    fn signature_over_empty_and_large_messages() {
        let (_, user, cs, _) = setup();
        for msg in [Vec::new(), vec![0u8; 10_000]] {
            let d = designate(&sign(&user, &msg, b"n"), cs.public());
            assert!(d.verify(&cs, user.public(), &msg));
        }
    }
}
