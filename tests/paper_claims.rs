//! The paper's quantitative claims, each pinned as a test:
//! eq. 9 (batch correctness), eq. 10/12/14 (uncheatability), Fig. 4 anchors,
//! Theorem 3 (optimal sampling), Table II orderings, and Definition 2
//! (privacy preserving).

use seccloud::cloudsim::montecarlo::{run, Experiment};
use seccloud::core::analysis::costmodel::{CostParams, SchemeCosts, VerificationCostModel};
use seccloud::core::analysis::sampling::{
    cheat_probability, fcs_probability, pcs_probability, required_sample_size, CheatParams,
};
use seccloud::hash::HmacDrbg;
use seccloud::ibs::{designate, sign, simulate, BatchItem, BatchVerifier, MasterKey};

#[test]
fn equation_9_batch_correctness_across_users_and_blocks() {
    // Σ_A = Π ê(V_ij, Q_CS) must equal ê(Σ(U_ij + h_ij·Q_IDi), sk_CS) for
    // any mix of k users with n_i blocks each.
    let sio = MasterKey::from_seed(b"eq9");
    let server = sio.extract_verifier("cs");
    let mut batch = BatchVerifier::new();
    for (i, n_i) in [(0, 1usize), (1, 3), (2, 2)] {
        let user = sio.extract_user(&format!("user-{i}"));
        for j in 0..n_i {
            let msg = format!("m-{i}-{j}").into_bytes();
            let sig = designate(&sign(&user, &msg, b"n"), server.public());
            batch.push(user.public().clone(), msg, sig);
        }
    }
    assert_eq!(batch.len(), 6);
    assert!(batch.verify(&server));
}

#[test]
fn equation_10_fcs_probability() {
    // Pr[FCS] = (CSC + (1−CSC)/R)^t
    let p = CheatParams::new(0.6, 1.0).with_range(5.0);
    let base: f64 = 0.6 + 0.4 / 5.0;
    for t in [1u32, 3, 10] {
        assert!((fcs_probability(&p, t) - base.powi(t as i32)).abs() < 1e-12);
    }
}

#[test]
fn equation_12_pcs_probability() {
    // Pr[PCS] = (SSC + (1−SSC)·Pr[SigForge])^t
    let p = CheatParams::new(1.0, 0.7).with_sig_forge(1e-3);
    let base: f64 = 0.7 + 0.3 * 1e-3;
    for t in [1u32, 5, 20] {
        assert!((pcs_probability(&p, t) - base.powi(t as i32)).abs() < 1e-12);
    }
}

#[test]
fn equation_14_union_bound_clamped() {
    let p = CheatParams::new(0.5, 0.5).with_range(2.0);
    let total = cheat_probability(&p, 4);
    assert!((total - (fcs_probability(&p, 4) + pcs_probability(&p, 4))).abs() < 1e-12);
    assert_eq!(cheat_probability(&CheatParams::new(1.0, 1.0), 5), 1.0);
}

#[test]
fn figure_4_anchors() {
    assert_eq!(
        required_sample_size(&CheatParams::new(0.5, 0.5).with_range(2.0), 1e-4),
        Some(33),
        "paper: R = 2 needs 33 samples"
    );
    assert_eq!(
        required_sample_size(&CheatParams::new(0.5, 0.5), 1e-4),
        Some(15),
        "paper: R → ∞ needs 15 samples"
    );
}

#[test]
fn figure_4_grid_is_monotone_in_confidence() {
    // More honest work on the cheated fraction ⇒ more samples needed.
    let mut last = 0;
    for conf in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let t = required_sample_size(&CheatParams::new(conf, conf).with_range(2.0), 1e-4)
            .expect("detectable");
        assert!(t >= last, "t must grow with confidence");
        last = t;
    }
}

#[test]
fn theorem_3_optimal_t_is_globally_minimal() {
    let params = CostParams::new(1.0, 2.0, 1e7);
    for q in [0.3, 0.5, 0.8] {
        let t_star = params.optimal_sample_size(q).unwrap();
        let c_star = params.total_cost(t_star, q);
        for t in 0..2_000u32 {
            assert!(c_star <= params.total_cost(t, q) + 1e-9, "q={q} t={t}");
        }
    }
}

#[test]
fn montecarlo_matches_closed_form() {
    let params = CheatParams::new(0.8, 0.9).with_range(2.0);
    let result = run(
        &Experiment {
            params,
            n: 300,
            t: 8,
            trials: 5_000,
        },
        b"paper-claims",
    );
    assert!(
        result.abs_error() <= result.three_sigma().max(0.015),
        "simulated {} vs analytic {}",
        result.escape_rate,
        result.analytic
    );
}

#[test]
fn table_2_cost_model_orderings() {
    // The analytic orderings the paper's Table II implies, using its own
    // Table I numbers.
    let m = VerificationCostModel::new(SchemeCosts::paper_table_1());
    for n in 3..=60 {
        // batch(ours) = 2 pairings < batch(BGLS) = n+1 pairings
        assert!(m.ours_ms(n) < m.bgls_ms(n) + n as f64 * m.costs.t_pmul_ms);
        // batch(ours) < individual(ours) = n pairings
        assert!(m.ours_ms(n) < m.individual_ms(n));
    }
}

#[test]
fn definition_2_privacy_preserving() {
    // A designated signature leaks nothing a third party can verify, and
    // the designee can simulate it — both halves of the paper's argument.
    let sio = MasterKey::from_seed(b"def2");
    let user = sio.extract_user("alice");
    let cs = sio.extract_verifier("cs");
    let real = designate(&sign(&user, b"secret", b"n"), cs.public());
    // Third party check never authenticates.
    assert!(!real.third_party_check_is_useless(cs.public(), user.public(), b"secret"));
    // Simulation: the verifier forges an equally-valid signature.
    let mut drbg = HmacDrbg::new(b"def2-sim");
    let fake = simulate(&cs, user.public(), b"secret", &mut drbg);
    assert!(real.verify(&cs, user.public(), b"secret"));
    assert!(fake.verify(&cs, user.public(), b"secret"));
}

#[test]
fn batch_saves_pairings_in_practice() {
    // Ground-truth timing sanity (loose 2x bound, not a microbenchmark):
    // batching 8 signatures must be at least 2× faster than individual.
    use std::time::Instant;
    let sio = MasterKey::from_seed(b"speed");
    let server = sio.extract_verifier("cs");
    let items: Vec<BatchItem> = (0..8)
        .map(|i| {
            let user = sio.extract_user(&format!("u{i}"));
            let msg = format!("m{i}").into_bytes();
            let sig = designate(&sign(&user, &msg, b"n"), server.public());
            BatchItem {
                signer: user.public().clone(),
                message: msg,
                signature: sig,
            }
        })
        .collect();

    let start = Instant::now();
    assert!(seccloud::ibs::verify_individually(&items, &server).is_none());
    let individual = start.elapsed();

    let start = Instant::now();
    let mut batch = BatchVerifier::new();
    for item in &items {
        batch.push_item(item);
    }
    assert!(batch.verify(&server));
    let batched = start.elapsed();

    assert!(
        batched * 2 < individual,
        "batch {batched:?} vs individual {individual:?}"
    );
}
