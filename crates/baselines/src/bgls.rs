//! BGLS aggregate signatures (Boneh–Gentry–Lynn–Shacham, Eurocrypt 2003) —
//! the `BGLS` row of Table II.
//!
//! Short BLS signatures `σ = sk·H(m) ∈ G1` with public keys in `G2`;
//! aggregation sums signatures and verifies with `n + 1` pairings
//! (vs SecCloud's designated batch at a constant 2).

use seccloud_hash::HmacDrbg;
use seccloud_pairing::{hash_to_g1, multi_pairing, pairing, Fr, G1Affine, G2Affine, Gt, G1, G2};

/// A BLS signing key.
#[derive(Clone)]
pub struct BlsKeyPair {
    sk: Fr,
    public: BlsPublicKey,
}

impl std::fmt::Debug for BlsKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlsKeyPair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// A BLS verification key `pk = sk·P₂ ∈ G2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlsPublicKey {
    pk: G2,
}

/// A (possibly aggregated) BLS signature in `G1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlsSignature(G1);

impl BlsKeyPair {
    /// Generates a key pair deterministically from a seed.
    pub fn generate(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::new(seed);
        let sk = Fr::random_nonzero(&mut drbg);
        Self {
            public: BlsPublicKey {
                pk: G2::generator().mul_fr(&sk),
            },
            sk,
        }
    }

    /// The verification key.
    pub fn public(&self) -> &BlsPublicKey {
        &self.public
    }

    /// Signs: `σ = sk·H(m)`.
    pub fn sign(&self, message: &[u8]) -> BlsSignature {
        BlsSignature(hash_to_g1(message).mul_fr(&self.sk))
    }
}

impl BlsPublicKey {
    /// Verifies `ê(σ, P₂) = ê(H(m), pk)` — two pairings.
    pub fn verify(&self, message: &[u8], sig: &BlsSignature) -> bool {
        let lhs = pairing(
            &sig.0.to_affine(),
            &G2Affine::from(G2::generator().to_affine()),
        );
        let rhs = pairing(&hash_to_g1(message).to_affine(), &self.pk.to_affine());
        lhs == rhs
    }
}

/// Aggregates signatures by summation: `σ_A = Σ σᵢ`.
pub fn aggregate(sigs: &[BlsSignature]) -> BlsSignature {
    BlsSignature(sigs.iter().fold(G1::identity(), |acc, s| acc.add(&s.0)))
}

/// Verifies an aggregate over `(pk, message)` pairs with `n + 1` pairings
/// (one shared final exponentiation via the multi-pairing):
/// `ê(σ_A, −P₂) · Πᵢ ê(H(mᵢ), pkᵢ) = 1`.
///
/// Distinct-message aggregation only — duplicate messages under different
/// keys are rejected to rule out the classic rogue-key-style forgery, as in
/// the original BGLS security model.
pub fn verify_aggregate(pairs: &[(&BlsPublicKey, &[u8])], aggregate_sig: &BlsSignature) -> bool {
    if pairs.is_empty() {
        return aggregate_sig.0.is_identity();
    }
    // Enforce message distinctness.
    let mut msgs: Vec<&[u8]> = pairs.iter().map(|(_, m)| *m).collect();
    msgs.sort_unstable();
    if msgs.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    let mut terms: Vec<(G1Affine, G2Affine)> = Vec::with_capacity(pairs.len() + 1);
    terms.push((
        aggregate_sig.0.neg().to_affine(),
        G2::generator().to_affine(),
    ));
    for (pk, msg) in pairs {
        terms.push((hash_to_g1(msg).to_affine(), pk.pk.to_affine()));
    }
    multi_pairing(&terms) == Gt::one()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sign_verify() {
        let key = BlsKeyPair::generate(b"bls-1");
        let sig = key.sign(b"message");
        assert!(key.public().verify(b"message", &sig));
        assert!(!key.public().verify(b"other", &sig));
    }

    #[test]
    fn cross_key_rejection() {
        let k1 = BlsKeyPair::generate(b"a");
        let k2 = BlsKeyPair::generate(b"b");
        let sig = k1.sign(b"m");
        assert!(!k2.public().verify(b"m", &sig));
    }

    #[test]
    fn aggregate_of_distinct_messages_verifies() {
        let keys: Vec<_> = (0..5)
            .map(|i| BlsKeyPair::generate(format!("agg-{i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..5u32).map(|i| format!("msg-{i}").into_bytes()).collect();
        let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        let agg = aggregate(&sigs);
        let pairs: Vec<(&BlsPublicKey, &[u8])> = keys
            .iter()
            .zip(&msgs)
            .map(|(k, m)| (k.public(), m.as_slice()))
            .collect();
        assert!(verify_aggregate(&pairs, &agg));
    }

    #[test]
    fn aggregate_detects_any_bad_component() {
        let keys: Vec<_> = (0..3)
            .map(|i| BlsKeyPair::generate(format!("bad-{i}").as_bytes()))
            .collect();
        let msgs = [b"m0".to_vec(), b"m1".to_vec(), b"m2".to_vec()];
        let mut sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        // Replace one signature with a signature on a different message.
        sigs[1] = keys[1].sign(b"forged");
        let agg = aggregate(&sigs);
        let pairs: Vec<(&BlsPublicKey, &[u8])> = keys
            .iter()
            .zip(&msgs)
            .map(|(k, m)| (k.public(), m.as_slice()))
            .collect();
        assert!(!verify_aggregate(&pairs, &agg));
    }

    #[test]
    fn duplicate_messages_rejected() {
        let k1 = BlsKeyPair::generate(b"dup-1");
        let k2 = BlsKeyPair::generate(b"dup-2");
        let sigs = [k1.sign(b"same"), k2.sign(b"same")];
        let agg = aggregate(&sigs);
        let pairs: Vec<(&BlsPublicKey, &[u8])> =
            vec![(k1.public(), b"same"), (k2.public(), b"same")];
        assert!(!verify_aggregate(&pairs, &agg));
    }

    #[test]
    fn empty_aggregate_is_identity_only() {
        assert!(verify_aggregate(&[], &aggregate(&[])));
        let k = BlsKeyPair::generate(b"nonempty");
        assert!(!verify_aggregate(&[], &k.sign(b"m")));
    }

    #[test]
    fn aggregation_is_order_independent() {
        let keys: Vec<_> = (0..4)
            .map(|i| BlsKeyPair::generate(format!("ord-{i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..4u32).map(|i| format!("m-{i}").into_bytes()).collect();
        let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        let mut rev = sigs.clone();
        rev.reverse();
        assert_eq!(aggregate(&sigs), aggregate(&rev));
    }
}
