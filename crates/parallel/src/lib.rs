//! Dependency-free data parallelism for the SecCloud workspace.
//!
//! The pairing-heavy hot paths (per-block designated-signature transforms,
//! audit response verification, Merkle tree construction, Monte Carlo
//! detection sweeps) are embarrassingly parallel, but the build must stay
//! offline-capable — no rayon, no crossbeam. This crate supplies the one
//! primitive those paths need: a chunked, order-preserving parallel map on
//! `std::thread::scope`.
//!
//! ## Threading model
//!
//! * The worker count defaults to [`std::thread::available_parallelism`]
//!   and can be pinned with the `SECCLOUD_THREADS` environment variable
//!   (`SECCLOUD_THREADS=1` forces serial execution; useful for profiling
//!   and for bit-for-bit A/B tests against the serial paths).
//! * Output order always equals input order regardless of worker count —
//!   every item's result lands in its input slot, so parallel and serial
//!   execution are observationally identical for pure per-item closures.
//! * Workers receive contiguous chunks; per-item closures also get the
//!   item's *global* index, which callers use to derive independent,
//!   deterministic DRBG streams per item (fork-by-index), keeping results
//!   reproducible under any `SECCLOUD_THREADS` setting.
//!
//! # Examples
//!
//! ```
//! let squares = seccloud_parallel::parallel_map(&[1u64, 2, 3, 4], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The configured worker count: `SECCLOUD_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (at least 1).
pub fn num_threads() -> usize {
    match std::env::var("SECCLOUD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on up to [`num_threads`] scoped workers,
/// preserving input order. The closure receives `(global_index, item)`.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_threads(items, num_threads(), f)
}

/// Like [`parallel_map`] with an explicit worker count (clamped to
/// `1..=items.len()`). `threads == 1` runs serially on the calling thread.
pub fn parallel_map_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let base = w * chunk;
                for (j, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Like [`parallel_map`], but each worker gets *mutable* access to its
/// items — the primitive for dispatching work onto a pool of stateful
/// targets (e.g. one simulated cloud server per slot), each owned by
/// exactly one worker for the duration of the call.
pub fn parallel_map_mut<T, U, F>(items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().clamp(1, n);
    if workers == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items
            .chunks_mut(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let base = w * chunk;
                for (j, (item, slot)) in in_chunk.iter_mut().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Splits `0..n` into up to `threads` contiguous ranges and maps `f` over
/// them concurrently — the building block for parallel reductions: each
/// worker folds its range locally, the caller merges the partials.
pub fn parallel_ranges<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    let chunk = n.div_ceil(workers);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    parallel_map_threads(&ranges, workers, |_, r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 103, 500] {
            let got = parallel_map_threads(&items, threads, |_, x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn indices_are_global() {
        let items = vec![(); 57];
        for threads in [1, 4, 57] {
            let got = parallel_map_threads(&items, threads, |i, _| i);
            assert_eq!(got, (0..57).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map_threads(&none, 8, |_, x| *x).is_empty());
        assert_eq!(parallel_map_threads(&[5u8], 8, |_, x| *x + 1), vec![6]);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for (n, threads) in [(10, 3), (1, 1), (16, 16), (7, 100), (64, 5)] {
            let ranges = parallel_ranges(n, threads, |r| r);
            let mut covered: Vec<usize> = ranges.into_iter().flatten().collect();
            covered.sort_unstable();
            assert_eq!(
                covered,
                (0..n).collect::<Vec<_>>(),
                "n={n} threads={threads}"
            );
        }
    }

    #[test]
    fn ranges_fold_matches_serial_sum() {
        let partials = parallel_ranges(1000, 8, |r| r.map(|i| i as u64).sum::<u64>());
        assert_eq!(partials.into_iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn map_mut_mutates_every_item_in_order() {
        let mut items: Vec<u64> = (0..67).collect();
        let returned = parallel_map_mut(&mut items, |i, x| {
            *x += 100;
            i
        });
        assert_eq!(items, (100..167).collect::<Vec<u64>>());
        assert_eq!(returned, (0..67).collect::<Vec<usize>>());
    }
}
