//! The group `G1 = E(Fp)` with `E : y² = x³ + 3`.

use crate::ec::{Affine, CurveParams, Point};
use crate::fp::Fp;
use crate::fr::Fr;

/// Curve parameters for `G1`.
#[derive(Clone, Copy, Debug)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fp;
    const NAME: &'static str = "G1";

    fn coeff_b() -> Fp {
        Fp::from_u64(3)
    }

    fn generator() -> (Fp, Fp) {
        (Fp::from_u64(1), Fp::from_u64(2))
    }
}

/// A `G1` point in Jacobian coordinates.
pub type G1 = Point<G1Params>;
/// A `G1` point in affine coordinates.
pub type G1Affine = Affine<G1Params>;

impl G1 {
    /// Scalar multiplication by an `Fr` scalar, using the GLV endomorphism
    /// split (`k = k₁ + λ·k₂` with half-length `k₁, k₂` — see the `glv`
    /// module); `G1` is the one group where the curve automorphism
    /// `(x, y) ↦ (βx, y)` acts by a scalar, so only this entry point takes
    /// the fast path.
    ///
    /// # Examples
    ///
    /// ```
    /// use seccloud_pairing::{Fr, G1};
    /// let g = G1::generator();
    /// let two_g = g.mul_fr(&Fr::from_u64(2));
    /// assert_eq!(two_g, g.double());
    /// ```
    pub fn mul_fr(&self, k: &Fr) -> Self {
        crate::glv::mul_glv(self, k)
    }

    /// Constant-time scalar multiplication for *secret* scalars (key
    /// extraction, per-signature nonces): a fixed double-and-always-add
    /// ladder with no GLV decomposition (the lattice reduction is
    /// variable-time in the scalar) and no wNAF recoding. Several times
    /// slower than [`G1::mul_fr`] — reserve it for key material.
    pub fn mul_fr_ct(&self, k: &Fr) -> Self {
        self.mul_u256_ct(&k.to_u256())
    }
}

impl G1Affine {
    /// Serializes to 32 bytes: the big-endian `x` coordinate with two flag
    /// bits folded into the (always-zero for BN254) top bits — bit 7 of
    /// byte 0 marks infinity, bit 6 carries the `y` parity.
    pub fn to_compressed(&self) -> [u8; 32] {
        if self.is_identity() {
            let mut out = [0u8; 32];
            out[0] = 0x80;
            return out;
        }
        let mut out = self.x().to_be_bytes();
        if self.y().is_odd() {
            out[0] |= 0x40;
        }
        out
    }

    /// Deserializes a compressed point, verifying the curve equation.
    ///
    /// Returns `None` for malformed encodings (non-canonical `x`, flag
    /// misuse, or `x` not on the curve). `G1` has cofactor 1, so every
    /// decoded point automatically has order `r`.
    pub fn from_compressed(bytes: &[u8; 32]) -> Option<Self> {
        let infinity = bytes[0] & 0x80 != 0;
        let y_odd = bytes[0] & 0x40 != 0;
        let mut x_bytes = *bytes;
        x_bytes[0] &= 0x3f;
        if infinity {
            // Canonical infinity encoding is exactly 0x80 ‖ 0³¹.
            return (!y_odd && x_bytes.iter().all(|&b| b == 0)).then_some(Self::identity());
        }
        let x = Fp::from_be_bytes(&x_bytes)?;
        let y2 = x.square().mul(&x).add(&Fp::from_u64(3));
        let y_even = y2.sqrt()?; // canonical even root
        let y = if y_odd { y_even.neg() } else { y_even };
        Self::from_xy(x, y)
    }
}

/// Hashes arbitrary bytes onto `G1` by try-and-increment (the paper's
/// `H1 : {0,1}* → G1`, used for identity public keys `Q_ID`).
///
/// Deterministic, domain-separated, and always returns a point on the curve;
/// `G1` has cofactor 1 so every curve point already has order `r`.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::hash_to_g1;
/// let q = hash_to_g1(b"alice@example.com");
/// assert!(q.to_affine().is_on_curve());
/// assert_ne!(q, hash_to_g1(b"bob@example.com"));
/// ```
pub fn hash_to_g1(msg: &[u8]) -> G1 {
    for ctr in 0u32.. {
        let mut input = Vec::with_capacity(msg.len() + 4);
        input.extend_from_slice(msg);
        input.extend_from_slice(&ctr.to_be_bytes());
        let x = Fp::from_hash(b"seccloud/H1/g1", &input);
        let y2 = x.square().mul(&x).add(&Fp::from_u64(3));
        if let Some(y) = y2.sqrt() {
            // Deterministic sign choice from the hash input.
            let sign = seccloud_hash::hash_to_int_bytes(b"seccloud/H1/g1/sign", &input, 1)[0] & 1;
            let y = if sign == 1 { y.neg() } else { y };
            let p = G1Affine::from_xy(x, y).expect("constructed on curve");
            return G1::from(p);
        }
    }
    unreachable!("try-and-increment terminates with overwhelming probability")
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_bigint::U256;

    #[test]
    fn ct_ladder_matches_wnaf_glv() {
        let g = G1::generator();
        let mut drbg = seccloud_hash::HmacDrbg::new(b"g1-ct-ladder");
        for _ in 0..8 {
            let k = Fr::random_nonzero(&mut drbg);
            assert_eq!(g.mul_fr_ct(&k), g.mul_fr(&k));
        }
        assert!(g.mul_fr_ct(&Fr::zero()).is_identity());
        assert_eq!(g.mul_fr_ct(&Fr::from_u64(1)), g);
        // r − 1 exercises the full 254-bit ladder depth: (r−1)·G = −G.
        let r_minus_1 = Fr::zero().sub(&Fr::from_u64(1));
        assert_eq!(g.mul_fr_ct(&r_minus_1), g.neg());
    }

    #[test]
    fn ct_add_handles_every_degenerate_case() {
        let g = G1::generator();
        let p = g.mul_fr(&Fr::from_u64(5));
        let q = g.mul_fr(&Fr::from_u64(9));
        assert_eq!(p.add_ct(&q), p.add(&q));
        assert_eq!(p.add_ct(&p), p.double());
        assert!(p.add_ct(&p.neg()).is_identity());
        assert_eq!(G1::identity().add_ct(&p), p);
        assert_eq!(p.add_ct(&G1::identity()), p);
        assert!(G1::identity().add_ct(&G1::identity()).is_identity());
        assert_eq!(p.double_ct(), p.double());
        assert!(G1::identity().double_ct().is_identity());
    }

    #[test]
    fn generator_is_on_curve_and_has_order_r() {
        let g = G1::generator();
        assert!(g.to_affine().is_on_curve());
        let r = Fr::modulus();
        assert!(g.mul_u256(&r).is_identity());
        // But not lower order r/small-factor (r is prime, so just ≠ identity
        // for a couple of scalars).
        assert!(!g.mul_u256(&U256::from_u64(2)).is_identity());
        assert!(!g.mul_u256(&r.wrapping_sub(&U256::ONE)).is_identity());
    }

    #[test]
    fn group_laws() {
        let g = G1::generator();
        let a = g.mul_fr(&Fr::from_u64(5));
        let b = g.mul_fr(&Fr::from_u64(7));
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b), g.mul_fr(&Fr::from_u64(12)));
        assert_eq!(a.sub(&a), G1::identity());
        assert_eq!(a.add(&G1::identity()), a);
        assert_eq!(g.double(), g.add(&g));
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = G1::generator();
        let k1 = Fr::hash(b"k1");
        let k2 = Fr::hash(b"k2");
        // [k1+k2]G = [k1]G + [k2]G
        assert_eq!(g.mul_fr(&k1.add(&k2)), g.mul_fr(&k1).add(&g.mul_fr(&k2)));
        // [k1·k2]G = [k1]([k2]G)
        assert_eq!(g.mul_fr(&k1.mul(&k2)), g.mul_fr(&k2).mul_fr(&k1));
    }

    #[test]
    fn affine_round_trip() {
        let p = G1::generator().mul_fr(&Fr::from_u64(99));
        let a = p.to_affine();
        assert_eq!(G1::from(a), p);
        assert!(a.is_on_curve());
        // Identity round-trips too.
        assert!(G1::from(G1Affine::identity()).is_identity());
    }

    #[test]
    fn from_xy_rejects_off_curve_points() {
        assert!(G1Affine::from_xy(Fp::from_u64(1), Fp::from_u64(3)).is_none());
        assert!(G1Affine::from_xy(Fp::from_u64(1), Fp::from_u64(2)).is_some());
    }

    #[test]
    fn hash_to_g1_properties() {
        let p1 = hash_to_g1(b"identity-a");
        let p2 = hash_to_g1(b"identity-a");
        let p3 = hash_to_g1(b"identity-b");
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert!(!p1.is_identity());
        assert!(p1.to_affine().is_on_curve());
        // Hashed points are in the r-torsion (cofactor 1).
        assert!(p1.mul_u256(&Fr::modulus()).is_identity());
    }

    #[test]
    fn negation_law() {
        let p = hash_to_g1(b"neg");
        assert!(p.add(&p.neg()).is_identity());
        let a = p.to_affine();
        assert_eq!(G1::from(a.neg()), p.neg());
    }
}
