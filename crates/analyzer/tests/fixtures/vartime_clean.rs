//! Clean twin of `vartime_bad.rs`: variable-time primitives reached with
//! public inputs only; key material routed through the constant-time
//! sibling.

// lint: secret
pub struct UserKey {
    sk: u64,
}

impl Drop for UserKey {
    fn drop(&mut self) {}
}

/// Variable-time by naming convention — fine for public operands.
fn modinv_vartime(x: u64) -> u64 {
    x ^ 1
}

/// Constant-time sibling for secret operands.
fn modinv_ct(x: u64) -> u64 {
    x ^ 1
}

/// Public wire data may take the fast path.
pub fn normalize_public(wire: u64) -> u64 {
    modinv_vartime(wire)
}

/// Key material takes the constant-time route.
pub fn normalize_secret(k: &UserKey) -> u64 {
    modinv_ct(k.sk)
}
