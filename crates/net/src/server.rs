//! [`NetServer`]: a `WireTransport` served over real TCP.
//!
//! The server owns a listener bound to loopback, an accept thread, and a
//! worker pool sized by `seccloud_parallel::num_threads()` (the
//! `SECCLOUD_THREADS` knob). Each accepted connection gets per-connection
//! read/write deadlines (`set_read_timeout`/`set_write_timeout`), is
//! served at most [`NetServerConfig::max_requests_per_conn`] requests, and
//! is then closed — a deliberate churn source that forces clients to
//! exercise their reconnect path even against an honest server.
//!
//! Admission is bounded: accepted sockets enter a queue of
//! [`NetServerConfig::backlog`] slots; when every worker is busy and the
//! queue is full, the newest connection is shed (dropped) rather than
//! queued without bound — load-shedding beats unbounded memory growth, and
//! the client sees an ordinary [`WireError::ConnectionLost`] it already
//! knows how to retry.
//!
//! The wrapped transport sits behind one mutex. That serializes request
//! *dispatch*, matching the `&mut self` contract of `WireTransport` — the
//! concurrency the pool buys is in socket I/O (framing, syscalls,
//! deadlines), which dominates the loopback round trip.
//!
//! [`WireError::ConnectionLost`]: seccloud_core::wire::WireError::ConnectionLost

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use seccloud_cloudsim::rpc::{RpcError, WireTransport};
use seccloud_core::wire::{WireError, WireMessage};

use crate::frame::{read_frame, write_frame};
use crate::proto::{NetRequest, NetResponse};

/// Tuning for a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Per-connection read deadline in milliseconds.
    pub read_timeout_ms: u64,
    /// Per-connection write deadline in milliseconds.
    pub write_timeout_ms: u64,
    /// Requests served on one connection before the server closes it.
    pub max_requests_per_conn: u64,
    /// Accepted-connection queue depth; connections beyond it are shed.
    pub backlog: usize,
    /// Worker count override; `None` defers to `SECCLOUD_THREADS`.
    pub workers: Option<usize>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            max_requests_per_conn: 64,
            backlog: 64,
            workers: None,
        }
    }
}

/// Cumulative counters exported by a running server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted and handed to a worker.
    pub accepted: u64,
    /// Connections shed because the admission queue was full.
    pub shed: u64,
    /// Requests answered (including typed-error responses).
    pub served: u64,
}

struct Shared {
    shutdown: AtomicBool,
    accepted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
}

/// A running TCP front-end over a [`WireTransport`]; dropping the handle
/// (or calling [`NetServer::shutdown`]) stops the accept loop and joins
/// every thread.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer({})", self.addr)
    }
}

impl NetServer {
    /// Binds `127.0.0.1:0` and starts serving `transport`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure if no loopback port is available.
    pub fn spawn<T>(transport: T, config: NetServerConfig) -> std::io::Result<Self>
    where
        T: WireTransport + Send + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
        });
        let transport = Arc::new(Mutex::new(transport));
        let workers = config
            .workers
            .unwrap_or_else(seccloud_parallel::num_threads)
            .max(1);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let transport = Arc::clone(&transport);
            let config = config.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(&rx, &shared, &transport, &config);
            }));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &tx, &shared);
            }));
        }
        Ok(Self {
            addr,
            shared,
            threads,
        })
    }

    /// The bound loopback address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's counters.
    pub fn stats(&self) -> NetServerStats {
        NetServerStats {
            // lint: ordering(Relaxed: monotonic stats counters read for reporting; they guard no other memory)
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            // lint: ordering(Relaxed: monotonic stats counters read for reporting; they guard no other memory)
            shed: self.shared.shed.load(Ordering::Relaxed),
            // lint: ordering(Relaxed: monotonic stats counters read for reporting; they guard no other memory)
            served: self.shared.served.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains the workers and joins every thread.
    pub fn shutdown(mut self) -> NetServerStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        // lint: ordering(SeqCst: single shutdown latch observed by accept + worker threads; cost is irrelevant on this path)
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, shared: &Shared) {
    // lint: ordering(SeqCst: shutdown latch; pairs with the store in stop_and_join)
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                match tx.try_send(stream) {
                    Ok(()) => {
                        // lint: ordering(Relaxed: monotonic stats counter; publishes no other memory)
                        shared.accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(conn)) => {
                        // Admission queue full: shed the newcomer. Dropping
                        // the stream closes it; the client classifies the
                        // close as ConnectionLost and retries.
                        drop(conn);
                        // lint: ordering(Relaxed: monotonic stats counter; publishes no other memory)
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn worker_loop<T: WireTransport>(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    shared: &Shared,
    transport: &Arc<Mutex<T>>,
    config: &NetServerConfig,
) {
    // lint: ordering(SeqCst: shutdown latch; pairs with the store in stop_and_join)
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Hold the receiver lock only for a non-blocking dequeue: a
        // blocking `recv` under the mutex would park this worker *inside*
        // the critical section, so its peers could not even poll the
        // queue until a connection arrived (the `blocking` lint rejects
        // exactly that shape). Empty-queue waiting happens outside the
        // lock instead, where it stalls nobody.
        let conn = {
            let Ok(guard) = rx.lock() else { return };
            guard.try_recv()
        };
        match conn {
            Ok(stream) => serve_connection(stream, shared, transport, config),
            Err(TryRecvError::Empty) => std::thread::sleep(Duration::from_millis(1)),
            Err(TryRecvError::Disconnected) => return,
        }
    }
}

fn serve_connection<T: WireTransport>(
    mut stream: TcpStream,
    shared: &Shared,
    transport: &Arc<Mutex<T>>,
    config: &NetServerConfig,
) {
    // Deadlines are set here — in the worker, before the first read — so
    // the `deadline` rule can prove every frame op below is covered on
    // *this* stream, rather than trusting the accept thread to have
    // configured the socket before queueing it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms.max(1))));
    for _ in 0..config.max_requests_per_conn.max(1) {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(WireError::FrameTooLarge) => {
                // Length bomb: tell the peer why, then hang up — once the
                // declared length is a lie, frame sync is unrecoverable.
                let resp = NetResponse::Failed(RpcError::Malformed(WireError::FrameTooLarge));
                let _ = write_frame(&mut stream, &resp.to_wire());
                return;
            }
            // Boundary close, deadline, mid-frame cut, desync: nothing
            // sensible can be written back on this socket.
            Err(_) => return,
        };
        let response = match NetRequest::from_wire(&payload) {
            Ok(request) => {
                let Ok(mut t) = transport.lock() else { return };
                // lint: lock(the transport mutex IS the dispatch serialization point — WireTransport is &mut self, so request handling, pairing included, must run under it; per-request work is bounded by the frame cap and the client-side deadline)
                dispatch(&mut *t, request)
            }
            // The frame arrived intact but its payload is garbage — answer
            // with the typed decode error and keep the connection (framing
            // is still synchronized).
            Err(e) => NetResponse::Failed(RpcError::Malformed(e)),
        };
        if write_frame(&mut stream, &response.to_wire()).is_err() {
            return;
        }
        // lint: ordering(Relaxed: monotonic stats counter; publishes no other memory)
        shared.served.fetch_add(1, Ordering::Relaxed);
        // lint: ordering(SeqCst: shutdown latch; pairs with the store in stop_and_join)
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
    // Request cap reached: close. The client reconnects transparently.
}

/// Maps one decoded request onto the wrapped transport.
fn dispatch<T: WireTransport>(t: &mut T, request: NetRequest) -> NetResponse {
    match request {
        NetRequest::Store { owner, body } => match t.rpc_store(&owner, &body) {
            Ok(n) => NetResponse::Stored(n),
            Err(e) => NetResponse::Failed(e),
        },
        NetRequest::Compute {
            owner,
            auditor,
            body,
        } => match t.rpc_compute(&owner, &auditor, &body) {
            Ok((job_id, commitment)) => NetResponse::Computed { job_id, commitment },
            Err(e) => NetResponse::Failed(e),
        },
        NetRequest::Audit {
            owner,
            auditor,
            job_id,
            challenge,
            warrant,
            now,
        } => match t.rpc_audit(&owner, &auditor, job_id, &challenge, &warrant, now) {
            Ok(bytes) => NetResponse::Audited(bytes),
            Err(e) => NetResponse::Failed(e),
        },
        NetRequest::Retrieve { owner, position } => {
            NetResponse::Retrieved(t.rpc_retrieve(&owner, position))
        }
    }
}
