//! Writes `BENCH_scale.json` — the sharded registry at fleet scale:
//! enrollment throughput and peak-memory curves up to one million
//! simulated tenants, per-shard commitment and epoch-rotation cost, and
//! ≥ 100 k audits per epoch through the fused cross-shard verifier with
//! the prepared-key LRU cache on vs off.
//!
//! The audit unit is the production ingest path: one aggregated user
//! audit resolves its shard verifier's prepared key via
//! `VerifierKey::sk_prepared()` (the secret-side prepared-key LRU,
//! `seccloud_pairing::cache::secret()`) and folds its `(U_A, Σ_A)`
//! aggregate into the epoch accumulator; every `fuse_every` audits one
//! fused, small-exponent-randomized `multi_miller_loop` check closes the
//! window (paper eqs. 8–9). The *cache-off* arm replays the pre-cache
//! behaviour — every key resolution re-prepares the Miller-loop lines —
//! by pinning both prepared-key caches' capacities to zero. The headline
//! number is the cache-on / cache-off throughput ratio.
//!
//! Run with `cargo run --release -p seccloud-bench --bin bench_scale`.
//! `--smoke` shrinks the run to CI size (≤ 10 k users); `--out PATH`
//! redirects the JSON (default `BENCH_scale.json` in the working
//! directory).
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use seccloud_ibs::{designate, sign, BatchVerifier, MasterKey, UserPublic, VerifierKey};
use seccloud_pairing::{G2Prepared, Gt, G1};
use seccloud_registry::{EpochVerifier, UserRegistry};

/// Scale parameters for one run.
struct Params {
    mode: &'static str,
    users: usize,
    shards: u32,
    audits_per_epoch: usize,
    active_users: usize,
    sigs_per_audit: usize,
    fuse_every: usize,
    checkpoints: Vec<usize>,
}

impl Params {
    fn full() -> Self {
        Params {
            mode: "full",
            users: 1_000_000,
            shards: 64,
            audits_per_epoch: 100_000,
            active_users: 256,
            sigs_per_audit: 4,
            fuse_every: 10_000,
            checkpoints: vec![10_000, 100_000, 250_000, 500_000, 1_000_000],
        }
    }

    fn smoke() -> Self {
        Params {
            mode: "smoke",
            users: 5_000,
            shards: 16,
            audits_per_epoch: 200,
            active_users: 32,
            sigs_per_audit: 2,
            fuse_every: 50,
            checkpoints: vec![1_000, 2_500, 5_000],
        }
    }
}

/// `(VmRSS, VmHWM)` in KiB from `/proc/self/status`, or zeros where the
/// file is unavailable (non-Linux).
fn memory_kb() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

/// One enrollment-curve sample.
struct Checkpoint {
    users: usize,
    elapsed_ms: f64,
    users_per_sec: f64,
    vm_rss_kb: u64,
    vm_hwm_kb: u64,
}

/// One pre-aggregated audit unit: a user's batch of designated
/// signatures reduced to its eq.-(8) fold terms for one epoch.
struct AuditUnit {
    shard: u32,
    u: G1,
    sigma: Gt,
    count: usize,
}

/// One measured audit arm (an epoch's worth of audits, cache on or off).
struct Arm {
    epoch: u64,
    cache: &'static str,
    audits: usize,
    signatures: usize,
    elapsed_ms: f64,
    audits_per_sec: f64,
    fused_checks: usize,
    all_valid: bool,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

/// Extracts this epoch's per-shard designated verifiers.
fn shard_verifiers(sio: &MasterKey, epoch: u64, shards: u32) -> Vec<VerifierKey> {
    (0..shards)
        .map(|s| sio.extract_verifier(&format!("da/epoch-{epoch}/shard-{s}")))
        .collect()
}

/// Builds the active users' audit units for the registry's current
/// epoch: each active user signs `sigs` blocks, designates them to its
/// shard's verifier, and the batch collapses to one `(U_A, Σ_A)` pair.
fn build_pool(
    sio: &MasterKey,
    registry: &UserRegistry,
    verifiers: &[VerifierKey],
    active: usize,
    sigs: usize,
) -> Vec<AuditUnit> {
    (0..active)
        .map(|i| {
            let id = format!("tenant-{i}");
            let user = sio.extract_user(&id);
            let shard = registry.shard_of(&id);
            let verifier = &verifiers[shard as usize];
            let mut batch = BatchVerifier::new();
            for j in 0..sigs {
                let msg = format!("epoch-{} block {i}/{j}", registry.epoch()).into_bytes();
                let nonce = format!("nonce {i}/{j}").into_bytes();
                let designated = designate(&sign(&user, &msg, &nonce), verifier.public());
                batch.push(user.public().clone(), msg, designated);
            }
            let (u, sigma) = batch.aggregate().expect("non-empty batch");
            AuditUnit {
                shard,
                u,
                sigma,
                count: sigs,
            }
        })
        .collect()
}

/// Runs one epoch's audit arm: `audits` ingests through the prepared-key
/// cache + epoch accumulator, a fused check every `fuse_every` folds.
fn run_arm(
    p: &Params,
    pool: &[AuditUnit],
    verifiers: &[VerifierKey],
    epoch: u64,
    cache_label: &'static str,
) -> Arm {
    // `sk_prepared` resolves through the secret-side cache (never the
    // shared public one), so that is where the arm's counters live.
    let cache = seccloud_pairing::cache::secret();
    cache.reset_counters();
    // The fused check needs every shard's key handle; resolving them up
    // front is S cache operations against `audits` in the loop.
    let keys: Vec<Arc<G2Prepared>> = verifiers.iter().map(VerifierKey::sk_prepared).collect();

    let mut ev = EpochVerifier::new(p.shards, epoch);
    let mut fused_checks = 0usize;
    let mut all_valid = true;
    let mut signatures = 0usize;
    let started = Instant::now();
    for i in 0..p.audits_per_epoch {
        let unit = &pool[i % pool.len()];
        // The production ingest path: per-audit prepared-key resolution
        // (hit = O(1) map lookup; with the cache disabled this re-runs
        // the full Miller-loop preparation) plus the eq.-(8) fold.
        let _key = verifiers[unit.shard as usize].sk_prepared();
        ev.fold_aggregate(unit.shard, &unit.u, &unit.sigma, unit.count);
        signatures += unit.count;
        if (i + 1) % p.fuse_every == 0 {
            all_valid &= ev.verify(&keys);
            fused_checks += 1;
            ev = EpochVerifier::new(p.shards, epoch);
        }
    }
    if ev.folded() > 0 {
        all_valid &= ev.verify(&keys);
        fused_checks += 1;
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
    Arm {
        epoch,
        cache: cache_label,
        audits: p.audits_per_epoch,
        signatures,
        elapsed_ms,
        audits_per_sec: p.audits_per_epoch as f64 / (elapsed_ms / 1_000.0),
        fused_checks,
        all_valid,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cache_evictions: cache.evictions(),
    }
}

fn main() {
    let mut out_path = "BENCH_scale.json".to_string();
    let mut p = Params::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => p = Params::smoke(),
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument: {other}"),
        }
    }

    let sio = MasterKey::from_seed(b"bench-scale");

    // Phase 1: enrollment curve.
    println!("enrolling {} tenants into {} shards…", p.users, p.shards);
    let mut registry = UserRegistry::new(p.shards, 1);
    let mut curve: Vec<Checkpoint> = Vec::new();
    let started = Instant::now();
    for i in 0..p.users {
        registry.enroll(UserPublic::from_identity(&format!("tenant-{i}")));
        if p.checkpoints.contains(&(i + 1)) {
            let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let (rss, hwm) = memory_kb();
            println!(
                "  {:>9} users  {:>9.0} users/s  rss {:>8} KiB",
                i + 1,
                (i + 1) as f64 / (elapsed_ms / 1_000.0),
                rss
            );
            curve.push(Checkpoint {
                users: i + 1,
                elapsed_ms,
                users_per_sec: (i + 1) as f64 / (elapsed_ms / 1_000.0),
                vm_rss_kb: rss,
                vm_hwm_kb: hwm,
            });
        }
    }

    // Phase 2: per-shard commitments and epoch rotation.
    let t = Instant::now();
    let commitments = registry.commitments();
    let commit_ms = t.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(commitments.len(), p.shards as usize);
    println!("committed {} shards in {commit_ms:.0} ms", p.shards);

    // Phase 3: epoch-1 audits, cache on.
    let verifiers1 = shard_verifiers(&sio, 1, p.shards);
    let pool1 = build_pool(
        &sio,
        &registry,
        &verifiers1,
        p.active_users,
        p.sigs_per_audit,
    );
    let arm_on = run_arm(&p, &pool1, &verifiers1, 1, "on");
    println!(
        "epoch 1 (cache on):  {} audits in {:>8.0} ms  ({:>9.0} audits/s, {} hits / {} misses)",
        arm_on.audits,
        arm_on.elapsed_ms,
        arm_on.audits_per_sec,
        arm_on.cache_hits,
        arm_on.cache_misses
    );
    assert!(arm_on.all_valid, "cache-on fused checks must pass");

    // Phase 4: rotation re-deals the population and rebinds commitments.
    let t = Instant::now();
    let epoch = registry.rotate_epoch();
    let rotated = registry.commitments();
    let rotate_ms = t.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(epoch, 2);
    assert!(commitments.iter().zip(&rotated).all(|(a, b)| a != b));
    println!("rotated to epoch 2 and recommitted in {rotate_ms:.0} ms");

    // Phase 5: epoch-2 audits, cache pinned off — the pre-cache world
    // where every key resolution re-prepares the Miller-loop lines.
    let verifiers2 = shard_verifiers(&sio, 2, p.shards);
    let pool2 = build_pool(
        &sio,
        &registry,
        &verifiers2,
        p.active_users,
        p.sigs_per_audit,
    );
    let public_cache = seccloud_pairing::cache::global();
    let secret_cache = seccloud_pairing::cache::secret();
    let restore_public = public_cache.capacity();
    let restore_secret = secret_cache.capacity();
    public_cache.set_capacity(0);
    secret_cache.set_capacity(0);
    let arm_off = run_arm(&p, &pool2, &verifiers2, 2, "off");
    public_cache.set_capacity(restore_public);
    secret_cache.set_capacity(restore_secret);
    println!(
        "epoch 2 (cache off): {} audits in {:>8.0} ms  ({:>9.0} audits/s, {} misses)",
        arm_off.audits, arm_off.elapsed_ms, arm_off.audits_per_sec, arm_off.cache_misses
    );
    assert!(arm_off.all_valid, "cache-off fused checks must pass");

    let speedup = arm_on.audits_per_sec / arm_off.audits_per_sec;
    let (_, peak_kb) = memory_kb();
    println!("prepared-verification speedup (cache on / off): {speedup:.1}x");

    // JSON report.
    let mut curve_rows = String::new();
    for (i, c) in curve.iter().enumerate() {
        if i > 0 {
            curve_rows.push_str(",\n");
        }
        curve_rows.push_str(&format!(
            "    {{ \"users\": {}, \"elapsed_ms\": {:.1}, \"users_per_sec\": {:.1}, \
             \"vm_rss_kb\": {}, \"vm_hwm_kb\": {} }}",
            c.users, c.elapsed_ms, c.users_per_sec, c.vm_rss_kb, c.vm_hwm_kb
        ));
    }
    let mut arm_rows = String::new();
    for (i, a) in [&arm_on, &arm_off].iter().enumerate() {
        if i > 0 {
            arm_rows.push_str(",\n");
        }
        arm_rows.push_str(&format!(
            "    {{ \"epoch\": {}, \"cache\": \"{}\", \"audits\": {}, \"signatures\": {}, \
             \"elapsed_ms\": {:.1}, \"audits_per_sec\": {:.1}, \"fused_checks\": {}, \
             \"all_valid\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {} }}",
            a.epoch,
            a.cache,
            a.audits,
            a.signatures,
            a.elapsed_ms,
            a.audits_per_sec,
            a.fused_checks,
            a.all_valid,
            a.cache_hits,
            a.cache_misses,
            a.cache_evictions
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"seccloud-bench-scale/v1\",\n  \"mode\": \"{}\",\n  \
         \"users\": {},\n  \"shards\": {},\n  \"audits_per_epoch\": {},\n  \
         \"active_users\": {},\n  \"sigs_per_audit\": {},\n  \"threads\": {},\n  \
         \"enrollment_curve\": [\n{curve_rows}\n  ],\n  \
         \"commit_ms\": {:.1},\n  \"rotate_ms\": {:.1},\n  \
         \"audit_arms\": [\n{arm_rows}\n  ],\n  \
         \"cache_speedup\": {:.2},\n  \"peak_memory_kb\": {}\n}}\n",
        p.mode,
        p.users,
        p.shards,
        p.audits_per_epoch,
        p.active_users,
        p.sigs_per_audit,
        seccloud_parallel::num_threads(),
        commit_ms,
        rotate_ms,
        speedup,
        peak_kb,
    );
    std::fs::write(&out_path, &json).expect("write scale report");
    println!("wrote {out_path}");
}
