//! A bounded, thread-safe LRU cache of [`G2Prepared`] keys.
//!
//! Preparing a `G2` point (recording its Miller-loop line coefficients)
//! costs roughly one unprepared Miller loop — about 0.7–1.25 ms depending
//! on the arithmetic backend. A designated agency serving many tenants
//! pairs against the *same* handful of verifier keys millions of times per
//! epoch, so re-preparing per lookup is the difference between a few
//! hundred and a few hundred thousand verifications per second. This
//! module supplies the amortization layer: a capacity-bounded
//! least-recently-used map from the point's canonical compressed encoding
//! to its shared prepared form.
//!
//! Properties the rest of the workspace relies on:
//!
//! * **Canonical keys.** Entries are keyed by
//!   [`G2Affine::to_compressed`], so two callers holding equal points (in
//!   any coordinate representation) share one preparation — and points
//!   from *different* deployments (different master keys) never collide.
//! * **Determinism.** A cached entry is [`G2Prepared`]-equal to a fresh
//!   preparation of the same point; eviction and re-insertion round-trips
//!   are therefore observationally invisible (asserted in tests).
//! * **No lock held while preparing.** A miss releases the map lock for
//!   the expensive preparation, so concurrent lookups of *other* keys
//!   proceed; two racing misses on the same key both prepare and the
//!   later insert wins (both results are identical).
//! * **Capacity 0 disables caching** — every lookup prepares fresh and
//!   nothing is retained. The scale benchmark's "cache off" arm and the
//!   unit tests use this to measure exactly what the cache buys.
//! * **O(log n) eviction.** Recency is indexed by a `BTreeMap` keyed on
//!   the use-stamp, so each eviction pops the oldest stamp instead of
//!   min-scanning the map — shrinking a full cache via
//!   [`PreparedCache::set_capacity`] is O(n log n), not O(n²).
//!
//! Two process-wide instances exist, split by the sensitivity of what
//! they hold:
//!
//! * [`global`] caches **public** points only — `seccloud-ibs` routes
//!   `q_prepared` (verifier *public* key) lookups through it. Capacity
//!   defaults to [`DEFAULT_GLOBAL_CAPACITY`], pinned with
//!   `SECCLOUD_PREPARED_CACHE` (read once, at first use).
//! * [`secret`] caches **secret-derived** preparations — `sk_prepared`
//!   (the designated verifier's private key) routes here, and nothing
//!   else shares the instance. Entries are [`G2Prepared`] values, which
//!   wipe their line coefficients on drop, so LRU eviction, `clear()`
//!   and `set_capacity(0)` all zeroize rather than merely free. Capacity
//!   defaults to [`DEFAULT_SECRET_CAPACITY`], pinned with
//!   `SECCLOUD_SECRET_PREPARED_CACHE`.
//!
//! Keeping the two populations in separate instances means public-key
//! churn can never evict (or be used to probe) secret-derived entries,
//! and secret material is never resident in the cache that general
//! wire-handling code touches.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::g2::G2Affine;
use crate::prepared::G2Prepared;

/// Capacity of the [`global`] cache when `SECCLOUD_PREPARED_CACHE` is
/// unset: generous enough for thousands of co-resident verifier keys
/// (shard agencies, cloud servers, epoch-rotated identities) at roughly
/// 10 KiB of line coefficients each.
pub const DEFAULT_GLOBAL_CAPACITY: usize = 4096;

/// Capacity of the [`secret`] cache when `SECCLOUD_SECRET_PREPARED_CACHE`
/// is unset: sized for the handful of co-resident *private* verifier keys
/// a process legitimately holds (per-shard designated agencies), kept
/// deliberately small so secret-derived line coefficients have a bounded
/// resident footprint.
pub const DEFAULT_SECRET_CAPACITY: usize = 256;

/// The canonical map key: a point's compressed encoding.
type Key = [u8; 64];

/// One resident entry: the shared prepared form and its recency stamp.
struct Entry {
    prepared: Arc<G2Prepared>,
    last_used: u64,
}

/// The lock-protected state: the map, a monotonically increasing
/// use-stamp (recency order without any clock), a stamp-ordered index
/// mirroring the map so the least-recently-used entry is always the
/// index's first key, and the hit/miss/eviction counters. The counters
/// live *inside* the lock deliberately: every path that bumps one already
/// holds the guard for the map mutation it describes, so folding them in
/// costs nothing, keeps the whole cache in one synchronization domain,
/// and makes each stats snapshot exactly consistent with the map state
/// that produced it (no torn hit/miss vs. len readings).
struct Inner {
    capacity: usize,
    stamp: u64,
    map: HashMap<Key, Entry>,
    order: BTreeMap<u64, Key>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    /// Next recency stamp. Stamps are handed out once each, so they are
    /// unique `order` keys for the lifetime of the process.
    fn tick(&mut self) -> u64 {
        self.stamp = self.stamp.wrapping_add(1);
        self.stamp
    }

    /// Refreshes `key`'s recency and returns its shared preparation, if
    /// resident.
    fn touch(&mut self, key: &Key) -> Option<Arc<G2Prepared>> {
        let stamp = self.tick();
        let entry = self.map.get_mut(key)?;
        self.order.remove(&entry.last_used);
        entry.last_used = stamp;
        self.order.insert(stamp, *key);
        Some(Arc::clone(&entry.prepared))
    }

    /// Inserts (or replaces) `key`'s entry at the freshest recency.
    fn insert(&mut self, key: Key, prepared: Arc<G2Prepared>) {
        let stamp = self.tick();
        if let Some(old) = self.map.insert(
            key,
            Entry {
                prepared,
                last_used: stamp,
            },
        ) {
            self.order.remove(&old.last_used);
        }
        self.order.insert(stamp, key);
    }

    /// Drops `key`'s entry and its recency-index mirror, if resident.
    fn remove(&mut self, key: &Key) {
        if let Some(entry) = self.map.remove(key) {
            self.order.remove(&entry.last_used);
        }
    }

    /// Evicts least-recently-used entries until within capacity — each
    /// eviction is one `BTreeMap::pop_first`, O(log n).
    fn trim(&mut self) {
        while self.map.len() > self.capacity {
            let Some((_, oldest)) = self.order.pop_first() else {
                return;
            };
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// A bounded LRU cache of prepared `G2` points (see module docs).
pub struct PreparedCache {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for PreparedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl PreparedCache {
    /// A fresh cache holding at most `capacity` prepared points
    /// (`capacity == 0` disables retention entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity,
                stamp: 0,
                map: HashMap::new(),
                order: BTreeMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Locks the map; a poisoned lock is recovered, never propagated —
    /// every entry is internally consistent at all times, so a panicking
    /// holder cannot leave partial state behind.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The prepared form of `q`: a cache hit returns the shared entry and
    /// refreshes its recency; a miss prepares (outside the lock), inserts,
    /// and evicts the least-recently-used overflow.
    pub fn get_or_prepare(&self, q: &G2Affine) -> Arc<G2Prepared> {
        let key = q.to_compressed();
        {
            let mut inner = self.lock();
            if let Some(shared) = inner.touch(&key) {
                inner.hits += 1;
                return shared;
            }
            inner.misses += 1;
        }
        let prepared = Arc::new(G2Prepared::from(q));
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return prepared;
        }
        // A racing miss may have inserted meanwhile; both preparations are
        // identical, so keeping ours (refreshing recency) is equivalent.
        inner.insert(key, Arc::clone(&prepared));
        inner.trim();
        prepared
    }

    /// [`Self::get_or_prepare`] for *secret* points: a miss prepares
    /// through the constant-time [`G2Prepared::from_ct`] walk, so a cold
    /// cache never routes key-derived coordinates into the variable-time
    /// inversions. Hits are indistinguishable from the public variant.
    /// Pair this with the [`secret()`] cache instance — the cache *key*
    /// is the compressed point either way, so the lookup itself does not
    /// branch on coordinate values beyond the map hash.
    pub fn get_or_prepare_ct(&self, q: &G2Affine) -> Arc<G2Prepared> {
        let key = q.to_compressed();
        {
            let mut inner = self.lock();
            if let Some(shared) = inner.touch(&key) {
                inner.hits += 1;
                return shared;
            }
            inner.misses += 1;
        }
        let prepared = Arc::new(G2Prepared::from_ct(q));
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return prepared;
        }
        inner.insert(key, Arc::clone(&prepared));
        inner.trim();
        prepared
    }

    /// The cached entry for `q`, if resident (refreshes recency).
    pub fn get(&self, q: &G2Affine) -> Option<Arc<G2Prepared>> {
        self.lock().touch(&q.to_compressed())
    }

    /// Whether `q` is currently resident (does not touch recency).
    pub fn contains(&self, q: &G2Affine) -> bool {
        self.lock().map.contains_key(&q.to_compressed())
    }

    /// Drops the entry for `q`, if resident. Key-wipe paths call this so
    /// secret-derived line coefficients do not outlive their key.
    pub fn remove(&self, q: &G2Affine) {
        self.lock().remove(&q.to_compressed());
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Re-bounds the cache, evicting LRU entries if shrinking. Capacity 0
    /// clears the cache and disables retention until raised again.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        inner.trim();
    }

    /// The current bound.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the map since construction.
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Lookups that had to prepare since construction.
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    /// Entries evicted by the capacity bound since construction.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Resets the hit/miss/eviction counters (entries stay resident).
    /// One lock acquisition: the reset is atomic with respect to every
    /// concurrent lookup, so no lookup is ever split across the reset.
    pub fn reset_counters(&self) {
        let mut inner = self.lock();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }
}

/// The process-wide prepared-key cache for **public** points (see module
/// docs). Capacity comes from `SECCLOUD_PREPARED_CACHE` (read at first
/// use) or [`DEFAULT_GLOBAL_CAPACITY`]; benchmarks re-bound it at runtime
/// with [`PreparedCache::set_capacity`].
///
/// Secret-derived preparations must go through [`secret`] instead — this
/// instance is shared with general wire-handling code and must never hold
/// key material.
pub fn global() -> &'static PreparedCache {
    static GLOBAL: OnceLock<PreparedCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var("SECCLOUD_PREPARED_CACHE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_GLOBAL_CAPACITY);
        PreparedCache::new(capacity)
    })
}

/// The process-wide prepared-key cache for **secret-derived** points —
/// designated-verifier private keys (`sk_prepared`). Kept separate from
/// [`global`] so public-key churn can neither evict nor probe secret
/// entries; evicted/cleared [`G2Prepared`] values wipe their line
/// coefficients on drop. Capacity comes from
/// `SECCLOUD_SECRET_PREPARED_CACHE` (read at first use) or
/// [`DEFAULT_SECRET_CAPACITY`].
pub fn secret() -> &'static PreparedCache {
    static SECRET: OnceLock<PreparedCache> = OnceLock::new();
    SECRET.get_or_init(|| {
        let capacity = std::env::var("SECCLOUD_SECRET_PREPARED_CACHE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SECRET_CAPACITY);
        PreparedCache::new(capacity)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g2::hash_to_g2;

    fn point(i: u32) -> G2Affine {
        hash_to_g2(format!("cache-point-{i}").as_bytes()).to_affine()
    }

    #[test]
    fn hit_returns_the_shared_preparation() {
        let cache = PreparedCache::new(4);
        let q = point(0);
        let a = cache.get_or_prepare(&q);
        let b = cache.get_or_prepare(&q);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the entry");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_entry_equals_fresh_preparation() {
        let cache = PreparedCache::new(4);
        let q = point(1);
        let cached = cache.get_or_prepare(&q);
        assert_eq!(*cached, G2Prepared::from(&q));
    }

    #[test]
    fn capacity_evicts_in_lru_order() {
        let cache = PreparedCache::new(2);
        let (a, b, c) = (point(10), point(11), point(12));
        cache.get_or_prepare(&a);
        cache.get_or_prepare(&b);
        // Touch `a` so `b` is now the least recently used.
        cache.get_or_prepare(&a);
        cache.get_or_prepare(&c);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&a), "recently used entry survives");
        assert!(!cache.contains(&b), "LRU entry is evicted");
        assert!(cache.contains(&c));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn capacity_zero_disables_retention() {
        let cache = PreparedCache::new(0);
        let q = point(20);
        let a = cache.get_or_prepare(&q);
        let b = cache.get_or_prepare(&q);
        assert_eq!(*a, *b, "uncached preparations still agree");
        assert!(!Arc::ptr_eq(&a, &b), "nothing is shared at capacity 0");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn remove_and_clear_drop_entries() {
        let cache = PreparedCache::new(4);
        let (a, b) = (point(30), point(31));
        cache.get_or_prepare(&a);
        cache.get_or_prepare(&b);
        cache.remove(&a);
        assert!(!cache.contains(&a));
        assert!(cache.contains(&b));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shrinking_capacity_trims_to_the_new_bound() {
        let cache = PreparedCache::new(4);
        for i in 40..44 {
            cache.get_or_prepare(&point(i));
        }
        cache.set_capacity(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&point(43)), "most recent entry survives");
    }

    #[test]
    fn reinsertion_after_eviction_matches_fresh_preparation() {
        let cache = PreparedCache::new(1);
        let (a, b) = (point(60), point(61));
        let first = cache.get_or_prepare(&a);
        cache.get_or_prepare(&b); // evicts `a`
        assert!(!cache.contains(&a));
        let again = cache.get_or_prepare(&a); // miss: prepared from scratch
        assert!(
            !Arc::ptr_eq(&first, &again),
            "re-insertion is a genuinely new preparation"
        );
        assert_eq!(
            *first, *again,
            "evict/re-insert round-trip is observationally invisible"
        );
        assert_eq!(*again, G2Prepared::from(&a));
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn concurrent_lookups_stay_consistent() {
        // Honors the CI knob: `SECCLOUD_THREADS=4` runs this with 4
        // workers; unset it still exercises at least 4.
        let threads = std::env::var("SECCLOUD_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(4)
            .max(4);
        const POINTS: u32 = 6;
        const OPS: usize = 24;
        // Capacity below the working set forces live eviction under
        // contention, not just shared hits.
        let cache = PreparedCache::new(POINTS as usize / 2);
        let fresh: Vec<G2Prepared> = (0..POINTS).map(|i| G2Prepared::from(&point(i))).collect();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let fresh = &fresh;
                scope.spawn(move || {
                    for op in 0..OPS {
                        // Stride by a per-thread offset so threads collide
                        // on some keys and diverge on others.
                        let i = ((op + t * 7) % POINTS as usize) as u32;
                        let got = cache.get_or_prepare(&point(i));
                        assert_eq!(*got, fresh[i as usize], "corrupted entry for point {i}");
                    }
                });
            }
        });
        assert!(cache.len() <= POINTS as usize / 2, "bound must hold");
        assert_eq!(
            cache.hits() + cache.misses(),
            (threads * OPS) as u64,
            "every lookup is counted exactly once"
        );
        assert!(
            cache.misses() >= u64::from(POINTS / 2),
            "misses undercounted"
        );
    }

    #[test]
    fn eviction_clear_and_shrink_release_the_cache_reference() {
        // `G2Prepared::drop` wipes line coefficients in place (asserted in
        // `prepared::tests::wipe_on_drop_clears_every_line_coefficient`);
        // what the cache must guarantee is that every removal path drops
        // its clone of the entry, so the wipe runs as soon as no caller
        // still holds it.
        let cache = PreparedCache::new(2);
        let (a, b) = (point(80), point(81));
        let held_a = cache.get_or_prepare(&a);
        assert_eq!(Arc::strong_count(&held_a), 2);

        // LRU eviction: two further inserts push `a` off the end.
        cache.get_or_prepare(&b);
        cache.get_or_prepare(&point(82));
        assert!(!cache.contains(&a));
        assert_eq!(
            Arc::strong_count(&held_a),
            1,
            "eviction must drop the cache's clone"
        );

        // clear(): every remaining entry drops.
        let held_b = cache.get(&b).expect("b still resident");
        cache.clear();
        assert_eq!(Arc::strong_count(&held_b), 1, "clear must drop every clone");

        // Capacity shrink to zero: trimming drops whatever remains.
        let held_c = cache.get_or_prepare(&point(83));
        assert_eq!(Arc::strong_count(&held_c), 2);
        cache.set_capacity(0);
        assert_eq!(
            Arc::strong_count(&held_c),
            1,
            "shrink must drop trimmed entries"
        );
    }

    #[test]
    fn global_cache_is_shared_and_bounded() {
        let g = global();
        assert!(g.capacity() > 0 || std::env::var("SECCLOUD_PREPARED_CACHE").is_ok());
        let q = point(50);
        let a = g.get_or_prepare(&q);
        assert_eq!(*a, G2Prepared::from(&q));
    }

    #[test]
    fn secret_cache_is_isolated_from_the_global_one() {
        let s = secret();
        let q = point(51);
        let a = s.get_or_prepare(&q);
        assert_eq!(*a, G2Prepared::from(&q));
        assert!(
            !global().contains(&q),
            "secret-cache entries must never appear in the shared cache"
        );
        s.remove(&q);
        assert!(!s.contains(&q));
    }

    #[test]
    fn recency_index_survives_churn() {
        // Interleave inserts, touches, removes and a shrink; the recency
        // index must keep evicting in strict LRU order throughout.
        let cache = PreparedCache::new(3);
        let pts: Vec<G2Affine> = (70..75).map(point).collect();
        for (i, p) in pts.iter().enumerate().take(3) {
            cache.get_or_prepare(p);
            assert_eq!(cache.len(), i + 1);
        }
        cache.get_or_prepare(&pts[0]); // order now: 1, 2, 0
        cache.remove(&pts[2]); // order now: 1, 0
        cache.get_or_prepare(&pts[3]); // order now: 1, 0, 3
        cache.get_or_prepare(&pts[4]); // evicts 1 → 0, 3, 4
        assert!(!cache.contains(&pts[1]), "LRU entry must go first");
        assert!(cache.contains(&pts[0]));
        assert!(cache.contains(&pts[3]));
        assert!(cache.contains(&pts[4]));
        cache.set_capacity(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&pts[4]), "most recent entry survives");
    }
}
