//! Byte-level protocol endpoints: the full SecCloud exchange over the
//! canonical wire format of `seccloud_core::wire`.
//!
//! [`WireServer`] wraps a [`CloudServer`] behind four endpoints that accept
//! and return *only bytes*, exactly as a network deployment would; the DA
//! side drives a complete audit through them with
//! [`audit_over_the_wire`]. Every decode failure maps to a typed
//! [`RpcError`], never a panic.

use seccloud_core::computation::{AuditChallenge, ComputationRequest};
use seccloud_core::storage::SignedBlock;
use seccloud_core::warrant::Warrant;
use seccloud_core::wire::{Reader, WireError, WireMessage, Writer};
use seccloud_core::CloudUser;
use seccloud_ibs::{UserPublic, VerifierPublic};

use crate::agency::{AuditVerdict, DesignatedAgency};
use crate::server::{CloudServer, ServerError};

/// Errors surfaced by the byte-level endpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// The request body failed to decode.
    Malformed(WireError),
    /// The underlying server rejected the operation.
    Server(ServerError),
    /// The call exceeded its per-attempt deadline (virtual time) and the
    /// response, if any, was discarded.
    Timeout {
        /// How long the attempt took before it was abandoned.
        elapsed_ms: u64,
    },
    /// The endpoint's circuit breaker is open: the call failed fast
    /// without touching the wire.
    ChannelUnavailable,
}

impl RpcError {
    /// Whether retrying this call can plausibly succeed.
    ///
    /// The split is the trust boundary of the whole resilience layer:
    /// decode failures, timeouts and open breakers are *channel* conditions
    /// — nothing about them is authenticated, so they carry no evidence
    /// about the server and retrying is sound. [`ServerError`]s are
    /// *authenticated decisions* by the far end (delegated through
    /// [`ServerError::is_transient`]) and retrying them verbatim cannot
    /// change the answer.
    pub fn is_transient(&self) -> bool {
        match self {
            RpcError::Malformed(e) => e.is_transient(),
            RpcError::Server(e) => e.is_transient(),
            RpcError::Timeout { .. } => true,
            RpcError::ChannelUnavailable => true,
        }
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Malformed(e) => write!(f, "malformed request: {e}"),
            RpcError::Server(e) => write!(f, "server error: {e}"),
            RpcError::Timeout { elapsed_ms } => {
                write!(f, "call timed out after {elapsed_ms} ms")
            }
            RpcError::ChannelUnavailable => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Malformed(e)
    }
}

impl From<ServerError> for RpcError {
    fn from(e: ServerError) -> Self {
        RpcError::Server(e)
    }
}

/// The four byte-level endpoints a SecCloud server exposes, as seen from
/// the client/DA side of the channel.
///
/// [`WireServer`] is the direct (faultless) implementation; test harnesses
/// interpose fault-injecting wrappers that mangle the byte streams while
/// the protocol logic above stays unchanged. Every method takes `&mut
/// self` because a real channel has state (and the wrappers do too).
///
/// The two `peer_*` accessors return the *expected* identities of the far
/// end — in a deployment these come from the PKI/SIO, not from the
/// channel, which is why a fault wrapper cannot forge them.
pub trait WireTransport {
    /// `STORE owner_id <blocks…>` — returns the number of blocks accepted.
    ///
    /// # Errors
    ///
    /// [`RpcError::Malformed`] on any decode failure.
    fn rpc_store(&mut self, owner_identity: &str, body: &[u8]) -> Result<u64, RpcError>;

    /// `COMPUTE owner_id <request>` — returns `(job_id, commitment bytes)`.
    ///
    /// # Errors
    ///
    /// Decode failures and server rejections.
    fn rpc_compute(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        body: &[u8],
    ) -> Result<(u64, Vec<u8>), RpcError>;

    /// `AUDIT …` — returns the serialized audit response.
    ///
    /// # Errors
    ///
    /// Decode failures, warrant rejections, unknown jobs.
    #[allow(clippy::too_many_arguments)] // mirrors the wire exchange one-to-one
    fn rpc_audit(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        job_id: u64,
        challenge_bytes: &[u8],
        warrant_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, RpcError>;

    /// `RETRIEVE owner_id position` — one stored block, serialized.
    fn rpc_retrieve(&mut self, owner_identity: &str, position: u64) -> Option<Vec<u8>>;

    /// The server's expected designated-verifier identity (`Q_CS`),
    /// anchored in the SIO rather than the channel.
    fn peer_verifier(&self) -> VerifierPublic;

    /// The server's expected signing identity (verifies `Sig(R)`).
    fn peer_signer(&self) -> UserPublic;
}

/// A cloud server exposed through byte-level endpoints.
pub struct WireServer {
    inner: CloudServer,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WireServer({:?})", self.inner)
    }
}

impl WireServer {
    /// Wraps a server.
    pub fn new(inner: CloudServer) -> Self {
        Self { inner }
    }

    /// Direct access to the wrapped server (for assertions in tests).
    pub fn inner(&self) -> &CloudServer {
        &self.inner
    }

    /// `STORE owner_id <blocks…>` — ingests a length-prefixed sequence of
    /// [`SignedBlock`]s; returns the number accepted.
    ///
    /// # Errors
    ///
    /// [`RpcError::Malformed`] on any decode failure.
    pub fn rpc_store(&mut self, owner_identity: &str, body: &[u8]) -> Result<u64, RpcError> {
        let mut r = Reader::new(body)?;
        // Minimal signed block: index (8) + data len (8) + empty
        // designation list (8) — caps the declared count before allocating.
        let n = r.take_len_elems(8 + 8 + 8)?;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(SignedBlock::decode_body(&mut r)?);
        }
        r.finish()?;
        let owner = UserPublic::from_identity(owner_identity);
        Ok(self.inner.store_public(&owner, blocks) as u64)
    }

    /// `COMPUTE owner_id <request>` — executes a computation request for
    /// `auditor_identity` and returns `(job_id, serialized commitment)`.
    ///
    /// # Errors
    ///
    /// Decode failures and server rejections.
    pub fn rpc_compute(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        body: &[u8],
    ) -> Result<(u64, Vec<u8>), RpcError> {
        let request = ComputationRequest::from_wire(body)?;
        let auditor = seccloud_ibs::VerifierPublic::from_identity(auditor_identity);
        let handle =
            self.inner
                .handle_computation(&owner_identity.to_owned(), &request, &auditor)?;
        Ok((handle.job_id, handle.commitment.to_wire()))
    }

    /// `AUDIT owner_id job_id <challenge> <warrant> now` — validates the
    /// warrant and returns the serialized audit response.
    ///
    /// # Errors
    ///
    /// Decode failures, warrant rejections, unknown jobs.
    pub fn rpc_audit(
        &self,
        owner_identity: &str,
        auditor_identity: &str,
        job_id: u64,
        challenge_bytes: &[u8],
        warrant_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, RpcError> {
        let challenge = AuditChallenge::from_wire(challenge_bytes)?;
        let warrant = Warrant::from_wire(warrant_bytes)?;
        let owner = UserPublic::from_identity(owner_identity);
        let response =
            self.inner
                .handle_audit(job_id, &challenge, &warrant, &owner, auditor_identity, now)?;
        Ok(response.to_wire())
    }

    /// `RETRIEVE owner_id position` — serves one stored block, serialized.
    pub fn rpc_retrieve(&self, owner_identity: &str, position: u64) -> Option<Vec<u8>> {
        self.inner
            .retrieve(owner_identity, position)
            .map(WireMessage::to_wire)
    }
}

impl WireTransport for WireServer {
    fn rpc_store(&mut self, owner_identity: &str, body: &[u8]) -> Result<u64, RpcError> {
        WireServer::rpc_store(self, owner_identity, body)
    }

    fn rpc_compute(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        body: &[u8],
    ) -> Result<(u64, Vec<u8>), RpcError> {
        WireServer::rpc_compute(self, owner_identity, auditor_identity, body)
    }

    fn rpc_audit(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        job_id: u64,
        challenge_bytes: &[u8],
        warrant_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, RpcError> {
        WireServer::rpc_audit(
            self,
            owner_identity,
            auditor_identity,
            job_id,
            challenge_bytes,
            warrant_bytes,
            now,
        )
    }

    fn rpc_retrieve(&mut self, owner_identity: &str, position: u64) -> Option<Vec<u8>> {
        WireServer::rpc_retrieve(self, owner_identity, position)
    }

    fn peer_verifier(&self) -> VerifierPublic {
        self.inner.public().clone()
    }

    fn peer_signer(&self) -> UserPublic {
        self.inner.signer_public().clone()
    }
}

/// Serializes a block upload as the `rpc_store` body.
pub fn encode_store_body(blocks: &[SignedBlock]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(blocks.len() as u64);
    for b in blocks {
        b.encode_body(&mut w);
    }
    w.finish()
}

/// Drives one complete delegated audit **entirely through bytes**: the
/// request, commitment, warrant, challenge and response all cross the
/// user↔server↔DA boundaries in serialized form. Works over any
/// [`WireTransport`] — the direct [`WireServer`] or a fault-injecting
/// wrapper around it.
///
/// # Errors
///
/// Any decode failure or server rejection along the way.
#[allow(clippy::too_many_arguments)] // mirrors the wire-message fields one-to-one
pub fn audit_over_the_wire(
    da: &mut DesignatedAgency,
    server: &mut impl WireTransport,
    owner: &CloudUser,
    request: &ComputationRequest,
    job_id: u64,
    commitment_bytes: &[u8],
    sample_size: usize,
    now: u64,
) -> Result<AuditVerdict, RpcError> {
    da.audit_wire(
        server,
        owner,
        request,
        job_id,
        commitment_bytes,
        sample_size,
        now,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use seccloud_core::computation::{ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;
    use seccloud_core::Sio;

    fn world(behavior: Behavior) -> (Sio, CloudUser, WireServer, DesignatedAgency) {
        let sio = Sio::new(b"rpc-tests");
        let user = sio.register("alice");
        let server = WireServer::new(CloudServer::new(&sio, "cs", behavior, b"s"));
        let da = DesignatedAgency::new(&sio, "da", b"agency");
        (sio, user, server, da)
    }

    fn upload(user: &CloudUser, server: &mut WireServer, da: &DesignatedAgency, n: u64) {
        let blocks: Vec<DataBlock> = (0..n)
            .map(|i| DataBlock::from_values(i, &[i, i * 5]))
            .collect();
        let signed = user.sign_blocks(&blocks, &[server.inner().public(), da.public()]);
        let body = encode_store_body(&signed);
        assert_eq!(
            server.rpc_store(user.identity(), &body).unwrap(),
            n,
            "all authentic blocks accepted"
        );
    }

    fn request(n: u64) -> ComputationRequest {
        ComputationRequest::new(
            (0..n)
                .map(|i| RequestItem {
                    function: ComputeFunction::Sum,
                    positions: vec![i],
                })
                .collect(),
        )
    }

    #[test]
    fn full_protocol_over_bytes_honest() {
        let (_, user, mut server, mut da) = world(Behavior::Honest);
        upload(&user, &mut server, &da, 8);
        let req = request(8);
        let (job_id, commitment_bytes) = server
            .rpc_compute(user.identity(), da.identity(), &req.to_wire())
            .unwrap();
        let verdict = audit_over_the_wire(
            &mut da,
            &mut server,
            &user,
            &req,
            job_id,
            &commitment_bytes,
            4,
            0,
        )
        .unwrap();
        assert!(!verdict.detected);
    }

    #[test]
    fn full_protocol_over_bytes_catches_cheater() {
        let (_, user, mut server, mut da) = world(Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        });
        upload(&user, &mut server, &da, 6);
        let req = request(6);
        let (job_id, commitment_bytes) = server
            .rpc_compute(user.identity(), da.identity(), &req.to_wire())
            .unwrap();
        let verdict = audit_over_the_wire(
            &mut da,
            &mut server,
            &user,
            &req,
            job_id,
            &commitment_bytes,
            3,
            0,
        )
        .unwrap();
        assert!(verdict.detected);
    }

    #[test]
    fn tampered_upload_bytes_rejected_or_filtered() {
        let (_, user, mut server, da) = world(Behavior::Honest);
        let blocks = vec![DataBlock::from_values(0, &[42])];
        let signed = user.sign_blocks(&blocks, &[server.inner().public(), da.public()]);
        let mut body = encode_store_body(&signed);
        // Flip a data byte: either the decode fails (structure damaged) or
        // the block decodes but fails authentication and is dropped.
        let mid = body.len() / 2;
        body[mid] ^= 0x01;
        match server.rpc_store(user.identity(), &body) {
            Err(RpcError::Malformed(_)) => {}
            Ok(accepted) => assert_eq!(accepted, 0, "tampered block must not be stored"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let (_, user, mut server, da) = world(Behavior::Honest);
        assert!(matches!(
            server.rpc_store(user.identity(), b"junk"),
            Err(RpcError::Malformed(_))
        ));
        assert!(matches!(
            server.rpc_compute(user.identity(), da.identity(), &[1, 2, 3]),
            Err(RpcError::Malformed(_))
        ));
        assert!(matches!(
            server.rpc_audit(user.identity(), da.identity(), 0, b"", b"", 0),
            Err(RpcError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_job_is_a_server_error() {
        let (_, user, mut server, mut da) = world(Behavior::Honest);
        upload(&user, &mut server, &da, 2);
        let req = request(2);
        let (_, commitment_bytes) = server
            .rpc_compute(user.identity(), da.identity(), &req.to_wire())
            .unwrap();
        let err = audit_over_the_wire(
            &mut da,
            &mut server,
            &user,
            &req,
            999,
            &commitment_bytes,
            1,
            0,
        )
        .unwrap_err();
        assert_eq!(err, RpcError::Server(ServerError::UnknownJob));
    }

    #[test]
    fn retrieve_round_trips_blocks() {
        let (_, user, mut server, da) = world(Behavior::Honest);
        upload(&user, &mut server, &da, 3);
        let bytes = server.rpc_retrieve(user.identity(), 1).unwrap();
        let block = SignedBlock::from_wire(&bytes).unwrap();
        assert_eq!(block.block().index(), 1);
        assert!(server.rpc_retrieve(user.identity(), 99).is_none());
    }
}
