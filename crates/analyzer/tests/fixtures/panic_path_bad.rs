//! Bad fixture for the `panic_path` rule: a protocol entry point whose
//! call chain bottoms out in an `.unwrap()` two hops away.
//! Never compiled — lexed by the analyzer self-tests only.

fn inner(v: Option<u64>) -> u64 {
    v.unwrap()
}

fn middle(v: Option<u64>) -> u64 {
    inner(v)
}

pub fn verify_response(v: Option<u64>) -> u64 {
    middle(v)
}
