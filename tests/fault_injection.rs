//! Deterministic fault-injection suite over the byte-level protocol.
//!
//! The machine-checked invariant: under *any* fault schedule injected into
//! the wire endpoints, the designated agency either completes a correct
//! audit or returns a typed error / unhealthy verdict — never a panic and
//! never a false pass. Cheating servers must stay detected no matter what
//! the channel does.
//!
//! * an exhaustive single-fault sweep: every [`FaultKind`] × every
//!   [`Endpoint`], against both cheating and honest servers;
//! * seeded random multi-fault schedules (`SECCLOUD_TESTKIT_CASES`, default
//!   200), with a same-seed replay check on the recorded [`FaultPlan`];
//! * the replay-protection property: an honest audit response captured for
//!   one challenge must fail verification against any fresh challenge
//!   (nonce binding);
//! * the recovery sweep: the same fault kinds as finite bursts against the
//!   `seccloud::resilience` runtime — honest servers recover with zero
//!   spurious failures, cheaters stay detected, schedules replay from
//!   `SECCLOUD_TESTKIT_SEED`, and pool failover degrades per job.
//!
//! Run with `--nocapture` to see the sweep matrix (reproduced in
//! EXPERIMENTS.md).

use seccloud::cloudsim::behavior::{Behavior, StorageAttack};
use seccloud::cloudsim::rpc::{audit_over_the_wire, encode_store_body, RpcError};
// lint: allow(transport, reason=fault sweeps drive the raw channel on purpose to observe unprotected failures)
use seccloud::cloudsim::rpc::{WireServer, WireTransport};
use seccloud::cloudsim::{AuditVerdict, CloudServer, DesignatedAgency};
use seccloud::core::computation::{
    verify_response, AuditChallenge, AuditResponse, Commitment, ComputationRequest,
    ComputeFunction, RequestItem,
};
use seccloud::core::storage::DataBlock;
use seccloud::core::warrant::Warrant;
use seccloud::core::wire::WireMessage;
use seccloud::core::{CloudUser, Sio};
use seccloud::ibs::VerifierPublic;
use seccloud::registry::{CommitmentCheck, UserRegistry};
use seccloud::resilience::{
    audit_shards, run_job_resilient, storage_audit_resilient, AuditResolution, PoolJob,
    PoolVerdict, ResilientPool, ResilientTransport, RetryPolicy, ShardLane, ShardStatus,
};
use seccloud::testkit::{cases_from_env, seed_from_env, Endpoint, FaultKind, FaultyChannel};

// --- world building -------------------------------------------------------

const N_BLOCKS: u64 = 12;

fn block(i: u64) -> DataBlock {
    DataBlock::from_values(i, &[i * 7, i + 1])
}

struct World {
    user: CloudUser,
    da: DesignatedAgency,
    // lint: allow(transport, reason=the harness wraps the raw server in a fault channel itself)
    channel: FaultyChannel<WireServer>,
    server_public: VerifierPublic,
}

/// A fresh world: one server behind a fault channel, no blocks stored yet.
fn world(label: &[u8], behavior: Behavior, seed: u64) -> World {
    let mut sio_seed = label.to_vec();
    sio_seed.extend_from_slice(&seed.to_be_bytes());
    let sio = Sio::new(&sio_seed);
    let user = sio.register("alice");
    let server = CloudServer::new(&sio, "cs", behavior, b"srv");
    let da = DesignatedAgency::new(&sio, "da", b"agency");
    let server_public = server.public().clone();
    // lint: allow(transport, reason=the harness wraps the raw server in a fault channel itself)
    let channel = FaultyChannel::new(WireServer::new(server), seed, 0.0);
    World {
        user,
        da,
        channel,
        server_public,
    }
}

/// Uploads the blocks in `range` through the (possibly faulty) channel.
fn upload(w: &mut World, range: std::ops::Range<u64>) -> Result<u64, RpcError> {
    let blocks: Vec<DataBlock> = range.map(block).collect();
    let signed = w
        .user
        .sign_blocks(&blocks, &[&w.server_public, w.da.public()]);
    w.channel
        .rpc_store(w.user.identity(), &encode_store_body(&signed))
}

/// A request whose results depend on `weight`, so different jobs commit to
/// different values (which makes replayed payloads decisively wrong).
fn request(weight: u64, items: u64) -> ComputationRequest {
    ComputationRequest::new(
        (0..items)
            .map(|i| RequestItem {
                function: ComputeFunction::WeightedSum(vec![weight, weight + 1]),
                positions: vec![i % N_BLOCKS],
            })
            .collect(),
    )
}

/// One complete job over the wire: compute, then a full-sample audit.
fn run_job(w: &mut World, req: &ComputationRequest) -> Result<AuditVerdict, RpcError> {
    let (job_id, commitment) =
        w.channel
            .rpc_compute(w.user.identity(), w.da.identity(), &req.to_wire())?;
    audit_over_the_wire(
        &mut w.da,
        &mut w.channel,
        &w.user,
        req,
        job_id,
        &commitment,
        req.len(),
        0,
    )
}

fn print_matrix(title: &str, rows: &[(Endpoint, FaultKind, String)]) {
    println!("\n== {title} ==");
    for (endpoint, kind, cell) in rows {
        println!("{endpoint:?}\t{kind:?}\t{cell}");
    }
}

/// Warm-up exchanges that give every replay fault real material: one job
/// in epoch 0 (stale material), then two jobs in epoch 1 (replay and
/// reorder material), all over a clean channel.
fn computation_warmup(w: &mut World) {
    upload(w, 0..N_BLOCKS).expect("clean upload");
    let _ = run_job(w, &request(2, 3));
    w.channel.advance_epoch();
    let _ = run_job(w, &request(3, 3));
    let _ = run_job(w, &request(4, 3));
}

// --- exhaustive single-fault sweep ----------------------------------------

/// Against an always-cheating computation server (CSC = 0), every fault on
/// the compute/audit endpoints must leave the outcome at "typed error" or
/// "detected" — a clean verdict would mean the channel laundered a cheater.
#[test]
fn sweep_computation_endpoints_cheater_never_escapes() {
    let mut matrix = Vec::new();
    for endpoint in [Endpoint::Compute, Endpoint::Audit] {
        for (i, &kind) in FaultKind::ALL.iter().enumerate() {
            let mut w = world(
                b"sweep-comp-cheat",
                Behavior::ComputationCheater {
                    csc: 0.0,
                    guess_range: None,
                },
                100 + i as u64,
            );
            computation_warmup(&mut w);
            w.channel.set_forced(Some((endpoint, kind)));
            let outcome = run_job(&mut w, &request(5, 4));
            let cell = match &outcome {
                Err(RpcError::Malformed(e)) => format!("typed error: malformed ({e})"),
                Err(RpcError::Server(e)) => format!("typed error: server ({e})"),
                Err(e) => format!("typed error ({e})"),
                Ok(v) if v.detected => "detected".to_owned(),
                Ok(_) => "CLEAN (cheater escaped!)".to_owned(),
            };
            assert!(
                !matches!(&outcome, Ok(v) if !v.detected),
                "{endpoint:?}/{kind:?}: CSC=0 cheater escaped with a clean verdict"
            );
            matrix.push((endpoint, kind, cell));
        }
    }
    print_matrix(
        "single-fault sweep: compute/audit endpoints, CSC=0 cheater",
        &matrix,
    );
}

/// Against an always-corrupting storage server (SSC = 0), every fault on
/// the store/retrieve endpoints must leave the storage audit unhealthy.
#[test]
fn sweep_storage_endpoints_cheater_never_escapes() {
    let mut matrix = Vec::new();
    for endpoint in [Endpoint::Store, Endpoint::Retrieve] {
        for (i, &kind) in FaultKind::ALL.iter().enumerate() {
            let mut w = world(
                b"sweep-store-cheat",
                Behavior::StorageCheater {
                    ssc: 0.0,
                    attack: StorageAttack::Corrupt,
                },
                200 + i as u64,
            );
            // Warm-up: stale material in epoch 0, replay/reorder material
            // in epoch 1, all clean.
            upload(&mut w, 0..4).expect("clean upload");
            let _ = w.channel.rpc_retrieve(w.user.identity(), 0);
            let _ = w.channel.rpc_retrieve(w.user.identity(), 1);
            w.channel.advance_epoch();
            upload(&mut w, 4..6).expect("clean upload");
            upload(&mut w, 6..8).expect("clean upload");
            let _ = w.channel.rpc_retrieve(w.user.identity(), 2);
            let _ = w.channel.rpc_retrieve(w.user.identity(), 3);

            w.channel.set_forced(Some((endpoint, kind)));
            let (n, store_err) = if endpoint == Endpoint::Store {
                (N_BLOCKS, upload(&mut w, 8..N_BLOCKS).err())
            } else {
                (8, None)
            };
            let verdict =
                w.da.storage_audit_wire(&mut w.channel, &w.user, n, n as usize);
            assert!(
                !verdict.is_healthy(),
                "{endpoint:?}/{kind:?}: SSC=0 corrupter escaped with a healthy verdict"
            );
            let cell = match store_err {
                Some(e) => format!("store rejected ({e}); audit unhealthy"),
                None => format!(
                    "unhealthy ({} missing, {} invalid of {})",
                    verdict.missing.len(),
                    verdict.invalid.len(),
                    verdict.sampled.len()
                ),
            };
            matrix.push((endpoint, kind, cell));
        }
    }
    print_matrix(
        "single-fault sweep: store/retrieve endpoints, SSC=0 corrupter",
        &matrix,
    );
}

/// Honest servers under every fault: nothing may panic, and any *healthy*
/// verdict must be true against ground truth (the server really holds the
/// uploaded bytes). Faults on an honest exchange may surface as typed
/// errors or spurious detections — both are safe outcomes — but a verdict
/// of "all good" must never be a lie.
#[test]
fn sweep_all_endpoints_honest_world_never_panics_or_lies() {
    let mut matrix = Vec::new();
    for endpoint in Endpoint::ALL {
        for (i, &kind) in FaultKind::ALL.iter().enumerate() {
            let mut w = world(b"sweep-honest", Behavior::Honest, 300 + i as u64);
            match endpoint {
                Endpoint::Compute | Endpoint::Audit => {
                    computation_warmup(&mut w);
                    w.channel.set_forced(Some((endpoint, kind)));
                    let outcome = run_job(&mut w, &request(5, 4));
                    let cell = match &outcome {
                        Err(e) => format!("typed error ({e})"),
                        Ok(v) if v.detected => "spurious detection (safe)".to_owned(),
                        Ok(_) => "clean (correct: server honest)".to_owned(),
                    };
                    matrix.push((endpoint, kind, cell));
                }
                Endpoint::Store | Endpoint::Retrieve => {
                    upload(&mut w, 0..4).expect("clean upload");
                    let _ = w.channel.rpc_retrieve(w.user.identity(), 0);
                    let _ = w.channel.rpc_retrieve(w.user.identity(), 1);
                    w.channel.advance_epoch();
                    upload(&mut w, 4..6).expect("clean upload");
                    upload(&mut w, 6..8).expect("clean upload");
                    let _ = w.channel.rpc_retrieve(w.user.identity(), 2);
                    let _ = w.channel.rpc_retrieve(w.user.identity(), 3);
                    w.channel.set_forced(Some((endpoint, kind)));
                    let (n, store_err) = if endpoint == Endpoint::Store {
                        (N_BLOCKS, upload(&mut w, 8..N_BLOCKS).err())
                    } else {
                        (8, None)
                    };
                    let verdict =
                        w.da.storage_audit_wire(&mut w.channel, &w.user, n, n as usize);
                    if verdict.is_healthy() {
                        // Ground truth: a healthy verdict must mean the
                        // server genuinely holds every uploaded block.
                        for pos in 0..n {
                            let stored = w
                                .channel
                                .inner()
                                .inner()
                                .retrieve(w.user.identity(), pos)
                                .unwrap_or_else(|| {
                                    panic!("{endpoint:?}/{kind:?}: healthy but block {pos} gone")
                                });
                            assert_eq!(
                                stored.block(),
                                &block(pos),
                                "{endpoint:?}/{kind:?}: healthy verdict over tampered data"
                            );
                        }
                    }
                    let cell = match (store_err, verdict.is_healthy()) {
                        (Some(e), _) => format!("store rejected ({e}); audit unhealthy"),
                        (None, false) => format!(
                            "unhealthy ({} missing, {} invalid of {})",
                            verdict.missing.len(),
                            verdict.invalid.len(),
                            verdict.sampled.len()
                        ),
                        (None, true) => "healthy (verified against ground truth)".to_owned(),
                    };
                    matrix.push((endpoint, kind, cell));
                }
            }
        }
    }
    print_matrix("single-fault sweep: all endpoints, honest server", &matrix);
}

// --- random multi-fault schedules -----------------------------------------

/// Runs one randomly-faulted end-to-end exchange; returns the recorded
/// fault plan plus a debug transcript of the outcomes (for the same-seed
/// replay check).
fn run_random_case(seed: u64, case: usize) -> (seccloud::testkit::FaultPlan, String) {
    let behavior = match case % 3 {
        0 => Behavior::Honest,
        1 => Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        },
        _ => Behavior::StorageCheater {
            ssc: 0.0,
            attack: StorageAttack::Corrupt,
        },
    };
    let mut w = world(b"random-schedule", behavior.clone(), seed);
    w.channel.set_forced(None);
    // Re-wrap with a fault rate: rebuild the channel with rate 0.5.
    let server = w.channel.into_inner();
    w.channel = FaultyChannel::new(server, seed, 0.5);

    let store_outcome = upload(&mut w, 0..4);
    let req = request(2 + (seed % 5), 4);
    let audit_outcome = run_job(&mut w, &req);
    if matches!(behavior, Behavior::ComputationCheater { .. }) {
        if let Ok(v) = &audit_outcome {
            assert!(
                v.detected,
                "case {case} (seed {seed}): CSC=0 cheater got a clean verdict\nplan: {:?}",
                w.channel.plan()
            );
        }
    }
    w.channel.advance_epoch();
    let verdict = w.da.storage_audit_wire(&mut w.channel, &w.user, 4, 4);
    if matches!(behavior, Behavior::StorageCheater { .. }) {
        assert!(
            !verdict.is_healthy(),
            "case {case} (seed {seed}): SSC=0 corrupter got a healthy verdict\nplan: {:?}",
            w.channel.plan()
        );
    }
    if matches!(behavior, Behavior::Honest) && verdict.is_healthy() {
        for pos in 0..4 {
            let stored = w
                .channel
                .inner()
                .inner()
                .retrieve(w.user.identity(), pos)
                .expect("healthy implies present");
            assert_eq!(stored.block(), &block(pos), "healthy verdict over bad data");
        }
    }
    let transcript = format!("{store_outcome:?} | {audit_outcome:?} | {verdict:?}");
    (w.channel.plan().clone(), transcript)
}

/// `SECCLOUD_TESTKIT_CASES` random multi-fault schedules: across honest,
/// computation-cheating and storage-cheating servers, no schedule may
/// panic, launder a cheater, or produce a false-healthy verdict.
#[test]
fn random_multi_fault_schedules_hold_the_invariant() {
    let cases = cases_from_env();
    let base = seed_from_env();
    let mut injected_total = 0;
    for case in 0..cases {
        let seed = base
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(case as u64);
        let (plan, _) = run_random_case(seed, case);
        injected_total += plan.injected.len();
    }
    assert!(
        injected_total > cases, // ≥1 fault per case on average at rate 0.5
        "schedules were not actually faulty ({injected_total} faults over {cases} cases)"
    );
    println!("random schedules: {cases} cases, {injected_total} faults injected");
}

/// The replayability contract: the same seed reproduces the exact fault
/// plan and the exact outcomes.
#[test]
fn same_seed_replays_identical_plan_and_outcome() {
    let base = seed_from_env();
    for case in 0..5 {
        let seed = base
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(case as u64);
        let first = run_random_case(seed, case);
        let second = run_random_case(seed, case);
        assert_eq!(first.0, second.0, "case {case}: fault plans diverged");
        assert_eq!(first.1, second.1, "case {case}: outcomes diverged");
    }
}

// --- replay protection (nonce binding) ------------------------------------

/// A captured honest audit response must not verify against any other
/// challenge: the response echoes the challenge nonce, and the DA checks
/// it (DESIGN.md "Replay protection"). Before nonce binding this attack
/// passed — a server could answer every audit with one stale transcript.
#[test]
fn replayed_audit_response_fails_fresh_challenge() {
    let sio = Sio::new(b"replay-nonce");
    let user = sio.register("alice");
    let server = CloudServer::new(&sio, "cs", Behavior::Honest, b"srv");
    let mut da = DesignatedAgency::new(&sio, "da", b"agency");
    let server_public = server.public().clone();
    let signer_public = server.signer_public().clone();
    // lint: allow(transport, reason=replay attack needs direct access to the unwrapped channel)
    let mut wire = WireServer::new(server);

    let blocks: Vec<DataBlock> = (0..6).map(block).collect();
    let signed = user.sign_blocks(&blocks, &[&server_public, da.public()]);
    wire.rpc_store(user.identity(), &encode_store_body(&signed))
        .unwrap();
    let req = ComputationRequest::new(
        (0..4)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i],
            })
            .collect(),
    );
    let (job_id, commitment_bytes) = wire
        .rpc_compute(user.identity(), da.identity(), &req.to_wire())
        .unwrap();
    let commitment = Commitment::from_wire(&commitment_bytes).unwrap();

    // The honest exchange: challenge 1 → response 1 verifies.
    let challenge1 = da.sample_challenge(req.len(), 2);
    let warrant = Warrant::issue(
        &user,
        da.identity(),
        1_000,
        req.digest(),
        &[&server_public, da.public()],
    );
    let response_bytes = wire
        .rpc_audit(
            user.identity(),
            da.identity(),
            job_id,
            &challenge1.to_wire(),
            &warrant.to_wire(),
            0,
        )
        .unwrap();
    let response = AuditResponse::from_wire(&response_bytes).unwrap();
    let honest = verify_response(
        da.credential().key(),
        user.public(),
        &signer_public,
        &req,
        &challenge1,
        &commitment,
        &response,
    );
    assert!(honest.is_valid(), "sanity: the honest exchange verifies");

    // Replay: same response against a fresh challenge over the *same*
    // indices — everything matches except the nonce, and that alone must
    // sink it.
    let challenge2 = AuditChallenge {
        indices: challenge1.indices.clone(),
        nonce: challenge1.nonce ^ 1,
    };
    let replayed = verify_response(
        da.credential().key(),
        user.public(),
        &signer_public,
        &req,
        &challenge2,
        &commitment,
        &response,
    );
    assert!(!replayed.nonce_ok, "stale nonce must be flagged");
    assert!(!replayed.is_valid(), "replayed response must not verify");

    // And against a genuinely fresh sampled challenge.
    let challenge3 = da.sample_challenge(req.len(), 2);
    assert_ne!(challenge3.nonce, challenge1.nonce, "nonces are fresh");
    let replayed3 = verify_response(
        da.credential().key(),
        user.public(),
        &signer_public,
        &req,
        &challenge3,
        &commitment,
        &response,
    );
    assert!(
        !replayed3.is_valid(),
        "replay against fresh sample rejected"
    );
}

// --- recovery sweep (resilient runtime) -----------------------------------
//
// The raw-channel sweeps above establish what faults *cost* without
// recovery: typed errors and spurious detections. This section asserts the
// recovery contract of `seccloud::resilience`: a finite fault burst against
// an honest server is fully masked (zero spurious failures), the same burst
// never launders a cheater, the whole schedule replays from its seed, and a
// dead pool member degrades only its own jobs.

/// A world whose fault channel is wrapped in the tier-1/2 resilient
/// transport (per-RPC retries + round-level escalation).
struct RecoveryWorld {
    user: CloudUser,
    da: DesignatedAgency,
    server_public: VerifierPublic,
    // lint: allow(transport, reason=the harness composes the resilient stack by hand)
    transport: ResilientTransport<FaultyChannel<WireServer>>,
}

fn wrap_resilient(w: World, seed: u64) -> RecoveryWorld {
    let World {
        user,
        da,
        channel,
        server_public,
    } = w;
    let transport = ResilientTransport::new(channel, RetryPolicy::default(), &seed.to_be_bytes());
    RecoveryWorld {
        user,
        da,
        server_public,
        transport,
    }
}

/// Recovery sweep, computation path: a burst of every fault kind on the
/// compute and audit endpoints is fully masked against an honest server —
/// where the raw-channel sweep surfaces the same faults as typed errors or
/// spurious detections, the resilient driver must end every cell `Clean`.
#[test]
fn recovery_sweep_computation_honest_bursts_fully_masked() {
    let base = seed_from_env();
    let mut matrix = Vec::new();
    for (e_idx, endpoint) in [Endpoint::Compute, Endpoint::Audit].into_iter().enumerate() {
        for (i, &kind) in FaultKind::ALL.iter().enumerate() {
            let seed = base.wrapping_add(1 + 100 * e_idx as u64 + i as u64);
            let mut w = world(b"recovery-comp", Behavior::Honest, seed);
            computation_warmup(&mut w);
            let mut rw = wrap_resilient(w, seed);
            rw.transport.inner_mut().set_forced_burst(endpoint, kind, 2);
            let res = run_job_resilient(
                &mut rw.da,
                &mut rw.transport,
                &rw.user,
                &request(5, 4),
                4,
                0,
            );
            let AuditResolution::Clean { stats, .. } = res else {
                panic!("{endpoint:?}/{kind:?}: honest server not recovered: {res:?}");
            };
            matrix.push((
                endpoint,
                kind,
                format!(
                    "clean (rounds {}, transient {}, escalations {}, final t {})",
                    stats.audit_rounds,
                    stats.transient_faults,
                    stats.escalations,
                    stats.final_sample_size
                ),
            ));
        }
    }
    print_matrix(
        "recovery sweep: compute/audit endpoints, honest server, burst of 2",
        &matrix,
    );
}

/// Recovery sweep, storage path: retrieve bursts are masked inside the
/// resilient storage audit, and store bursts are healed by caller-level
/// re-upload (ingest verifies per block and overwrites by index, so
/// re-sending is idempotent) — every cell ends healthy.
#[test]
fn recovery_sweep_storage_honest_bursts_fully_masked() {
    let base = seed_from_env();
    let mut matrix = Vec::new();
    for (i, &kind) in FaultKind::ALL.iter().enumerate() {
        // Retrieve burst: the per-position retry loop must absorb it.
        let seed = base.wrapping_add(300 + i as u64);
        let mut w = world(b"recovery-retrieve", Behavior::Honest, seed);
        upload(&mut w, 0..4).expect("clean upload");
        let _ = w.channel.rpc_retrieve(w.user.identity(), 0);
        let _ = w.channel.rpc_retrieve(w.user.identity(), 1);
        w.channel.advance_epoch();
        upload(&mut w, 4..N_BLOCKS).expect("clean upload");
        let _ = w.channel.rpc_retrieve(w.user.identity(), 2);
        let _ = w.channel.rpc_retrieve(w.user.identity(), 3);
        let mut rw = wrap_resilient(w, seed);
        rw.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Retrieve, kind, 2);
        let res = storage_audit_resilient(
            &mut rw.da,
            &mut rw.transport,
            &rw.user,
            N_BLOCKS,
            N_BLOCKS as usize,
        );
        assert!(
            res.verdict.is_healthy(),
            "Retrieve/{kind:?}: spurious storage failure: {res:?}"
        );
        matrix.push((
            Endpoint::Retrieve,
            kind,
            format!(
                "healthy (rounds {}, retried {})",
                res.stats.audit_rounds, res.stats.transient_faults
            ),
        ));

        // Store burst: retry the upload until every block is accepted.
        let seed = base.wrapping_add(400 + i as u64);
        let mut w = world(b"recovery-upload", Behavior::Honest, seed);
        upload(&mut w, 0..4).expect("clean upload");
        w.channel.advance_epoch();
        upload(&mut w, 4..6).expect("clean upload");
        upload(&mut w, 6..8).expect("clean upload");
        let mut rw = wrap_resilient(w, seed);
        rw.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Store, kind, 2);
        let blocks: Vec<DataBlock> = (8..N_BLOCKS).map(block).collect();
        let signed = rw
            .user
            .sign_blocks(&blocks, &[&rw.server_public, rw.da.public()]);
        let body = encode_store_body(&signed);
        let expected = N_BLOCKS - 8;
        let mut accepted_on = None;
        for attempt in 0..4 {
            match rw.transport.rpc_store(rw.user.identity(), &body) {
                Ok(n) if n == expected => {
                    accepted_on = Some(attempt);
                    break;
                }
                Ok(_) | Err(_) => continue,
            }
        }
        assert!(
            accepted_on.is_some(),
            "Store/{kind:?}: upload not recovered within the burst"
        );
        let res = storage_audit_resilient(
            &mut rw.da,
            &mut rw.transport,
            &rw.user,
            N_BLOCKS,
            N_BLOCKS as usize,
        );
        assert!(
            res.verdict.is_healthy(),
            "Store/{kind:?}: recovered upload does not audit healthy: {res:?}"
        );
        matrix.push((
            Endpoint::Store,
            kind,
            format!(
                "healthy (upload accepted on attempt {})",
                accepted_on.unwrap_or(9)
            ),
        ));
    }
    print_matrix(
        "recovery sweep: store/retrieve endpoints, honest server, burst of 2",
        &matrix,
    );
}

/// Recovery sweep, adversarial side: the same bursts must not launder a
/// cheater. A CSC = 0 computation cheater ends `Detected` (pinned evidence
/// survives escalation and re-dispatch) and an SSC = 0 storage corrupter
/// never audits healthy, under every fault kind.
#[test]
fn recovery_sweep_cheaters_stay_detected_under_bursts() {
    let base = seed_from_env();
    let mut matrix = Vec::new();
    for (i, &kind) in FaultKind::ALL.iter().enumerate() {
        // Computation cheater with an audit-endpoint burst.
        let seed = base.wrapping_add(500 + i as u64);
        let mut w = world(
            b"recovery-cheat",
            Behavior::ComputationCheater {
                csc: 0.0,
                guess_range: None,
            },
            seed,
        );
        computation_warmup(&mut w);
        let mut rw = wrap_resilient(w, seed);
        rw.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Audit, kind, 2);
        let res = run_job_resilient(
            &mut rw.da,
            &mut rw.transport,
            &rw.user,
            &request(5, 4),
            4,
            0,
        );
        assert!(
            res.is_detected(),
            "Audit/{kind:?}: CSC=0 cheater escaped the resilient driver: {res:?}"
        );
        matrix.push((
            Endpoint::Audit,
            kind,
            format!(
                "detected (rounds {}, byzantine {})",
                res.stats().audit_rounds,
                res.stats().byzantine_evidence
            ),
        ));

        // Storage corrupter with a retrieve-endpoint burst.
        let seed = base.wrapping_add(600 + i as u64);
        let mut w = world(
            b"recovery-corrupt",
            Behavior::StorageCheater {
                ssc: 0.0,
                attack: StorageAttack::Corrupt,
            },
            seed,
        );
        upload(&mut w, 0..N_BLOCKS).expect("clean upload");
        let mut rw = wrap_resilient(w, seed);
        rw.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Retrieve, kind, 2);
        let res = storage_audit_resilient(
            &mut rw.da,
            &mut rw.transport,
            &rw.user,
            N_BLOCKS,
            N_BLOCKS as usize,
        );
        assert!(
            !res.verdict.is_healthy(),
            "Retrieve/{kind:?}: SSC=0 corrupter audited healthy through retries"
        );
        matrix.push((
            Endpoint::Retrieve,
            kind,
            format!(
                "unhealthy ({} invalid, {} missing of {})",
                res.verdict.invalid.len(),
                res.verdict.missing.len(),
                res.verdict.sampled.len()
            ),
        ));
    }
    print_matrix("recovery sweep: bursts cannot launder cheaters", &matrix);
}

/// The recovery schedule replays bit-identically from its seed: stats,
/// virtual clock and the injected fault plan all match across runs.
#[test]
fn recovery_sweep_replays_identically_from_its_seed() {
    let base = seed_from_env();
    let run = || {
        let mut w = world(b"recovery-replay", Behavior::Honest, base);
        computation_warmup(&mut w);
        let mut rw = wrap_resilient(w, base);
        rw.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Audit, FaultKind::ReplayPrevious, 2);
        let res = run_job_resilient(
            &mut rw.da,
            &mut rw.transport,
            &rw.user,
            &request(5, 4),
            4,
            0,
        );
        assert!(res.is_clean(), "{res:?}");
        (
            res.stats().clone(),
            rw.transport.clock().now_ms(),
            rw.transport.inner().plan().clone(),
        )
    };
    assert_eq!(run(), run());
}

/// The batch-level guarantee: a dead pool member produces per-job
/// `Degraded` verdicts via failover — never a batch-wide error, and never
/// an abort of jobs routed to healthy servers. Once the dead server's
/// breaker opens, later batches skip it without sending it any traffic.
#[test]
fn pool_failover_degrades_per_job_never_batchwide() {
    let seed = seed_from_env().wrapping_add(700);
    let mut sio_seed = b"recovery-pool".to_vec();
    sio_seed.extend_from_slice(&seed.to_be_bytes());
    let sio = Sio::new(&sio_seed);
    let user = sio.register("alice");
    let mut da = DesignatedAgency::new(&sio, "da", b"agency");
    let servers: Vec<CloudServer> = (0..2)
        .map(|i| CloudServer::new(&sio, &format!("cs-{i}"), Behavior::Honest, b"srv"))
        .collect();
    let blocks: Vec<DataBlock> = (0..N_BLOCKS).map(block).collect();
    let verifier_list: Vec<VerifierPublic> = servers.iter().map(|s| s.public().clone()).collect();
    let mut refs: Vec<&VerifierPublic> = verifier_list.iter().collect();
    refs.push(da.public());
    let signed = user.sign_blocks(&blocks, &refs);
    let body = encode_store_body(&signed);
    let endpoints: Vec<_> = servers
        .into_iter()
        .enumerate()
        .map(|(i, server)| {
            // lint: allow(transport, reason=the harness composes the resilient stack by hand)
            let channel = FaultyChannel::new(WireServer::new(server), seed + i as u64, 0.0);
            let mut t = ResilientTransport::new(
                channel,
                RetryPolicy::default(),
                &[&seed.to_be_bytes()[..], &[i as u8]].concat(),
            );
            assert_eq!(
                t.rpc_store(user.identity(), &body).expect("replica seeded"),
                N_BLOCKS
            );
            t
        })
        .collect();
    let mut pool = ResilientPool::new(endpoints);
    // Server 0 goes permanently dead on its compute endpoint.
    pool.endpoint_mut(0)
        .expect("in range")
        .inner_mut()
        .set_forced(Some((Endpoint::Compute, FaultKind::Truncate)));

    let jobs = [
        PoolJob {
            request: request(3, 4),
            route: vec![0, 1],
            sample_size: 4,
        },
        PoolJob {
            request: request(4, 4),
            route: vec![1],
            sample_size: 4,
        },
    ];
    let verdicts = pool.audit_many(&mut da, &user, &jobs, 0);
    assert_eq!(
        verdicts.len(),
        2,
        "one verdict per job, never a batch error"
    );
    let PoolVerdict::Degraded {
        server,
        failed_over,
        ..
    } = &verdicts[0]
    else {
        panic!(
            "expected Degraded for the dead primary, got {:?}",
            verdicts[0]
        );
    };
    assert_eq!(*server, 1);
    assert_eq!(failed_over, &[0]);
    assert!(
        matches!(&verdicts[1], PoolVerdict::Clean { server: 1, .. }),
        "healthy job unaffected: {:?}",
        verdicts[1]
    );

    // The grind tripped server 0's breaker; the next batch must fail over
    // without burning any traffic on the dead endpoint.
    assert_eq!(pool.open_breakers(), vec![0]);
    let attempts_before = pool
        .endpoint(0)
        .expect("in range")
        .stats(seccloud::resilience::Op::Compute)
        .attempts;
    let second = pool.audit_many(&mut da, &user, &jobs, 0);
    assert!(
        second[0].answered() && second[1].answered(),
        "second batch still answers every job: {second:?}"
    );
    assert_eq!(
        pool.endpoint(0)
            .expect("in range")
            .stats(seccloud::resilience::Op::Compute)
            .attempts,
        attempts_before,
        "open breaker means zero traffic to the dead endpoint"
    );
}

// --- sharded-registry sweep -------------------------------------------------
//
// The fleet-level guarantee: auditing the whole deployment shard by shard,
// a forged or stale set commitment — and a cheating server — convicts only
// *its* shard, while healthy shards keep their Clean/Degraded verdicts.

/// One shard's lane as the sweep builds it: a raw wire server wrapped in a
/// seeded fault channel, driven by the resilient pool inside the lane.
// lint: allow(transport, reason=the harness composes the sharded lanes by hand)
type SweepLane = ShardLane<FaultyChannel<WireServer>>;

/// Builds one shard's audit lane: a two-server pool (behavior per server)
/// behind fault channels, seeded with the owner's blocks, plus two jobs
/// routed `[0, 1]` and `[1]`.
fn shard_lane(shard: u32, behaviors: [Behavior; 2], seed: u64) -> SweepLane {
    let mut sio_seed = b"sharded-sweep".to_vec();
    sio_seed.extend_from_slice(&seed.to_be_bytes());
    sio_seed.push(shard as u8);
    let sio = Sio::new(&sio_seed);
    let owner = sio.register(&format!("owner-{shard}"));
    let da = DesignatedAgency::new(&sio, &format!("da-{shard}"), b"agency");
    let servers: Vec<CloudServer> = behaviors
        .into_iter()
        .enumerate()
        .map(|(i, b)| CloudServer::new(&sio, &format!("cs-{shard}-{i}"), b, b"srv"))
        .collect();
    let blocks: Vec<DataBlock> = (0..N_BLOCKS).map(block).collect();
    let verifier_list: Vec<VerifierPublic> = servers.iter().map(|s| s.public().clone()).collect();
    let mut refs: Vec<&VerifierPublic> = verifier_list.iter().collect();
    refs.push(da.public());
    let signed = owner.sign_blocks(&blocks, &refs);
    let body = encode_store_body(&signed);
    let endpoints: Vec<_> = servers
        .into_iter()
        .enumerate()
        .map(|(i, server)| {
            // lint: allow(transport, reason=the harness composes the resilient stack by hand)
            let channel = FaultyChannel::new(WireServer::new(server), seed + i as u64, 0.0);
            let mut t = ResilientTransport::new(
                channel,
                RetryPolicy::default(),
                &[&seed.to_be_bytes()[..], &[shard as u8, i as u8]].concat(),
            );
            assert_eq!(
                t.rpc_store(owner.identity(), &body).expect("lane seeded"),
                N_BLOCKS
            );
            t
        })
        .collect();
    let jobs = vec![
        PoolJob {
            request: request(3 + u64::from(shard), 4),
            route: vec![0, 1],
            sample_size: 4,
        },
        PoolJob {
            request: request(7 + u64::from(shard), 4),
            route: vec![1],
            sample_size: 4,
        },
    ];
    ShardLane {
        shard,
        pool: ResilientPool::new(endpoints),
        da,
        owner,
        jobs,
        presented_commitment: Vec::new(),
    }
}

/// The sharded sweep: five lanes over a five-shard registry —
///
/// * shard 0 presents shard 1's commitment (cross-swap),
/// * shard 1 presents last epoch's commitment (stale replay),
/// * shard 2 is fully healthy,
/// * shard 3 has a dead primary (service degradation, valid commitment),
/// * shard 4 runs a CSC = 0 computation cheater (byzantine evidence).
///
/// The compromised shards are convicted per shard with the exact
/// commitment fault classified; the healthy shards end Clean/Degraded.
#[test]
fn sharded_sweep_convicts_per_shard_without_failing_healthy_shards() {
    const SHARDS: u32 = 5;
    let seed = seed_from_env().wrapping_add(800);

    // The registry: tenants enrolled in epoch 1, then rotated to epoch 2
    // so a genuine earlier-epoch commitment exists to replay.
    let mut registry = UserRegistry::new(SHARDS, 1);
    for i in 0..40 {
        registry.enroll(seccloud::ibs::UserPublic::from_identity(&format!(
            "tenant-{i}"
        )));
    }
    let stale = registry.commitments();
    registry.rotate_epoch();
    let current = registry.commitments();

    let cheater = Behavior::ComputationCheater {
        csc: 0.0,
        guess_range: None,
    };
    let mut lanes: Vec<SweepLane> = (0..SHARDS)
        .map(|s| {
            let behaviors = if s == 4 {
                [cheater.clone(), cheater.clone()]
            } else {
                [Behavior::Honest, Behavior::Honest]
            };
            shard_lane(s, behaviors, seed + 10 * u64::from(s))
        })
        .collect();
    lanes[0].presented_commitment = current[1].to_bytes(); // cross-swap
    lanes[1].presented_commitment = stale[1].to_bytes(); // stale epoch
    lanes[2].presented_commitment = current[2].to_bytes(); // honest
    lanes[3].presented_commitment = current[3].to_bytes(); // honest, dead primary
    lanes[4].presented_commitment = current[4].to_bytes(); // honest commitment, cheater pool
    lanes[3]
        .pool
        .endpoint_mut(0)
        .expect("in range")
        .inner_mut()
        .set_forced(Some((Endpoint::Compute, FaultKind::Truncate)));

    let outcomes = audit_shards(&registry, &mut lanes, 0);
    assert_eq!(outcomes.len(), SHARDS as usize);

    assert_eq!(
        outcomes[0].commitment,
        CommitmentCheck::WrongShard { presented: 1 },
        "cross-swap classified"
    );
    assert_eq!(outcomes[0].status, ShardStatus::Compromised);

    assert_eq!(
        outcomes[1].commitment,
        CommitmentCheck::WrongEpoch { presented: 1 },
        "stale replay classified"
    );
    assert_eq!(outcomes[1].status, ShardStatus::Compromised);

    assert!(outcomes[2].commitment.is_valid());
    assert_eq!(
        outcomes[2].status,
        ShardStatus::Clean,
        "healthy shard stays clean next to compromised neighbours: {:?}",
        outcomes[2].verdicts
    );

    assert!(outcomes[3].commitment.is_valid());
    assert_eq!(
        outcomes[3].status,
        ShardStatus::Degraded,
        "dead primary degrades, never convicts: {:?}",
        outcomes[3].verdicts
    );
    assert!(
        outcomes[3].verdicts.iter().all(|v| v.answered()),
        "failover still answers every job in the degraded shard"
    );

    assert!(outcomes[4].commitment.is_valid());
    assert_eq!(
        outcomes[4].status,
        ShardStatus::Compromised,
        "cheating servers convict their shard: {:?}",
        outcomes[4].verdicts
    );
    assert!(outcomes[4].verdicts.iter().any(|v| v.is_detected()));
}

/// Determinism: the sharded sweep replays identically from its seed —
/// same statuses, same commitment classifications — under any
/// `SECCLOUD_THREADS` (the lanes are independent).
#[test]
fn sharded_sweep_replays_identically() {
    let seed = seed_from_env().wrapping_add(900);
    let run = || {
        let mut registry = UserRegistry::new(3, 1);
        for i in 0..12 {
            registry.enroll(seccloud::ibs::UserPublic::from_identity(&format!(
                "tenant-{i}"
            )));
        }
        let commitments = registry.commitments();
        let mut lanes: Vec<SweepLane> = (0..3)
            .map(|s| shard_lane(s, [Behavior::Honest, Behavior::Honest], seed + u64::from(s)))
            .collect();
        for (lane, c) in lanes.iter_mut().zip(&commitments) {
            lane.presented_commitment = c.to_bytes();
        }
        audit_shards(&registry, &mut lanes, 0)
            .into_iter()
            .map(|o| format!("{}:{:?}:{:?}", o.shard, o.commitment, o.status))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
