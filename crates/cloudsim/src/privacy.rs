//! The privacy-cheating (illegal information selling) experiment
//! (paper Sections III-B and VII-B).
//!
//! A compromised server tries to sell a user's data to a buyer. To be worth
//! paying for, the data must come with proof of authenticity — but the
//! designated signatures it holds (1) cannot be verified by the buyer and
//! (2) could have been fabricated by any designated verifier, so they prove
//! nothing. This module packages that argument as a runnable experiment.

use seccloud_core::storage::SignedBlock;
use seccloud_core::{CloudUser, Sio};
use seccloud_hash::HmacDrbg;
use seccloud_ibs::{simulate, UserPublic, VerifierKey, VerifierPublic};

use crate::server::CloudServer;

/// The findings of one leak experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakFindings {
    /// Number of blocks the server exfiltrated.
    pub leaked_blocks: usize,
    /// Whether the designated verifier itself could authenticate the loot
    /// (it can — it is designated).
    pub designee_can_verify: bool,
    /// Whether the buyer (with only public data) could authenticate any
    /// leaked block. Must be `false` for privacy preservation.
    pub buyer_can_verify: bool,
    /// Whether the buyer could distinguish the loot from signatures the
    /// seller could have fabricated with its own key. Must be `false`.
    pub loot_distinguishable_from_forgery: bool,
}

impl LeakFindings {
    /// Definition 2 holds: nothing a third party can check leaked.
    pub fn privacy_preserved(&self) -> bool {
        !self.buyer_can_verify && !self.loot_distinguishable_from_forgery
    }
}

/// What a non-designated buyer can attempt with a leaked block: pair the
/// components against *public* identities only. Returns `true` if any such
/// check authenticates the block (it never should).
pub fn buyer_attempts_verification(
    block: &SignedBlock,
    owner: &UserPublic,
    known_verifiers: &[&VerifierPublic],
) -> bool {
    known_verifiers.iter().any(|v| {
        block.designation_for(v.identity()).is_some_and(|sig| {
            sig.third_party_check_is_useless(v, owner, &block.block().signed_message())
        })
    })
}

/// Checks whether a leaked designated signature carries any mark
/// distinguishing it from a verifier-side forgery: we fabricate a signature
/// on the same block with [`simulate`] and confirm both verify identically
/// under the designee's key — i.e. the *distribution* of valid signatures is
/// reachable by the verifier, so possession proves nothing.
pub fn loot_is_distinguishable(
    block: &SignedBlock,
    owner: &UserPublic,
    designee: &VerifierKey,
    drbg: &mut HmacDrbg,
) -> bool {
    let Some(real) = block.designation_for(designee.identity()) else {
        return false;
    };
    let msg = block.block().signed_message();
    let fake = simulate(designee, owner, &msg, drbg);
    let real_ok = real.verify(designee, owner, &msg);
    let fake_ok = fake.verify(designee, owner, &msg);
    // Distinguishable only if the forgery fails where the real one passes.
    real_ok && !fake_ok
}

/// Runs the full illegal-selling scenario against a [`CloudServer`] that
/// was configured as a [`crate::behavior::Behavior::PrivacyLeaker`]:
/// collects its exfiltrated blocks and evaluates what the designee and an
/// outside buyer can do with them.
pub fn run_leak_experiment(
    sio: &Sio,
    server: &CloudServer,
    owner: &CloudUser,
    designee: &VerifierKey,
) -> LeakFindings {
    let mut drbg = HmacDrbg::new(b"leak-experiment");
    let leaked: Vec<&SignedBlock> = server
        .leaked_blocks()
        .iter()
        .filter(|(o, _)| o == owner.identity())
        .map(|(_, b)| b)
        .collect();

    let known_verifiers: Vec<VerifierPublic> = leaked
        .iter()
        .flat_map(|b| b.designated_verifiers())
        .map(VerifierPublic::from_identity)
        .collect();
    let verifier_refs: Vec<&VerifierPublic> = known_verifiers.iter().collect();

    let designee_can_verify = leaked.iter().all(|b| b.verify(designee, owner.public()));
    let buyer_can_verify = leaked
        .iter()
        .any(|b| buyer_attempts_verification(b, owner.public(), &verifier_refs));
    let loot_distinguishable_from_forgery = leaked
        .iter()
        .any(|b| loot_is_distinguishable(b, owner.public(), designee, &mut drbg));

    // The SIO reference documents that even re-registration does not help
    // the buyer: identities are public, secrets are not.
    let _ = sio;

    LeakFindings {
        leaked_blocks: leaked.len(),
        designee_can_verify,
        buyer_can_verify,
        loot_distinguishable_from_forgery,
    }
}

impl CloudServer {
    /// The blocks this server has exfiltrated (empty unless it is a
    /// privacy leaker).
    pub fn leaked_blocks(&self) -> &[(String, SignedBlock)] {
        &self.leaked
    }
}

/// Contrast case: if the user had uploaded *publicly verifiable* raw IBS
/// signatures instead of designated ones, the buyer could authenticate the
/// loot — quantifying exactly what the designated transform buys.
pub fn counterfactual_public_signature_leak(sio: &Sio, owner: &CloudUser, data: &[u8]) -> bool {
    let raw = seccloud_ibs::sign(owner.key(), data, b"counterfactual");
    // Buyer verifies against public parameters alone:
    raw.verify_public(sio.params(), owner.public(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use seccloud_core::storage::DataBlock;

    #[test]
    fn leaked_designated_blocks_are_worthless_to_buyers() {
        let sio = Sio::new(b"privacy-tests");
        let user = sio.register("alice");
        let mut server = CloudServer::new(&sio, "cs-01", Behavior::PrivacyLeaker, b"srv");
        let da = sio.register_verifier("da");
        let blocks: Vec<DataBlock> = (0..5)
            .map(|i| DataBlock::from_values(i, &[i * 7]))
            .collect();
        let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
        server.store(&user, signed);

        let findings = run_leak_experiment(&sio, &server, &user, da.key());
        assert_eq!(findings.leaked_blocks, 5);
        assert!(findings.designee_can_verify, "the DA itself can verify");
        assert!(!findings.buyer_can_verify, "the buyer cannot");
        assert!(
            !findings.loot_distinguishable_from_forgery,
            "loot ≡ forgeable"
        );
        assert!(findings.privacy_preserved());
    }

    #[test]
    fn counterfactual_public_signature_would_leak() {
        let sio = Sio::new(b"counterfactual");
        let user = sio.register("alice");
        assert!(
            counterfactual_public_signature_leak(&sio, &user, b"secret record"),
            "raw IBS is publicly verifiable — designation is what protects"
        );
    }

    #[test]
    fn honest_server_leaks_nothing() {
        let sio = Sio::new(b"no-leak");
        let user = sio.register("alice");
        let mut server = CloudServer::new(&sio, "cs-01", Behavior::Honest, b"srv");
        let da = sio.register_verifier("da");
        let blocks = vec![DataBlock::from_values(0, &[1])];
        let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
        server.store(&user, signed);
        let findings = run_leak_experiment(&sio, &server, &user, da.key());
        assert_eq!(findings.leaked_blocks, 0);
        assert!(findings.privacy_preserved());
    }
}
