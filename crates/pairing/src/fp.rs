//! The BN254 base field `Fp`.

use seccloud_bigint::U256;

use crate::mont_field;

mont_field!(
    Fp,
    // p = 36x⁴ + 36x³ + 24x² + 6x + 1 for x = 4965661367192848881
    "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47",
    "The BN254 base field `F_p` (254-bit prime)."
);

impl Fp {
    /// Computes a square root when one exists (`p ≡ 3 mod 4`, so
    /// `√a = a^((p+1)/4)`), returning the root with even canonical
    /// representation first.
    ///
    /// # Examples
    ///
    /// ```
    /// use seccloud_pairing::Fp;
    /// let a = Fp::from_u64(9);
    /// let r = a.sqrt().unwrap();
    /// assert_eq!(r.square(), a);
    /// assert!(Fp::from_u64(5).sqrt().is_none()); // 5 is a non-residue mod p
    /// ```
    pub fn sqrt(&self) -> Option<Self> {
        // (p + 1) / 4
        let e = Self::modulus().wrapping_add(&U256::ONE).shr(2);
        let root = self.pow(e.limbs());
        if root.square() == *self {
            // Canonical choice: the even root.
            Some(if root.is_odd() { root.neg() } else { root })
        } else {
            None
        }
    }

    /// Maps arbitrary bytes to a near-uniform field element using the
    /// workspace-wide domain-separated expansion.
    pub fn from_hash(domain: &[u8], msg: &[u8]) -> Self {
        let wide = seccloud_hash::hash_to_int_bytes(domain, msg, 64);
        Self::from_bytes_wide(&wide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_hash::HmacDrbg;

    fn fp(d: &mut HmacDrbg) -> Fp {
        Fp::from_u256(&U256::from_limbs(std::array::from_fn(|_| d.next_u64())))
    }

    #[test]
    fn constants_are_derived_correctly() {
        // R² must be 2⁵¹² mod p: check via (2²⁵⁶ as element)·(2²⁵⁶) = R²-elem.
        let two = Fp::from_u64(2);
        let two_256 = two.pow(&[256, 0, 0, 0]);
        let two_512 = two.pow(&[512, 0, 0, 0]);
        assert_eq!(two_256.square(), two_512);
        // -p⁻¹ · p ≡ -1 mod 2⁶⁴
        let m0 = Fp::MODULUS[0];
        assert_eq!(
            crate::mont::mont_neg_inv(m0).wrapping_mul(m0),
            u64::MAX // -1 mod 2⁶⁴
        );
    }

    #[test]
    fn one_round_trips() {
        assert_eq!(Fp::one().to_u256(), U256::ONE);
        assert_eq!(Fp::zero().to_u256(), U256::ZERO);
        assert_eq!(Fp::from_u64(12345).to_u256(), U256::from_u64(12345));
    }

    #[test]
    fn small_multiplication_reference() {
        let a = Fp::from_u64(0xffff_ffff);
        let b = Fp::from_u64(0x1_0000_0001);
        assert_eq!(
            (a * b).to_u256(),
            U256::from_u128(0xffff_ffff * 0x1_0000_0001u128)
        );
    }

    #[test]
    fn reduction_wraps_the_modulus() {
        let p = Fp::modulus();
        assert!(Fp::from_u256(&p).is_zero());
        let p_plus_5 = p.wrapping_add(&U256::from_u64(5));
        assert_eq!(Fp::from_u256(&p_plus_5), Fp::from_u64(5));
    }

    #[test]
    fn fermat_little_theorem() {
        let a = Fp::from_u64(7);
        let exp = Fp::modulus().wrapping_sub(&U256::ONE);
        assert_eq!(a.pow(exp.limbs()), Fp::one());
    }

    #[test]
    fn sqrt_of_squares_and_non_residues() {
        let mut found_none = 0;
        for v in 1u64..40 {
            let a = Fp::from_u64(v);
            match a.sqrt() {
                Some(r) => {
                    assert_eq!(r.square(), a);
                    assert!(!r.is_odd(), "canonical root is even");
                }
                None => found_none += 1,
            }
        }
        // About half of the elements are non-residues.
        assert!(found_none > 5, "expected several non-residues");
    }

    #[test]
    fn from_bytes_round_trip() {
        let a = Fp::from_u64(0xdead_beef_cafe);
        assert_eq!(Fp::from_be_bytes(&a.to_be_bytes()), Some(a));
        // Reject non-canonical bytes.
        let too_big = Fp::modulus().to_be_bytes();
        let arr: [u8; 32] = too_big.try_into().unwrap();
        assert_eq!(Fp::from_be_bytes(&arr), None);
    }

    #[test]
    fn from_hash_is_deterministic_and_separated() {
        let a = Fp::from_hash(b"H1", b"alice");
        assert_eq!(a, Fp::from_hash(b"H1", b"alice"));
        assert_ne!(a, Fp::from_hash(b"H1", b"bob"));
        assert_ne!(a, Fp::from_hash(b"H2", b"alice"));
    }

    #[test]
    fn add_assoc_comm() {
        let mut d = HmacDrbg::new(b"fp-add");
        for _ in 0..64 {
            let (a, b, c) = (fp(&mut d), fp(&mut d), fp(&mut d));
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn mul_assoc_comm_distributes() {
        let mut d = HmacDrbg::new(b"fp-mul");
        for _ in 0..64 {
            let (a, b, c) = (fp(&mut d), fp(&mut d), fp(&mut d));
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * b, b * a);
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }

    #[test]
    fn additive_inverse() {
        let mut d = HmacDrbg::new(b"fp-neg");
        for _ in 0..64 {
            let a = fp(&mut d);
            assert!((a + a.neg()).is_zero());
            assert_eq!(a.neg().neg(), a);
        }
    }

    #[test]
    fn multiplicative_inverse() {
        let mut d = HmacDrbg::new(b"fp-inv");
        for _ in 0..64 {
            let a = fp(&mut d);
            if let Some(inv) = a.inverse() {
                assert_eq!(a * inv, Fp::one());
            } else {
                assert!(a.is_zero());
            }
        }
    }

    #[test]
    fn square_matches_mul() {
        let mut d = HmacDrbg::new(b"fp-sq");
        for _ in 0..64 {
            let a = fp(&mut d);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn sub_is_add_neg() {
        let mut d = HmacDrbg::new(b"fp-sub");
        for _ in 0..64 {
            let (a, b) = (fp(&mut d), fp(&mut d));
            assert_eq!(a - b, a + b.neg());
        }
    }

    #[test]
    fn mont_round_trip() {
        let mut d = HmacDrbg::new(b"fp-mont");
        for _ in 0..64 {
            let a = fp(&mut d);
            assert_eq!(Fp::from_u256(&a.to_u256()), a);
        }
    }

    #[test]
    fn pow_adds_exponents() {
        let mut d = HmacDrbg::new(b"fp-pow");
        for _ in 0..64 {
            let a = fp(&mut d);
            let e1 = d.next_below(1000);
            let e2 = d.next_below(1000);
            let lhs = a.pow(&[e1 + e2]);
            let rhs = a.pow(&[e1]).mul(&a.pow(&[e2]));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn sqrt_round_trip() {
        let mut d = HmacDrbg::new(b"fp-sqrt");
        for _ in 0..64 {
            let a = fp(&mut d);
            let sq = a.square();
            let r = sq.sqrt().expect("squares have roots");
            assert!(r == a || r == a.neg());
        }
    }
}
