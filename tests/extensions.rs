//! Integration tests for the extension layers: dynamic storage, the wire
//! format, byte-level RPC and concurrent auditing — composed through the
//! facade crate the way a downstream user would.

use seccloud::cloudsim::behavior::Behavior;
use seccloud::cloudsim::concurrent::{parallel_batch_fold, AuditJob};
use seccloud::cloudsim::rpc::{audit_over_the_wire, encode_store_body};
// lint: allow(transport, reason=byte-level baseline path exercised raw on purpose)
use seccloud::cloudsim::rpc::WireServer;
use seccloud::cloudsim::{CloudServer, DesignatedAgency};
use seccloud::core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud::core::dynstore::{audit_dynamic, DynamicStore, OwnerLedger};
use seccloud::core::storage::DataBlock;
use seccloud::core::wire::WireMessage;
use seccloud::core::Sio;
use seccloud::ibs::{designate, sign, BatchItem, MasterKey};

fn request(n: u64) -> ComputationRequest {
    ComputationRequest::new(
        (0..n)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i],
            })
            .collect(),
    )
}

#[test]
fn full_document_lifecycle_with_dynamic_store() {
    let sio = Sio::new(b"ext-dyn");
    let user = sio.register("docs");
    let da = sio.register_verifier("da");
    let mut ledger = OwnerLedger::new();
    let mut store = DynamicStore::new();

    // Grow, mutate, shrink — audit stays clean throughout.
    for pos in 0..20u64 {
        store.put(user.dyn_insert(&mut ledger, pos, vec![pos as u8; 16], &[da.public()]));
    }
    for pos in (0..20u64).step_by(3) {
        store.put(user.dyn_update(&mut ledger, pos, vec![0xaa; 8], &[da.public()]));
    }
    for pos in (0..20u64).step_by(5) {
        user.dyn_delete(&mut ledger, pos);
        store.delete(pos);
    }
    assert!(audit_dynamic(da.key(), user.public(), &ledger, &store).is_empty());
    assert_eq!(ledger.live_count(), 16);

    // One silent drop is one violation.
    let victim = ledger.live_positions().next().unwrap();
    store.delete(victim);
    let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].0, victim);
}

#[test]
fn rpc_and_concurrent_audits_compose() {
    let sio = Sio::new(b"ext-rpc");
    let user = sio.register("alice");
    let mut da = DesignatedAgency::new(&sio, "da", b"agency");

    // Byte-level path against one server…
    let cs = CloudServer::new(&sio, "cs-wire", Behavior::Honest, b"w");
    // lint: allow(transport, reason=byte-level baseline path exercised raw on purpose)
    let mut wire_server = WireServer::new(cs);
    let blocks: Vec<DataBlock> = (0..6u64)
        .map(|i| DataBlock::from_values(i, &[i * 11]))
        .collect();
    let signed = user.sign_blocks(&blocks, &[wire_server.inner().public(), da.public()]);
    wire_server
        .rpc_store(user.identity(), &encode_store_body(&signed))
        .unwrap();
    let req = request(6);
    let (job_id, commitment_bytes) = wire_server
        .rpc_compute(user.identity(), da.identity(), &req.to_wire())
        .unwrap();
    let verdict = audit_over_the_wire(
        &mut da,
        &mut wire_server,
        &user,
        &req,
        job_id,
        &commitment_bytes,
        3,
        0,
    )
    .unwrap();
    assert!(!verdict.detected);

    // …and the in-memory concurrent path against a cheater + an honest one.
    let mut honest = CloudServer::new(&sio, "cs-honest", Behavior::Honest, b"h");
    let mut cheat = CloudServer::new(
        &sio,
        "cs-cheat",
        Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        },
        b"c",
    );
    for server in [&mut honest, &mut cheat] {
        let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
        server.store(&user, signed);
    }
    let h1 = honest
        .handle_computation(&user.identity().to_string(), &req, da.public())
        .unwrap();
    let h2 = cheat
        .handle_computation(&user.identity().to_string(), &req, da.public())
        .unwrap();
    let jobs = [
        AuditJob {
            server: &honest,
            handle: &h1,
            owner: &user,
        },
        AuditJob {
            server: &cheat,
            handle: &h2,
            owner: &user,
        },
    ];
    let verdicts = da.audit_many(&jobs, 6, 0, 2);
    assert!(!verdicts[0].as_ref().unwrap().detected);
    assert!(verdicts[1].as_ref().unwrap().detected);
}

#[test]
fn parallel_fold_scales_with_mixed_users() {
    let m = MasterKey::from_seed(b"ext-fold");
    let server = m.extract_verifier("cs");
    let items: Vec<BatchItem> = (0..40)
        .map(|i| {
            let user = m.extract_user(&format!("user-{}", i % 7));
            let msg = format!("doc-{i}").into_bytes();
            let s = designate(&sign(&user, &msg, b"n"), server.public());
            BatchItem {
                signer: user.public().clone(),
                message: msg,
                signature: s,
            }
        })
        .collect();
    assert!(parallel_batch_fold(&items, &server, 8));
}

#[test]
fn wire_format_survives_the_ate_backend() {
    // Serialization of Gt values produced by the default (ate) pairing
    // round-trips and still verifies — pinning the backend switch.
    let sio = Sio::new(b"ext-ate-wire");
    let user = sio.register("alice");
    let cs = sio.register_verifier("cs");
    let block = DataBlock::from_values(0, &[1, 2, 3]);
    let signed = user.sign_block(&block, &[cs.public()], b"nonce");
    let decoded = seccloud::core::storage::SignedBlock::from_wire(&signed.to_wire()).unwrap();
    assert!(decoded.verify(cs.key(), user.public()));
}
