//! Fixture: key material reaching a variable-time primitive (rule
//! `vartime`), both directly and through an interprocedural path.

// lint: secret
pub struct UserKey {
    sk: u64,
}

impl Drop for UserKey {
    fn drop(&mut self) {}
}

/// Variable-time by naming convention (`*_vartime`).
fn modinv_vartime(x: u64) -> u64 {
    x ^ 1
}

/// A non-suffixed path into the primitive.
fn normalize(x: u64) -> u64 {
    modinv_vartime(x)
}

/// Direct call with key material.
pub fn bad_direct(k: &UserKey) -> u64 {
    modinv_vartime(k.sk)
}

/// The same leak one call deep: `normalize` is a variable-time path.
pub fn bad_via_path(k: &UserKey) -> u64 {
    normalize(k.sk)
}
