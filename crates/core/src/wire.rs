//! Wire format for every protocol message.
//!
//! The paper's protocol is a network protocol — users upload
//! `{D, Φ}` bundles, servers return `{Y, Sig(R)}` commitments, and audits
//! exchange challenges and responses. This module gives each message a
//! compact, versioned, canonical binary encoding:
//!
//! * `G1` points travel compressed (32 bytes), `G2` compressed (64 bytes),
//!   `GT` values as 384-byte canonical coefficient strings;
//! * every variable-length field is length-prefixed; decoding rejects
//!   trailing bytes, truncations, bad tags and non-canonical field
//!   elements;
//! * decoded signatures/points are *structurally* validated here
//!   (on-curve, canonical) while protocol validity is established by the
//!   usual verification calls.

use seccloud_ibs::DesignatedSignature;
use seccloud_merkle::{MerklePath, Node};
use seccloud_pairing::{G1Affine, Gt, G1};

use crate::computation::{
    AuditChallenge, AuditItemResponse, AuditResponse, Commitment, ComputationRequest,
    ComputeFunction, RequestItem,
};
use crate::storage::{DataBlock, SignedBlock};
use crate::warrant::Warrant;

/// Format version byte leading every top-level message.
const VERSION: u8 = 1;

/// Errors from decoding a wire message, or from moving one across a real
/// I/O boundary (the `Timeout`/`ConnectionLost`/`FrameTooLarge`/
/// `TruncatedFrame` variants are produced by the socket framing layer in
/// `crates/net`, never by the in-memory decoders).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Unknown version or enum tag.
    BadTag(u8),
    /// A point or field element failed structural validation.
    BadElement,
    /// Input had bytes left over after the structure.
    TrailingBytes,
    /// A declared length exceeds sanity bounds.
    LengthOverflow,
    /// A socket read or write missed its per-connection deadline.
    Timeout,
    /// The connection dropped between frames (reset, clean close, broken
    /// pipe) — no frame was in flight when it died.
    ConnectionLost,
    /// A frame header declared a length beyond the hard cap. Rejected
    /// *before* any allocation: a length bomb must cost the receiver
    /// nothing, and is never worth retrying against the same peer.
    FrameTooLarge,
    /// The connection dropped mid-frame: the header promised more bytes
    /// than arrived before EOF.
    TruncatedFrame,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadElement => write!(f, "invalid group/field element"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::LengthOverflow => write!(f, "declared length too large"),
            WireError::Timeout => write!(f, "socket deadline missed"),
            WireError::ConnectionLost => write!(f, "connection lost between frames"),
            WireError::FrameTooLarge => write!(f, "frame length exceeds hard cap"),
            WireError::TruncatedFrame => write!(f, "connection dropped mid-frame"),
        }
    }
}

impl WireError {
    /// Whether retrying the exchange can plausibly succeed.
    ///
    /// Decode failures are transient: the wire is unauthenticated, so a
    /// truncation, flipped tag or mangled element says something about the
    /// *channel*, never about the peer. Authenticated misbehaviour only
    /// exists after a message decodes and its signatures verify — by
    /// construction no [`WireError`] carries such evidence. The I/O
    /// variants follow the same logic: a missed deadline, a dropped
    /// connection or a frame cut short are channel weather. The one
    /// exception is [`WireError::FrameTooLarge`] — a peer that *declares*
    /// an absurd frame length composed that header deliberately (lengths
    /// are not a bit-flip away from sane values at the cap's magnitude), so
    /// hammering it with retries only re-opens the allocation-bomb window.
    pub fn is_transient(&self) -> bool {
        match self {
            WireError::Truncated
            | WireError::BadTag(_)
            | WireError::BadElement
            | WireError::TrailingBytes
            | WireError::LengthOverflow
            | WireError::Timeout
            | WireError::ConnectionLost
            | WireError::TruncatedFrame => true,
            WireError::FrameTooLarge => false,
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum declared collection length accepted while decoding (prevents
/// allocation bombs from hostile peers).
const MAX_LEN: u64 = 1 << 24;

/// A growable encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer with the version header.
    pub fn new() -> Self {
        let mut w = Self { buf: Vec::new() };
        w.put_u8(VERSION);
        w
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_fixed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked decoder.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `data` and consumes the version header.
    ///
    /// # Errors
    ///
    /// [`WireError::BadTag`] for an unsupported version.
    pub fn new(data: &'a [u8]) -> Result<Self, WireError> {
        let mut r = Self { data, pos: 0 };
        let v = r.take_u8()?;
        if v != VERSION {
            return Err(WireError::BadTag(v));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::LengthOverflow)?;
        let out = self.data.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads exactly `N` bytes into a fixed array; total, no panics.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(WireError::Truncated)
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u128`.
    pub fn take_u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_be_bytes(self.take_array()?))
    }

    /// Reads a bounded length prefix.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let n = self.take_u64()?;
        if n > MAX_LEN {
            return Err(WireError::LengthOverflow);
        }
        Ok(n as usize)
    }

    /// Reads a collection length prefix and caps it against the remaining
    /// input *before* any allocation: a collection of `n` elements, each at
    /// least `min_elem_bytes` long, cannot be encoded in fewer than
    /// `n * min_elem_bytes` remaining bytes. A declared length failing that
    /// bound is a lie (or a truncation) and is rejected here, so decoders
    /// can `Vec::with_capacity(n)` safely — no allocation bombs from
    /// hostile length fields.
    pub fn take_len_elems(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.take_len()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Reads length-prefixed bytes.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.take_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, WireError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadElement)
    }

    /// Asserts the input is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// --- element helpers ------------------------------------------------------

fn put_g1(w: &mut Writer, p: &G1) {
    w.put_fixed(&p.to_affine().to_compressed());
}

fn take_g1(r: &mut Reader<'_>) -> Result<G1, WireError> {
    let bytes: [u8; 32] = r.take_array()?;
    G1Affine::from_compressed(&bytes)
        .map(G1::from)
        .ok_or(WireError::BadElement)
}

fn put_gt(w: &mut Writer, v: &Gt) {
    w.put_fixed(&v.to_bytes());
}

fn take_gt(r: &mut Reader<'_>) -> Result<Gt, WireError> {
    Gt::from_bytes(r.take(384)?).ok_or(WireError::BadElement)
}

fn put_sig(w: &mut Writer, sig: &DesignatedSignature) {
    put_g1(w, sig.u());
    put_gt(w, sig.sigma());
}

fn take_sig(r: &mut Reader<'_>) -> Result<DesignatedSignature, WireError> {
    let u = take_g1(r)?;
    let sigma = take_gt(r)?;
    Ok(DesignatedSignature::from_parts(u, sigma))
}

fn put_designations(w: &mut Writer, items: Vec<(&str, &DesignatedSignature)>) {
    w.put_u64(items.len() as u64);
    for (id, sig) in items {
        w.put_str(id);
        put_sig(w, sig);
    }
}

fn take_designations(r: &mut Reader<'_>) -> Result<Vec<(String, DesignatedSignature)>, WireError> {
    // id length prefix (8) + compressed G1 (32) + Gt (384) per entry.
    let n = r.take_len_elems(8 + 32 + 384)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.take_str()?;
        out.push((id, take_sig(r)?));
    }
    Ok(out)
}

fn put_node(w: &mut Writer, n: &Node) {
    w.put_fixed(n);
}

fn take_node(r: &mut Reader<'_>) -> Result<Node, WireError> {
    r.take_array()
}

// --- message codecs -------------------------------------------------------

/// Types that have a canonical wire encoding.
pub trait WireMessage: Sized {
    /// Appends the body (without version header) to `w`.
    fn encode_body(&self, w: &mut Writer);
    /// Parses the body from `r`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input.
    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Serializes to a standalone byte string (version header included).
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_body(&mut w);
        w.finish()
    }

    /// Parses a standalone byte string, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes)?;
        let v = Self::decode_body(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl WireMessage for DataBlock {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u64(self.index());
        w.put_bytes(self.data());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let index = r.take_u64()?;
        let data = r.take_bytes()?.to_vec();
        Ok(DataBlock::new(index, data))
    }
}

impl WireMessage for SignedBlock {
    fn encode_body(&self, w: &mut Writer) {
        self.block().encode_body(w);
        put_designations(w, self.designations().collect());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let block = DataBlock::decode_body(r)?;
        let designations = take_designations(r)?;
        Ok(SignedBlock::from_parts(block, designations))
    }
}

impl WireMessage for ComputeFunction {
    fn encode_body(&self, w: &mut Writer) {
        match self {
            ComputeFunction::Sum => w.put_u8(0),
            ComputeFunction::Average => w.put_u8(1),
            ComputeFunction::Max => w.put_u8(2),
            ComputeFunction::Min => w.put_u8(3),
            ComputeFunction::Count => w.put_u8(4),
            ComputeFunction::WeightedSum(v) => {
                w.put_u8(5);
                w.put_u64(v.len() as u64);
                for x in v {
                    w.put_u64(*x);
                }
            }
            ComputeFunction::Polynomial(v) => {
                w.put_u8(6);
                w.put_u64(v.len() as u64);
                for x in v {
                    w.put_u64(*x);
                }
            }
            ComputeFunction::SumSquaredDeviation => w.put_u8(7),
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.take_u8()?;
        Ok(match tag {
            0 => ComputeFunction::Sum,
            1 => ComputeFunction::Average,
            2 => ComputeFunction::Max,
            3 => ComputeFunction::Min,
            4 => ComputeFunction::Count,
            5 | 6 => {
                let n = r.take_len_elems(8)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.take_u64()?);
                }
                // lint: allow(ct, reason=wire-format discriminant byte, public data, not a MAC tag)
                if tag == 5 {
                    ComputeFunction::WeightedSum(v)
                } else {
                    ComputeFunction::Polynomial(v)
                }
            }
            7 => ComputeFunction::SumSquaredDeviation,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl WireMessage for ComputationRequest {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u64(self.items.len() as u64);
        for item in &self.items {
            item.function.encode_body(w);
            w.put_u64(item.positions.len() as u64);
            for p in &item.positions {
                w.put_u64(*p);
            }
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Function tag (1) + positions length prefix (8) per item.
        let n = r.take_len_elems(1 + 8)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let function = ComputeFunction::decode_body(r)?;
            let np = r.take_len_elems(8)?;
            let mut positions = Vec::with_capacity(np);
            for _ in 0..np {
                positions.push(r.take_u64()?);
            }
            items.push(RequestItem {
                function,
                positions,
            });
        }
        Ok(ComputationRequest::new(items))
    }
}

impl WireMessage for Commitment {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u64(self.results.len() as u64);
        for y in &self.results {
            w.put_u128(*y);
        }
        put_node(w, &self.root);
        put_sig(w, &self.root_sig);
        w.put_str(&self.server_identity);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.take_len_elems(16)?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            results.push(r.take_u128()?);
        }
        let root = take_node(r)?;
        let root_sig = take_sig(r)?;
        let server_identity = r.take_str()?;
        Ok(Commitment {
            results,
            root,
            root_sig,
            server_identity,
        })
    }
}

impl WireMessage for AuditChallenge {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u128(self.nonce);
        w.put_u64(self.indices.len() as u64);
        for i in &self.indices {
            w.put_u64(*i as u64);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nonce = r.take_u128()?;
        let n = r.take_len_elems(8)?;
        let mut indices = Vec::with_capacity(n);
        for _ in 0..n {
            indices.push(r.take_u64()? as usize);
        }
        Ok(AuditChallenge { indices, nonce })
    }
}

impl WireMessage for MerklePath {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u64(self.leaf_count() as u64);
        w.put_u64(self.siblings().len() as u64);
        for (node, is_left) in self.siblings() {
            put_node(w, node);
            w.put_u8(u8::from(*is_left));
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let leaf_count = r.take_len()?;
        // Node (32) + side byte (1) per sibling.
        let n = r.take_len_elems(32 + 1)?;
        let mut siblings = Vec::with_capacity(n);
        for _ in 0..n {
            let node = take_node(r)?;
            let side = match r.take_u8()? {
                0 => false,
                1 => true,
                t => return Err(WireError::BadTag(t)),
            };
            siblings.push((node, side));
        }
        Ok(MerklePath::from_parts(siblings, leaf_count))
    }
}

impl WireMessage for AuditResponse {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u128(self.nonce);
        w.put_u64(self.items.len() as u64);
        for item in &self.items {
            w.put_u64(item.item_index as u64);
            w.put_u64(item.inputs.len() as u64);
            for b in &item.inputs {
                b.encode_body(w);
            }
            w.put_u128(item.claimed_y);
            item.path.encode_body(w);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nonce = r.take_u128()?;
        // index (8) + inputs len (8) + claimed_y (16) + path header (16).
        let n = r.take_len_elems(8 + 8 + 16 + 16)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let item_index = r.take_u64()? as usize;
            // Minimal signed block: index (8) + data len (8) + empty
            // designation list (8).
            let nb = r.take_len_elems(8 + 8 + 8)?;
            let mut inputs = Vec::with_capacity(nb);
            for _ in 0..nb {
                inputs.push(SignedBlock::decode_body(r)?);
            }
            let claimed_y = r.take_u128()?;
            let path = MerklePath::decode_body(r)?;
            items.push(AuditItemResponse {
                item_index,
                inputs,
                claimed_y,
                path,
            });
        }
        Ok(AuditResponse { nonce, items })
    }
}

impl WireMessage for crate::computation::CompactAuditResponse {
    fn encode_body(&self, w: &mut Writer) {
        w.put_u128(self.nonce);
        w.put_u64(self.items.len() as u64);
        for item in &self.items {
            w.put_u64(item.item_index as u64);
            w.put_u64(item.inputs.len() as u64);
            for b in &item.inputs {
                b.encode_body(w);
            }
            w.put_u128(item.claimed_y);
        }
        // Multi-proof: leaf count + node list.
        w.put_u64(self.proof.leaf_count() as u64);
        w.put_u64(self.proof.nodes().len() as u64);
        for node in self.proof.nodes() {
            put_node(w, node);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nonce = r.take_u128()?;
        // index (8) + inputs len (8) + claimed_y (16) per item.
        let n = r.take_len_elems(8 + 8 + 16)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let item_index = r.take_u64()? as usize;
            let nb = r.take_len_elems(8 + 8 + 8)?;
            let mut inputs = Vec::with_capacity(nb);
            for _ in 0..nb {
                inputs.push(SignedBlock::decode_body(r)?);
            }
            let claimed_y = r.take_u128()?;
            items.push(crate::computation::CompactAuditItem {
                item_index,
                inputs,
                claimed_y,
            });
        }
        let leaf_count = r.take_len()?;
        let nn = r.take_len_elems(32)?;
        let mut nodes = Vec::with_capacity(nn);
        for _ in 0..nn {
            nodes.push(take_node(r)?);
        }
        Ok(crate::computation::CompactAuditResponse {
            nonce,
            items,
            proof: seccloud_merkle::MultiProof::from_parts(nodes, leaf_count),
        })
    }
}

impl WireMessage for Warrant {
    fn encode_body(&self, w: &mut Writer) {
        w.put_str(self.delegator());
        w.put_str(self.delegatee());
        w.put_u64(self.expires_at());
        w.put_fixed(self.request_digest());
        put_designations(w, self.designations().collect());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let delegator = r.take_str()?;
        let delegatee = r.take_str()?;
        let expires_at = r.take_u64()?;
        let digest: [u8; 32] = r.take_array()?;
        let designations = take_designations(r)?;
        Ok(Warrant::from_parts(
            delegator,
            delegatee,
            expires_at,
            digest,
            designations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::CommitmentSession;
    use crate::sio::Sio;

    fn world() -> (
        Sio,
        crate::sio::CloudUser,
        crate::sio::VerifierCredential,
        crate::sio::VerifierCredential,
        Vec<SignedBlock>,
        ComputationRequest,
    ) {
        let sio = Sio::new(b"wire-tests");
        let user = sio.register("alice");
        let cs = sio.register_verifier("cs");
        let da = sio.register_verifier("da");
        let blocks: Vec<DataBlock> = (0..6u64)
            .map(|i| DataBlock::from_values(i, &[i, i + 1]))
            .collect();
        let stored = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
        let request = ComputationRequest::new(vec![
            RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![0, 1],
            },
            RequestItem {
                function: ComputeFunction::WeightedSum(vec![3, 1]),
                positions: vec![2, 3],
            },
            RequestItem {
                function: ComputeFunction::Polynomial(vec![1, 0, 2]),
                positions: vec![4, 5],
            },
        ]);
        (sio, user, cs, da, stored, request)
    }

    #[test]
    fn data_block_round_trip() {
        let b = DataBlock::new(42, vec![1, 2, 3, 255]);
        assert_eq!(DataBlock::from_wire(&b.to_wire()).unwrap(), b);
        let empty = DataBlock::new(0, Vec::new());
        assert_eq!(DataBlock::from_wire(&empty.to_wire()).unwrap(), empty);
    }

    #[test]
    fn signed_block_round_trip_preserves_verifiability() {
        let (_, user, cs, da, stored, _) = world();
        for block in &stored {
            let decoded = SignedBlock::from_wire(&block.to_wire()).unwrap();
            assert_eq!(decoded.block(), block.block());
            assert!(decoded.verify(cs.key(), user.public()));
            assert!(decoded.verify(da.key(), user.public()));
        }
    }

    #[test]
    fn request_round_trip_preserves_digest() {
        let (_, _, _, _, _, request) = world();
        let decoded = ComputationRequest::from_wire(&request.to_wire()).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(decoded.digest(), request.digest());
    }

    #[test]
    fn every_compute_function_round_trips() {
        for f in [
            ComputeFunction::Sum,
            ComputeFunction::Average,
            ComputeFunction::Max,
            ComputeFunction::Min,
            ComputeFunction::Count,
            ComputeFunction::WeightedSum(vec![]),
            ComputeFunction::WeightedSum(vec![1, u64::MAX]),
            ComputeFunction::Polynomial(vec![0, 1, 2, 3]),
            ComputeFunction::SumSquaredDeviation,
        ] {
            assert_eq!(ComputeFunction::from_wire(&f.to_wire()).unwrap(), f);
        }
    }

    #[test]
    fn full_audit_over_the_wire() {
        // Serialize commitment + challenge + response, decode on the "DA
        // side", and verify — the complete network round trip.
        let (_, user, cs, da, stored, request) = world();
        let (commitment, session) = CommitmentSession::commit(
            &request,
            |p| stored.get(p as usize),
            cs.signer(),
            da.public(),
        )
        .unwrap();
        let challenge = AuditChallenge::from_indices(vec![0, 2]);
        let response = session.respond(&challenge).unwrap();

        let commitment2 = Commitment::from_wire(&commitment.to_wire()).unwrap();
        let challenge2 = AuditChallenge::from_wire(&challenge.to_wire()).unwrap();
        let response2 = AuditResponse::from_wire(&response.to_wire()).unwrap();

        let outcome = crate::computation::verify_response(
            da.key(),
            user.public(),
            cs.signer_public(),
            &request,
            &challenge2,
            &commitment2,
            &response2,
        );
        assert!(outcome.is_valid(), "{outcome:?}");
    }

    #[test]
    fn warrant_round_trip_preserves_verifiability() {
        let (_, user, cs, _, _, request) = world();
        let w = Warrant::issue(&user, "da", 500, request.digest(), &[cs.public()]);
        let decoded = Warrant::from_wire(&w.to_wire()).unwrap();
        assert!(decoded
            .verify(cs.key(), user.public(), "da", &request.digest(), 10)
            .is_ok());
        // Tampering with any serialized byte breaks either decoding or the
        // signature.
        let bytes = w.to_wire();
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        match Warrant::from_wire(&bad) {
            Err(_) => {}
            Ok(tampered) => {
                assert!(tampered
                    .verify(cs.key(), user.public(), "da", &request.digest(), 10)
                    .is_err());
            }
        }
    }

    #[test]
    fn decoder_rejects_malformed_input() {
        let (_, _, _, _, stored, _) = world();
        let good = stored[0].to_wire();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..good.len().min(200) {
            assert!(SignedBlock::from_wire(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage rejected.
        let mut extended = good.clone();
        extended.push(0);
        assert_eq!(
            SignedBlock::from_wire(&extended),
            Err(WireError::TrailingBytes)
        );
        // Wrong version rejected.
        let mut wrong_version = good.clone();
        wrong_version[0] = 99;
        assert_eq!(
            SignedBlock::from_wire(&wrong_version),
            Err(WireError::BadTag(99))
        );
        // Length bomb rejected.
        let mut w = Writer::new();
        w.put_u64(7); // index
        w.put_u64(u64::MAX); // absurd data length
        assert_eq!(
            DataBlock::from_wire(&w.finish()),
            Err(WireError::LengthOverflow)
        );
    }

    #[test]
    fn corrupted_point_bytes_rejected_as_bad_element() {
        let (_, _, _, _, stored, _) = world();
        let mut bytes = stored[0].to_wire();
        // The first compressed G1 point begins after version(1) + index(8) +
        // data-len(8) + data(16) + designation-count(8) + id-len(8) + "cs"(2).
        let point_start = 1 + 8 + 8 + 16 + 8 + 8 + 2;
        // Set an x-coordinate ≥ p (all 0x3f.. is fine since flags masked).
        for b in bytes[point_start..point_start + 32].iter_mut() {
            *b = 0xff;
        }
        let result = SignedBlock::from_wire(&bytes);
        assert!(
            matches!(
                result,
                Err(WireError::BadElement) | Err(WireError::Truncated)
            ),
            "{result:?}"
        );
    }

    #[test]
    fn compact_response_round_trip_and_size_win() {
        use crate::computation::{verify_response_compact, CompactAuditResponse};
        let (_, user, cs, da, stored, request) = world();
        let (commitment, session) = CommitmentSession::commit(
            &request,
            |p| stored.get(p as usize),
            cs.signer(),
            da.public(),
        )
        .unwrap();
        let challenge = AuditChallenge::from_indices(vec![0, 1, 2]);
        let compact = session.respond_compact(&challenge).unwrap();
        let decoded = CompactAuditResponse::from_wire(&compact.to_wire()).unwrap();
        let outcome = verify_response_compact(
            da.key(),
            user.public(),
            cs.signer_public(),
            &request,
            &challenge,
            &commitment,
            &decoded,
        );
        assert!(outcome.is_valid(), "{outcome:?}");
        // Adjacent samples: the compact encoding is smaller than the full one.
        let full = session.respond(&challenge).unwrap();
        assert!(
            compact.to_wire().len() < full.to_wire().len(),
            "compact {} vs full {}",
            compact.to_wire().len(),
            full.to_wire().len()
        );
    }

    #[test]
    fn merkle_path_round_trip() {
        use seccloud_merkle::MerkleTree;
        let data: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        for i in [0usize, 4, 8] {
            let path = tree.prove(i).unwrap();
            let decoded = MerklePath::from_wire(&path.to_wire()).unwrap();
            assert!(decoded.verify(&tree.root(), &data[i], i));
        }
    }

    mod fuzz {
        use super::super::*;
        use seccloud_hash::HmacDrbg;

        // Decoding arbitrary bytes must never panic, only error.
        #[test]
        fn arbitrary_bytes_never_panic() {
            let mut d = HmacDrbg::new(b"wire-fuzz");
            for _ in 0..256 {
                let len = d.next_below(512) as usize;
                let bytes = d.next_bytes(len);
                let _ = DataBlock::from_wire(&bytes);
                let _ = ComputationRequest::from_wire(&bytes);
                let _ = AuditChallenge::from_wire(&bytes);
                let _ = MerklePath::from_wire(&bytes);
                let _ = ComputeFunction::from_wire(&bytes);
            }
        }

        // Valid-prefix corruption of a real message must never panic.
        #[test]
        fn bit_flipped_messages_never_panic() {
            let mut d = HmacDrbg::new(b"wire-flip");
            for _ in 0..256 {
                let pos = d.next_below(200) as usize;
                let bit = d.next_below(8) as u8;
                let block = DataBlock::new(3, vec![1, 2, 3, 4, 5, 6, 7, 8]);
                let mut bytes = block.to_wire();
                if pos < bytes.len() {
                    bytes[pos] ^= 1 << bit;
                }
                match DataBlock::from_wire(&bytes) {
                    Ok(_) | Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn io_boundary_variants_classify_correctly() {
        // The socket-layer variants join the taxonomy: deadlines, drops
        // and mid-frame cuts are channel weather (retry is sound), while a
        // declared-length bomb is a deliberate header and must not be
        // retried into a fresh allocation window.
        assert!(WireError::Timeout.is_transient());
        assert!(WireError::ConnectionLost.is_transient());
        assert!(WireError::TruncatedFrame.is_transient());
        assert!(!WireError::FrameTooLarge.is_transient());
    }

    #[test]
    fn challenge_round_trip() {
        let c = AuditChallenge::from_indices(vec![0, 5, 17, 1000]);
        assert_eq!(AuditChallenge::from_wire(&c.to_wire()).unwrap(), c);
        let empty = AuditChallenge::from_indices(vec![]);
        assert_eq!(AuditChallenge::from_wire(&empty.to_wire()).unwrap(), empty);
    }
}
