//! Quick pairing-backend speed check (full Criterion numbers live in
//! `benches/crypto_ops.rs`).
#![forbid(unsafe_code)]

fn main() {
    use seccloud_bench::{fmt_ms, measure_ms};
    use seccloud_pairing::*;
    let p = hash_to_g1(b"x").to_affine();
    let q = hash_to_g2(b"y").to_affine();
    println!(
        "ate (default): {}",
        fmt_ms(measure_ms(3, 20, || pairing(&p, &q)))
    );
    println!(
        "tate          : {}",
        fmt_ms(measure_ms(3, 20, || pairing_tate(&p, &q)))
    );
}
