//! Adversary models (paper Section III-B).

/// How a storage-cheating server mangles the data it should have kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageAttack {
    /// Semi-honest: "delete rarely access data files to reduce the storage
    /// cost" — the block is gone.
    Delete,
    /// Malicious: "arbitrarily modify the stored data" — the block's bytes
    /// are replaced with garbage.
    Corrupt,
    /// "Uses different x̂ ∉ X" — serve the block stored at another position,
    /// relabelled to the requested one.
    WrongPosition,
}

/// A cloud server's behaviour profile.
#[derive(Clone, Debug, PartialEq)]
pub enum Behavior {
    /// Follows the protocol exactly.
    Honest,
    /// Storage-cheating model: each stored block is attacked independently
    /// with probability `1 − ssc`.
    StorageCheater {
        /// Storage Secure Confidence — fraction of blocks kept intact.
        ssc: f64,
        /// The attack applied to unlucky blocks.
        attack: StorageAttack,
    },
    /// Computation-cheating model: each sub-task is skipped independently
    /// with probability `1 − csc`; a skipped task returns a uniform guess
    /// from a range of size `guess_range` (`None` ⇒ the guess never
    /// collides with the true result).
    ComputationCheater {
        /// Computing Secure Confidence — fraction of sub-tasks computed.
        csc: f64,
        /// The guessing range `R` of eq. 10.
        guess_range: Option<u64>,
    },
    /// Computes everything but leaks stored blocks and signatures to third
    /// parties (the illegal private-information-selling model); protocol
    /// behaviour is honest, the leak is modelled in [`crate::privacy`].
    PrivacyLeaker,
}

impl Behavior {
    /// Whether this behaviour follows the protocol for storage/compute.
    pub fn is_protocol_honest(&self) -> bool {
        matches!(self, Behavior::Honest | Behavior::PrivacyLeaker)
    }

    /// The storage confidence this behaviour exhibits (1.0 when honest).
    pub fn ssc(&self) -> f64 {
        match self {
            Behavior::StorageCheater { ssc, .. } => *ssc,
            _ => 1.0,
        }
    }

    /// The computing confidence this behaviour exhibits (1.0 when honest).
    pub fn csc(&self) -> f64 {
        match self {
            Behavior::ComputationCheater { csc, .. } => *csc,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_accessors() {
        assert_eq!(Behavior::Honest.ssc(), 1.0);
        assert_eq!(Behavior::Honest.csc(), 1.0);
        let sc = Behavior::StorageCheater {
            ssc: 0.3,
            attack: StorageAttack::Delete,
        };
        assert_eq!(sc.ssc(), 0.3);
        assert_eq!(sc.csc(), 1.0);
        let cc = Behavior::ComputationCheater {
            csc: 0.7,
            guess_range: Some(2),
        };
        assert_eq!(cc.csc(), 0.7);
        assert!(!cc.is_protocol_honest());
        assert!(Behavior::PrivacyLeaker.is_protocol_honest());
    }
}
