//! **Figure 4** — required sample size achieving uncheatable cloud
//! computing, `ε = 0.0001`.
//!
//! Regenerates the paper's surface: the smallest `t` with
//! `Pr[cheating successful] < ε` over the (SSC, CSC) grid, for `R = 2` and
//! `R → ∞`. Anchors quoted in the paper: `(0.5, 0.5, R=2) → 33` and
//! `(0.5, 0.5, R→∞) → 15`.
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin fig4
//! ```
#![forbid(unsafe_code)]

use seccloud_core::analysis::sampling::{required_sample_size, CheatParams};

const EPSILON: f64 = 1e-4;

fn grid(range: Option<f64>) {
    let axis: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    print!("{:>5}", "SSC\\CSC");
    for csc in &axis {
        print!("{csc:>6.1}");
    }
    println!();
    for &ssc in &axis {
        print!("{ssc:>7.1}");
        for &csc in &axis {
            let mut p = CheatParams::new(csc, ssc);
            if let Some(r) = range {
                p = p.with_range(r);
            }
            match required_sample_size(&p, EPSILON) {
                Some(t) => print!("{t:>6}"),
                None => print!("{:>6}", "-"),
            }
        }
        println!();
    }
}

fn main() {
    println!("# Figure 4 — required sampling size t for ε = {EPSILON}\n");

    println!("## R = 2 (results guessable with probability 1/2)\n");
    grid(Some(2.0));

    println!("\n## R → ∞ (results unguessable)\n");
    grid(None);

    println!("\n## Paper anchors\n");
    let a1 = required_sample_size(&CheatParams::new(0.5, 0.5).with_range(2.0), EPSILON);
    let a2 = required_sample_size(&CheatParams::new(0.5, 0.5), EPSILON);
    println!("CSC = SSC = 0.5, R = 2   → t = {:?}   (paper: 33)", a1);
    println!("CSC = SSC = 0.5, R → ∞   → t = {:?}   (paper: 15)", a2);
    assert_eq!(a1, Some(33), "paper anchor must reproduce");
    assert_eq!(a2, Some(15), "paper anchor must reproduce");
    println!("\nBoth anchors reproduce exactly.");
}
