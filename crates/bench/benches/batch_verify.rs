//! Criterion benches behind Fig. 5 / Table II's "ours" rows: batch vs
//! individual designated verification across batch sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seccloud_ibs::{designate, sign, BatchItem, BatchVerifier, MasterKey};

fn make_items(n: usize) -> (seccloud_ibs::VerifierKey, Vec<BatchItem>) {
    let sio = MasterKey::from_seed(b"bench-batch");
    let server = sio.extract_verifier("cs");
    let items = (0..n)
        .map(|i| {
            let user = sio.extract_user(&format!("user-{}", i % 4));
            let msg = format!("block-{i}").into_bytes();
            let sig = designate(&sign(&user, &msg, b"n"), server.public());
            BatchItem {
                signer: user.public().clone(),
                message: msg,
                signature: sig,
            }
        })
        .collect();
    (server, items)
}

fn bench_batch_vs_individual(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_verify");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &n in &[1usize, 4, 16, 32] {
        let (server, items) = make_items(n);
        group.bench_with_input(BenchmarkId::new("individual", n), &n, |b, _| {
            b.iter(|| {
                assert!(seccloud_ibs::verify_individually(&items, &server).is_none());
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| {
                let mut batch = BatchVerifier::new();
                for item in &items {
                    batch.push_item(item);
                }
                assert!(batch.verify(&server));
            })
        });
        // Ablation: aggregation (fold) cost alone, without the pairing.
        group.bench_with_input(BenchmarkId::new("fold_only", n), &n, |b, _| {
            b.iter(|| {
                let mut batch = BatchVerifier::new();
                for item in &items {
                    batch.push_item(item);
                }
                batch.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_individual);
criterion_main!(benches);
