//! Bad fixture for the `index` rule: bare indexing in a decode path.
//! Never compiled — lexed by the analyzer self-tests only.

pub fn take_u8(data: &[u8], pos: usize) -> u8 {
    data[pos]
}

pub fn header(data: &[u8]) -> &[u8] {
    &data[..4]
}
