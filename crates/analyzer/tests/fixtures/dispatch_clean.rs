//! Clean fixture for the `dispatch` rule: every wire-error variant named
//! explicitly, plus a guarded wildcard (allowed — guards are logic, not
//! variant suppression).
//! Never compiled — lexed by the analyzer self-tests only.

pub enum WireError {
    Truncated,
    BadMagic,
    BadLength,
}

pub fn describe(e: &WireError) -> &'static str {
    match e {
        WireError::Truncated => "truncated",
        WireError::BadMagic => "bad magic",
        WireError::BadLength => "bad length",
    }
}

pub fn code(e: &WireError, strict: bool) -> u8 {
    match e {
        WireError::Truncated => 1,
        _ if strict => 2,
        WireError::BadMagic => 3,
        WireError::BadLength => 4,
    }
}
