//! Cross-user, cross-shard batch verification fused into one Miller loop,
//! with small-exponent randomization.

use std::sync::Arc;

use seccloud_hash::{entropy_seed, HmacDrbg};
use seccloud_ibs::BatchVerifier;
use seccloud_pairing::{multi_miller_loop, weighted_fold, G2Prepared, Gt, G1};

/// One shard's retained verification terms in the sense of paper eq. (8):
/// the pairs `(Uᵢⱼ + hᵢⱼ·Q_IDᵢ, Σᵢⱼ)` for every audited signature (or
/// pre-merged aggregate) routed to the shard, plus the signature count.
#[derive(Clone, Debug, Default)]
struct Lane {
    terms: Vec<(G1, Gt)>,
    folded: usize,
}

/// Accumulates per-shard verification terms over an epoch and checks them
/// all with a **single** [`multi_miller_loop`] call, weighted by fresh
/// verifier-drawn randomness.
///
/// Each shard verifies against its own prepared key `sk_{V_s}` (shards
/// have distinct designated verifiers). At verification time every
/// retained term gets an independent nonzero 64-bit weight `r`, drawn
/// *after* the batch is fixed, and the per-shard checks — paper eq. (9),
/// one per shard — fuse into
///
/// ```text
/// Π_s ê(Σᵢ rₛᵢ·uₛᵢ, sk_{V_s})  =  Π_s Πᵢ Σₛᵢ^{rₛᵢ}
/// ```
///
/// evaluated as one shared Miller loop and one final exponentiation,
/// regardless of how many users, signatures or shards contributed. The
/// marginal cost of an extra audited signature is a `G1`/`GT` slot at
/// fold time plus a few group operations inside the shared-window
/// [`weighted_fold`] at verify time; the marginal cost of an extra
/// *shard* is one Miller-loop argument.
///
/// Soundness is the standard small-exponent argument: any set of
/// corruptions — including coordinated ones whose error terms multiply
/// to one, within a lane or across lanes — survives the weighted product
/// only if the adversary predicts the weights, i.e. with probability
/// ≤ 2⁻⁶⁴ per verification attempt. Terms folded through
/// [`Self::fold_aggregate`] are weighted per *aggregate* (the caller
/// pre-merged them), so their internal consistency is vouched for by
/// whoever produced the aggregate; [`Self::fold`] retains per-signature
/// terms and needs no such trust.
#[derive(Clone, Debug)]
pub struct EpochVerifier {
    epoch: u64,
    lanes: Vec<Lane>,
}

impl EpochVerifier {
    /// An empty accumulator for `shards` shards (clamped to ≥ 1) in
    /// `epoch`.
    pub fn new(shards: u32, epoch: u64) -> Self {
        Self {
            epoch,
            lanes: vec![Lane::default(); shards.max(1) as usize],
        }
    }

    /// The epoch this accumulator covers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The number of shard lanes.
    pub fn shard_count(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// Total signatures folded across all shards.
    pub fn folded(&self) -> usize {
        self.lanes.iter().map(|l| l.folded).sum()
    }

    /// Signatures folded into one shard's lane (0 if out of range).
    pub fn shard_folded(&self, shard: u32) -> usize {
        self.lanes.get(shard as usize).map_or(0, |l| l.folded)
    }

    /// Folds one signature's aggregate terms — `u = U + h·Q_ID` and
    /// `sigma = Σ` — into `shard`'s lane, counting it as `count`
    /// signatures (batched pushes fold pre-merged terms, which share one
    /// verification weight — see the type docs). Out-of-range shards are
    /// ignored and reported as `false`.
    pub fn fold_aggregate(&mut self, shard: u32, u: &G1, sigma: &Gt, count: usize) -> bool {
        let Some(lane) = self.lanes.get_mut(shard as usize) else {
            return false;
        };
        lane.terms.push((*u, *sigma));
        lane.folded += count;
        true
    }

    /// Folds a whole per-user [`BatchVerifier`] into `shard`'s lane,
    /// retaining each signature's term so every signature gets its own
    /// verification weight. An out-of-range shard is rejected (`false`)
    /// even when the batch is empty — agreeing with
    /// [`Self::fold_aggregate`] so callers can use the result to validate
    /// shard routing; an empty batch for a *valid* shard folds nothing
    /// and returns `true`.
    pub fn fold(&mut self, shard: u32, batch: &BatchVerifier) -> bool {
        let Some(lane) = self.lanes.get_mut(shard as usize) else {
            return false;
        };
        lane.terms.extend_from_slice(batch.terms());
        lane.folded += batch.len();
        true
    }

    /// Checks every folded term in one fused pairing evaluation, under
    /// fresh random weights.
    ///
    /// `keys[s]` is shard `s`'s prepared verifier key `sk_{V_s}`; shards
    /// that folded nothing are skipped, and a shard that folded
    /// signatures but has no key fails the whole epoch (a missing key
    /// must never silently skip real audits). An accumulator with no
    /// folded signatures at all verifies vacuously.
    pub fn verify(&self, keys: &[Arc<G2Prepared>]) -> bool {
        let mut drbg = HmacDrbg::new(&entropy_seed());
        let mut points = Vec::with_capacity(self.lanes.len());
        let mut expected = Gt::one();
        for (shard, lane) in self.lanes.iter().enumerate() {
            if lane.terms.is_empty() {
                continue;
            }
            let Some(key) = keys.get(shard) else {
                return false;
            };
            let weights: Vec<u64> = lane
                .terms
                .iter()
                .map(|_| {
                    let r = drbg.next_u64();
                    if r == 0 {
                        1
                    } else {
                        r
                    }
                })
                .collect();
            let (u, sigma) = weighted_fold(&lane.terms, &weights);
            points.push((u.to_affine(), Arc::clone(key)));
            expected = expected.mul(&sigma);
        }
        if points.is_empty() {
            return true;
        }
        let pairs: Vec<(&seccloud_pairing::G1Affine, &G2Prepared)> =
            points.iter().map(|(p, k)| (p, k.as_ref())).collect();
        multi_miller_loop(&pairs) == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_ibs::{designate, sign, MasterKey};
    use seccloud_pairing::pairing;

    /// Builds `users` users spread over `shards` shards, each signing
    /// `per_user` messages to its shard's own verifier, folded both into
    /// an `EpochVerifier` and returned per-shard for cross-checking.
    fn folded_epoch(
        users: usize,
        per_user: usize,
        shards: u32,
    ) -> (EpochVerifier, Vec<Arc<G2Prepared>>) {
        let sio = MasterKey::from_seed(b"registry-batch-tests");
        let verifiers: Vec<_> = (0..shards)
            .map(|s| sio.extract_verifier(&format!("da/shard-{s}")))
            .collect();
        let keys: Vec<Arc<G2Prepared>> = verifiers.iter().map(|v| v.sk_prepared()).collect();
        let mut epoch = EpochVerifier::new(shards, 1);
        for i in 0..users {
            let id = format!("tenant-{i}");
            let user = sio.extract_user(&id);
            let shard = crate::shard_of(&id, 1, shards);
            let verifier = &verifiers[shard as usize];
            let mut batch = BatchVerifier::new();
            for j in 0..per_user {
                let msg = format!("block {i}/{j}").into_bytes();
                let nonce = format!("nonce {i}/{j}").into_bytes();
                let designated = designate(&sign(&user, &msg, &nonce), verifier.public());
                batch.push(user.public().clone(), msg, designated);
            }
            assert!(epoch.fold(shard, &batch));
        }
        (epoch, keys)
    }

    /// A nontrivial `GT` error term for corruption tests.
    fn error_term() -> Gt {
        pairing(
            &seccloud_pairing::hash_to_g1(b"err-p").to_affine(),
            &seccloud_pairing::hash_to_g2(b"err-q").to_affine(),
        )
    }

    #[test]
    fn fused_verification_accepts_honest_aggregates() {
        let (epoch, keys) = folded_epoch(6, 2, 3);
        assert_eq!(epoch.folded(), 12);
        assert!(epoch.verify(&keys));
    }

    #[test]
    fn one_bad_sigma_fails_the_fused_check() {
        let (mut epoch, keys) = folded_epoch(4, 1, 2);
        // Fold a forged sigma into shard 0: nothing knows the discrete
        // log relation, so the product equation must break.
        epoch.fold_aggregate(0, &G1::generator(), &Gt::one().invert(), 1);
        assert!(!epoch.verify(&keys));
    }

    #[test]
    fn coordinated_corruptions_in_one_lane_fail() {
        // The cancellation attack on the unweighted product: two extra
        // items in the *same* lane whose sigma errors are e and e⁻¹. Their
        // unweighted product contributes exactly the two honest sigmas, so
        // a plain fold would accept; the per-item weights must not.
        let (mut epoch, keys) = folded_epoch(4, 1, 2);
        assert!(epoch.verify(&keys));
        let e = error_term();
        // Honest-shaped terms with opposite error factors. (u = identity
        // keeps the pairing side unchanged; the sigma errors alone cancel
        // multiplicatively.)
        assert!(epoch.fold_aggregate(0, &G1::identity(), &e, 1));
        assert!(epoch.fold_aggregate(0, &G1::identity(), &e.invert(), 1));
        assert!(!epoch.verify(&keys), "same-lane cancellation must fail");
    }

    #[test]
    fn coordinated_corruptions_across_lanes_fail() {
        // Same attack split across two shards: lane 0 carries error e,
        // lane 1 carries e⁻¹. The cross-lane product of expectations would
        // cancel without per-item randomization.
        let (mut epoch, keys) = folded_epoch(4, 1, 2);
        let e = error_term();
        assert!(epoch.fold_aggregate(0, &G1::identity(), &e, 1));
        assert!(epoch.fold_aggregate(1, &G1::identity(), &e.invert(), 1));
        assert!(!epoch.verify(&keys), "cross-lane cancellation must fail");
    }

    #[test]
    fn empty_accumulator_is_vacuously_valid() {
        let epoch = EpochVerifier::new(4, 0);
        assert_eq!(epoch.folded(), 0);
        assert!(epoch.verify(&[]));
    }

    #[test]
    fn missing_key_for_a_live_shard_fails_closed() {
        let (epoch, keys) = folded_epoch(6, 1, 3);
        let truncated = &keys[..1];
        assert!(!epoch.verify(truncated));
    }

    #[test]
    fn fused_check_matches_per_shard_checks() {
        let (epoch, keys) = folded_epoch(5, 2, 4);
        assert!(epoch.verify(&keys));
        // Swapping two shards' keys must fail even though the *set* of
        // keys is unchanged — the fusion binds each lane to its shard.
        let mut swapped = keys.clone();
        swapped.swap(0, 1);
        if epoch.shard_folded(0) > 0 || epoch.shard_folded(1) > 0 {
            assert!(!epoch.verify(&swapped));
        }
    }

    #[test]
    fn out_of_range_shard_is_rejected() {
        let mut epoch = EpochVerifier::new(2, 0);
        assert!(!epoch.fold_aggregate(7, &G1::generator(), &Gt::one(), 1));
        // `fold` agrees with `fold_aggregate` even for an empty batch:
        // routing to a nonexistent shard is an error regardless of
        // payload.
        assert!(!epoch.fold(7, &BatchVerifier::new()));
        assert!(epoch.fold(1, &BatchVerifier::new()));
        assert_eq!(epoch.folded(), 0);
    }
}
