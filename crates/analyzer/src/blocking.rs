//! The blocking-operation policy matrix and the `deadline` rule.
//!
//! Two concerns share this module because they share one question — *can
//! this expression stall a thread?*
//!
//! 1. **Classification** (consumed by [`crate::locks`]): every expression
//!    is assigned a bitmask of blocking kinds — socket I/O, synchronous
//!    channel operations, thread joins/scopes, sleeps, and the heavy
//!    pairing entry points. The `blocking` rule forbids any of them while
//!    a `Mutex`/`RwLock` guard is held: a blocked guard-holder stalls
//!    every other thread contending for that lock, which on the audit
//!    path turns one slow peer into a whole-server convoy.
//! 2. **The `deadline` rule**: every `std::net` read/write must be
//!    dominated by a `set_read_timeout`/`set_write_timeout` on the same
//!    stream. [`NetSummary`] bitmasks propagate the obligation through
//!    helpers (`read_frame<R: Read>` marks its stream parameter), so a
//!    raw `TcpStream` flowing into a framing helper without a deadline is
//!    caught at the call site — no future code path may block forever on
//!    a peer, which is the transport-level totality the resilience layer
//!    (DESIGN.md §10) assumes of the socket runtime underneath it.

use std::collections::HashMap;

use crate::ast::Expr;
use crate::callgraph::{Typer, Workspace};
use crate::rules::{FileCtx, Finding, Report, RULE_DEADLINE};

/// Blocking kind: socket connect/read/write on a `TcpStream`.
pub(crate) const B_SOCKET: u8 = 1;
/// Blocking kind: synchronous channel `send`/`recv`/`recv_timeout`.
pub(crate) const B_CHANNEL: u8 = 2;
/// Blocking kind: `thread::join` / `thread::scope` (waits on threads).
pub(crate) const B_JOIN: u8 = 4;
/// Blocking kind: `thread::sleep`.
pub(crate) const B_SLEEP: u8 = 8;
/// Blocking kind: a heavy pairing entry point (milliseconds of CPU).
pub(crate) const B_PAIRING: u8 = 16;

/// Function names that *are* the heavy pairing entry points: holding a
/// lock across one serializes every contending audit thread behind
/// milliseconds of field arithmetic.
const PAIRING_ENTRY_POINTS: [&str; 4] = [
    "miller_loop",
    "multi_miller_loop",
    "final_exponentiation",
    "weighted_fold",
];

/// Channel methods that block the caller (`try_send`/`try_recv` are the
/// sanctioned non-blocking alternatives and are deliberately absent).
const CHANNEL_BLOCKING: [&str; 3] = ["send", "recv", "recv_timeout"];

/// Read-family I/O methods (std `Read` surface used in the workspace).
const READ_IO: [&str; 3] = ["read", "read_exact", "read_to_end"];

/// Write-family I/O methods (std `Write` surface used in the workspace).
const WRITE_IO: [&str; 3] = ["write", "write_all", "flush"];

/// Is `name` one of the heavy pairing entry points?
pub(crate) fn is_pairing_entry(name: &str) -> bool {
    PAIRING_ENTRY_POINTS.contains(&name)
}

/// Renders a blocking-kind mask for finding messages.
pub(crate) fn kind_names(mask: u8) -> String {
    let mut parts = Vec::new();
    for (bit, name) in [
        (B_SOCKET, "socket I/O"),
        (B_CHANNEL, "blocking channel op"),
        (B_JOIN, "thread join/scope"),
        (B_SLEEP, "sleep"),
        (B_PAIRING, "pairing computation"),
    ] {
        if mask & bit != 0 {
            parts.push(name);
        }
    }
    parts.join(" + ")
}

/// Classifies an *unresolved* method call (no workspace callee) by name
/// and receiver type. Resolved workspace calls are classified through
/// their callee summaries instead, so a workspace method that merely
/// shares a std name (`Inner::insert`, chaos `send` helpers) is judged by
/// what it does, not what it is called.
pub(crate) fn classify_unresolved_method(name: &str, recv_raw: Option<&str>) -> u8 {
    if CHANNEL_BLOCKING.contains(&name) {
        return B_CHANNEL;
    }
    if name == "join" {
        return B_JOIN;
    }
    let on_stream = recv_raw.is_some_and(|t| t.contains("TcpStream"));
    if on_stream && (READ_IO.contains(&name) || WRITE_IO.contains(&name)) {
        return B_SOCKET;
    }
    0
}

/// Classifies an *unresolved* free/path call by its path segments.
pub(crate) fn classify_unresolved_call(segs: &[String]) -> u8 {
    let Some(name) = segs.last() else { return 0 };
    let qualifier = segs.len().checked_sub(2).and_then(|i| segs.get(i));
    match name.as_str() {
        "sleep" => B_SLEEP,
        "scope" if qualifier.is_some_and(|q| q == "thread") => B_JOIN,
        "connect" | "connect_timeout" if qualifier.is_some_and(|q| q == "TcpStream") => B_SOCKET,
        n if is_pairing_entry(n) => B_PAIRING,
        _ => 0,
    }
}

// --- the deadline rule ----------------------------------------------------

/// Files whose `std::net` I/O the workspace-mode rule reports on (the
/// socket runtime is the only place `std::net` is allowed to appear; the
/// summaries are still computed workspace-wide so a future caller
/// elsewhere inherits the obligation).
const DEADLINE_SCOPE: [&str; 1] = ["crates/net/src/"];

/// Per-fn deadline summary: parameter bitmasks (bit *i* = param *i*).
#[derive(Clone, Copy, Default, PartialEq)]
pub(crate) struct NetSummary {
    /// Params that receive read-family I/O not dominated by a read
    /// deadline inside this fn (directly or through a callee).
    pub reads: u32,
    /// Same for write-family I/O vs write deadlines.
    pub writes: u32,
    /// Params this fn applies `set_read_timeout` to.
    pub sets_read: u32,
    /// Params this fn applies `set_write_timeout` to.
    pub sets_write: u32,
}

/// Per-stream tracking state during one fn walk.
#[derive(Clone, Copy)]
struct StreamState {
    /// Parameter index, if the stream is a parameter.
    param: Option<u32>,
    /// Known to be a real `TcpStream` (declared or from `connect`).
    is_tcp: bool,
    read_deadlined: bool,
    write_deadlined: bool,
}

/// Peels `Group` wrappers (`&x`, `(x)`, `x?`) down to a single-binding
/// path name.
fn root_binding(e: &Expr) -> Option<&str> {
    match e {
        Expr::Group { children, .. } => match children.as_slice() {
            [one] => root_binding(one),
            _ => None,
        },
        Expr::Path { segs, .. } => match segs.as_slice() {
            [one] => Some(one.as_str()),
            _ => None,
        },
        _ => None,
    }
}

/// Does the init expression produce a fresh `TcpStream` (`connect` /
/// `connect_timeout`)? Peels `Group` wrappers from `?` / `match` plumbing.
fn is_connect_init(e: &Expr) -> bool {
    match e {
        Expr::Group { children, .. } => children.iter().any(is_connect_init),
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let name = segs.last().map_or("", String::as_str);
                let qual = segs
                    .len()
                    .checked_sub(2)
                    .and_then(|i| segs.get(i))
                    .map_or("", String::as_str);
                qual == "TcpStream" && (name == "connect" || name == "connect_timeout")
            } else {
                false
            }
        }
        Expr::MethodCall { recv, name, .. } => {
            // `TcpStream::connect(..)?.take(..)`-style chains still yield
            // the stream for carrier methods; be permissive on the chain.
            matches!(name.as_str(), "expect" | "unwrap") && is_connect_init(recv)
        }
        Expr::Match { scrutinee, .. } => is_connect_init(scrutinee),
        _ => false,
    }
}

/// A disabling `set_*_timeout(None)` must not count as a deadline.
fn timeout_arg_is_some(args: &[Expr]) -> bool {
    fn mentions_none(e: &Expr) -> bool {
        let mut hit = false;
        e.walk(&mut |x| {
            if let Expr::Path { segs, .. } = x {
                if segs.last().is_some_and(|s| s == "None") {
                    hit = true;
                }
            }
        });
        hit
    }
    args.first().is_some_and(|a| !mentions_none(a))
}

/// One fn's deadline walk: returns the summary; with `sink` set, also
/// reports un-deadlined I/O on streams this fn owns or can see.
#[allow(clippy::too_many_arguments)]
fn analyze_fn(
    ws: &Workspace,
    typer: &Typer<'_>,
    fn_idx: usize,
    summaries: &[NetSummary],
    mut sink: Option<(&mut Vec<Finding>, &FileCtx)>,
) -> NetSummary {
    let mut out = NetSummary::default();
    let Some(f) = ws.fns.get(fn_idx) else {
        return out;
    };
    let Some(body) = &f.body else {
        return out;
    };
    let mut streams: HashMap<String, StreamState> = HashMap::new();
    for (i, p) in f.params.iter().enumerate() {
        let is_tcp = p.ty.contains("TcpStream");
        // Generic `R: Read`-style params are tracked too: their I/O marks
        // summary bits that only ever fire when a real TcpStream flows in.
        let generic_io = p.ty.len() <= "&mut R".len() && !p.ty.contains('[');
        if is_tcp || generic_io {
            streams.insert(
                p.name.clone(),
                StreamState {
                    param: u32::try_from(i).ok(),
                    is_tcp,
                    read_deadlined: false,
                    write_deadlined: false,
                },
            );
        }
    }
    let path = ws.path_of(fn_idx);
    let report = |line: u32, msg: String, sink: &mut Option<(&mut Vec<Finding>, &FileCtx)>| {
        if let Some((findings, ctx)) = sink {
            if ctx.rule_allowed(RULE_DEADLINE, line) || ctx.test_lines.contains(&line) {
                return;
            }
            findings.push(Finding {
                rule: RULE_DEADLINE,
                file: path.to_string(),
                line,
                message: msg,
            });
        }
    };
    // Pre-order walk visits statements in source order, which is the
    // domination approximation: a deadline set on an earlier line covers
    // I/O on later lines (branch-local deadlines optimistically persist —
    // the rule never false-positives on a configured stream).
    body.walk(&mut |e| match e {
        Expr::Let {
            bindings,
            ty,
            init: Some(init),
            ..
        } => {
            if let (Some(name), 1) = (bindings.first(), bindings.len()) {
                let declared_tcp = ty.as_deref().is_some_and(|t| t.contains("TcpStream"));
                if declared_tcp || is_connect_init(init) {
                    streams.insert(
                        name.clone(),
                        StreamState {
                            param: None,
                            is_tcp: true,
                            read_deadlined: false,
                            write_deadlined: false,
                        },
                    );
                }
            }
        }
        Expr::MethodCall {
            recv,
            name,
            args,
            line,
        } => {
            let Some(binding) = root_binding(recv) else {
                return;
            };
            match name.as_str() {
                "set_read_timeout" | "set_write_timeout" => {
                    if let Some(s) = streams.get_mut(binding) {
                        if timeout_arg_is_some(args) {
                            if name == "set_read_timeout" {
                                s.read_deadlined = true;
                                if let Some(p) = s.param {
                                    out.sets_read |= 1u32 << p.min(31);
                                }
                            } else {
                                s.write_deadlined = true;
                                if let Some(p) = s.param {
                                    out.sets_write |= 1u32 << p.min(31);
                                }
                            }
                        }
                    }
                }
                n if READ_IO.contains(&n) || WRITE_IO.contains(&n) => {
                    // Exclude RwLock::read/write: only stream-shaped
                    // receivers are in `streams` at all, but a declared
                    // lock type never reaches here because `RwLock<_>`
                    // params/locals are not inserted.
                    let Some(s) = streams.get(binding) else {
                        return;
                    };
                    let is_read = READ_IO.contains(&n);
                    let covered = if is_read {
                        s.read_deadlined
                    } else {
                        s.write_deadlined
                    };
                    if covered {
                        return;
                    }
                    if let Some(p) = s.param {
                        let bit = 1u32 << p.min(31);
                        if is_read {
                            out.reads |= bit;
                        } else {
                            out.writes |= bit;
                        }
                    }
                    if s.is_tcp {
                        report(
                            *line,
                            format!(
                                "`{binding}.{n}()` on a TcpStream with no {} deadline — call \
                                 `set_{}_timeout` on the stream before any I/O (or annotate \
                                 `// lint: allow(deadline, reason=...)`)",
                                if is_read { "read" } else { "write" },
                                if is_read { "read" } else { "write" },
                            ),
                            &mut sink,
                        );
                    }
                }
                _ => {
                    // Method call into the workspace: propagate callee
                    // obligations and deadline effects onto TcpStream args.
                    let recv_ty = typer.infer(recv);
                    let callees = ws.resolve_method(recv_ty.as_deref(), name, args.len());
                    apply_call(
                        ws,
                        summaries,
                        &callees,
                        args,
                        true,
                        &mut streams,
                        &mut out,
                        *line,
                        path,
                        &mut sink,
                    );
                }
            }
        }
        Expr::Call { callee, args, line } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let owner = ws.fns.get(fn_idx).and_then(|f| f.owner.as_deref());
                let callees = ws.resolve_call(segs, owner);
                apply_call(
                    ws,
                    summaries,
                    &callees,
                    args,
                    false,
                    &mut streams,
                    &mut out,
                    *line,
                    path,
                    &mut sink,
                );
            }
        }
        _ => {}
    });
    out
}

/// Translates one resolved call's [`NetSummary`] onto the caller's
/// streams: un-deadlined I/O obligations fire (or propagate to the
/// caller's own params); `sets_*` effects mark the stream configured.
#[allow(clippy::too_many_arguments)]
fn apply_call(
    ws: &Workspace,
    summaries: &[NetSummary],
    callees: &[usize],
    args: &[Expr],
    method: bool,
    streams: &mut HashMap<String, StreamState>,
    out: &mut NetSummary,
    line: u32,
    path: &str,
    sink: &mut Option<(&mut Vec<Finding>, &FileCtx)>,
) {
    for &c in callees {
        let Some(sum) = summaries.get(c) else {
            continue;
        };
        if (sum.reads | sum.writes | sum.sets_read | sum.sets_write) == 0 {
            continue;
        }
        let has_self = ws
            .fns
            .get(c)
            .and_then(|f| f.params.first())
            .is_some_and(|p| p.name == "self");
        for (j, a) in args.iter().enumerate() {
            let Some(binding) = root_binding(a) else {
                continue;
            };
            let Some(&s) = streams.get(binding) else {
                continue;
            };
            let pidx = j + usize::from(method && has_self);
            let bit = 1u32 << u32::try_from(pidx).unwrap_or(31).min(31);
            if sum.reads & bit != 0 && !s.read_deadlined {
                if let Some(p) = s.param {
                    out.reads |= 1u32 << p.min(31);
                }
                if s.is_tcp {
                    if let Some((findings, ctx)) = sink {
                        if !ctx.rule_allowed(RULE_DEADLINE, line) && !ctx.test_lines.contains(&line)
                        {
                            findings.push(Finding {
                                rule: RULE_DEADLINE,
                                file: path.to_string(),
                                line,
                                message: format!(
                                    "`{binding}` flows into `{}` which reads it with no read \
                                     deadline set — call `set_read_timeout` before handing the \
                                     stream off",
                                    ws.fns.get(c).map_or("?", |f| f.name.as_str()),
                                ),
                            });
                        }
                    }
                }
            }
            if sum.writes & bit != 0 && !s.write_deadlined {
                if let Some(p) = s.param {
                    out.writes |= 1u32 << p.min(31);
                }
                if s.is_tcp {
                    if let Some((findings, ctx)) = sink {
                        if !ctx.rule_allowed(RULE_DEADLINE, line) && !ctx.test_lines.contains(&line)
                        {
                            findings.push(Finding {
                                rule: RULE_DEADLINE,
                                file: path.to_string(),
                                line,
                                message: format!(
                                    "`{binding}` flows into `{}` which writes it with no write \
                                     deadline set — call `set_write_timeout` before handing the \
                                     stream off",
                                    ws.fns.get(c).map_or("?", |f| f.name.as_str()),
                                ),
                            });
                        }
                    }
                }
            }
            if sum.sets_read & bit != 0 {
                if let Some(st) = streams.get_mut(binding) {
                    st.read_deadlined = true;
                }
                if let Some(p) = s.param {
                    out.sets_read |= 1u32 << p.min(31);
                }
            }
            if sum.sets_write & bit != 0 {
                if let Some(st) = streams.get_mut(binding) {
                    st.write_deadlined = true;
                }
                if let Some(p) = s.param {
                    out.sets_write |= 1u32 << p.min(31);
                }
            }
        }
    }
}

/// The `deadline` rule: fixpoint the per-fn summaries, then report
/// un-deadlined `std::net` I/O inside the socket runtime. Returns the
/// summaries so the lock analysis can treat a call feeding an un-deadlined
/// stream into I/O as socket-blocking.
pub(crate) fn check_deadline(
    ws: &Workspace,
    typers: &[Typer<'_>],
    ctxs: &HashMap<&str, &FileCtx>,
    all_rules: bool,
    report: &mut Report,
) -> Vec<NetSummary> {
    let summaries = ws.fixpoint_summaries(NetSummary::default(), |i, sums| {
        if ws.fns.get(i).is_some_and(|f| f.is_test) {
            return NetSummary::default();
        }
        let Some(typer) = typers.get(i) else {
            return NetSummary::default();
        };
        analyze_fn(ws, typer, i, sums, None)
    });
    let mut findings = Vec::new();
    for i in 0..ws.fns.len() {
        if ws.fns.get(i).is_some_and(|f| f.is_test) {
            continue;
        }
        let path = ws.path_of(i);
        if !all_rules && !DEADLINE_SCOPE.iter().any(|p| path.starts_with(p)) {
            continue;
        }
        let Some(ctx) = ctxs.get(path) else { continue };
        let Some(typer) = typers.get(i) else { continue };
        analyze_fn(ws, typer, i, &summaries, Some((&mut findings, ctx)));
    }
    report.findings.append(&mut findings);
    summaries
}
