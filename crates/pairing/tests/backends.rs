//! Cross-backend pairing consistency.
//!
//! The crate ships three Miller-loop backends — Tate (`pairing_tate`),
//! optimal ate (`pairing_ate`, the default behind `pairing`), and the
//! prepared-coefficient ate path (`pairing_prepared` / `multi_miller_loop`).
//! Ate and prepared compute the *same* pairing, so they must be bitwise
//! equal. Tate is a genuinely different pairing (related to ate by a fixed
//! exponent), so the contract there is relational: every bilinear identity
//! — and therefore every protocol verification equation — must accept and
//! reject the exact same inputs under both backends.

use seccloud_hash::HmacDrbg;
use seccloud_pairing::{
    hash_to_g1, hash_to_g2, multi_miller_loop, multi_pairing, multi_pairing_ate,
    multi_pairing_tate, pairing, pairing_ate, pairing_prepared, pairing_tate, Fr, G1Affine,
    G2Affine, G2Prepared, Gt,
};

fn random_pair(drbg: &mut HmacDrbg, tag: &[u8]) -> (G1Affine, G2Affine) {
    let a = Fr::random_nonzero(drbg);
    let b = Fr::random_nonzero(drbg);
    let p = hash_to_g1(tag).mul_u256(&a.to_u256()).to_affine();
    let q = hash_to_g2(tag).mul_u256(&b.to_u256()).to_affine();
    (p, q)
}

#[test]
fn prepared_backend_is_bitwise_equal_to_ate() {
    let mut drbg = HmacDrbg::new(b"backend-prepared");
    for i in 0..8u32 {
        let (p, q) = random_pair(&mut drbg, &i.to_be_bytes());
        let ate = pairing_ate(&p, &q);
        assert_eq!(
            pairing_prepared(&p, &G2Prepared::from(&q)),
            ate,
            "sample {i}"
        );
        assert_eq!(pairing(&p, &q), ate, "default backend must be ate");
    }
}

#[test]
fn tate_and_ate_are_distinct_but_both_bilinear() {
    let mut drbg = HmacDrbg::new(b"backend-bilinear");
    let (p, q) = random_pair(&mut drbg, b"base");
    // Distinct pairings: equal outputs would mean the Tate backend is not
    // an independent implementation at all.
    assert_ne!(pairing_tate(&p, &q), pairing_ate(&p, &q));
    // But e([a]P, [b]Q) = e(P, Q)^(ab) holds exactly under each backend.
    let a = Fr::random_nonzero(&mut drbg);
    let b = Fr::random_nonzero(&mut drbg);
    let pa = seccloud_pairing::G1::from(p)
        .mul_u256(&a.to_u256())
        .to_affine();
    let qb = seccloud_pairing::G2::from(q)
        .mul_u256(&b.to_u256())
        .to_affine();
    for backend in [
        pairing_tate as fn(&G1Affine, &G2Affine) -> Gt,
        pairing_ate,
        |p: &G1Affine, q: &G2Affine| pairing_prepared(p, &G2Prepared::from(q)),
    ] {
        let lhs = backend(&pa, &qb);
        let rhs = backend(&p, &q).pow(&a).pow(&b);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn verification_equations_accept_and_reject_identically() {
    // A designated-verifier-style check: σ = [x]H verifies via
    // e(H, [x]Q) == e(σ, Q). Both backends must accept the honest σ and
    // reject a tampered one — backend choice must never change a protocol
    // verdict.
    let mut drbg = HmacDrbg::new(b"backend-verify");
    let h = hash_to_g1(b"message").to_affine();
    let q = hash_to_g2(b"verifier").to_affine();
    let x = Fr::random_nonzero(&mut drbg);
    let sigma = seccloud_pairing::G1::from(h)
        .mul_u256(&x.to_u256())
        .to_affine();
    let xq = seccloud_pairing::G2::from(q)
        .mul_u256(&x.to_u256())
        .to_affine();
    let forged = seccloud_pairing::G1::from(sigma).double().to_affine();
    for backend in [
        pairing_tate as fn(&G1Affine, &G2Affine) -> Gt,
        pairing_ate,
        |p: &G1Affine, q: &G2Affine| pairing_prepared(p, &G2Prepared::from(q)),
    ] {
        assert_eq!(backend(&h, &xq), backend(&sigma, &q), "honest accepts");
        assert_ne!(backend(&h, &xq), backend(&forged, &q), "forgery rejects");
    }
}

#[test]
fn all_backends_map_identity_inputs_to_one() {
    let mut drbg = HmacDrbg::new(b"backend-identity");
    let (p, q) = random_pair(&mut drbg, b"live");
    let inf1 = G1Affine::identity();
    let inf2 = G2Affine::identity();
    for (a, b) in [(inf1, q), (p, inf2), (inf1, inf2)] {
        assert!(pairing_tate(&a, &b).is_one());
        assert!(pairing_ate(&a, &b).is_one());
        assert!(pairing_prepared(&a, &G2Prepared::from(&b)).is_one());
    }
    assert!(G2Prepared::from(&inf2).is_identity());
}

#[test]
fn multi_pairing_backends_match_their_single_pairing_products() {
    let mut drbg = HmacDrbg::new(b"backend-multi");
    let mut pairs = Vec::new();
    for i in 0..5u32 {
        pairs.push(random_pair(&mut drbg, &i.to_be_bytes()));
    }
    // Splice identity pairs into the middle: every backend treats them as a
    // factor of 1 (Tate and the prepared loop skip them outright).
    pairs.insert(2, (G1Affine::identity(), pairs[0].1));
    pairs.insert(4, (pairs[1].0, G2Affine::identity()));

    let tate_product = pairs
        .iter()
        .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing_tate(p, q)));
    assert_eq!(multi_pairing_tate(&pairs), tate_product);

    let ate_product = pairs
        .iter()
        .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing_ate(p, q)));
    assert_eq!(multi_pairing_ate(&pairs), ate_product);
    assert_eq!(multi_pairing(&pairs), ate_product);

    let prepared: Vec<G2Prepared> = pairs.iter().map(|(_, q)| G2Prepared::from(q)).collect();
    let refs: Vec<(&G1Affine, &G2Prepared)> = pairs
        .iter()
        .zip(&prepared)
        .map(|((p, _), g)| (p, g))
        .collect();
    assert_eq!(multi_miller_loop(&refs), ate_product);

    // The two backend products differ (distinct pairings) — but both are
    // non-degenerate on this input set.
    assert_ne!(tate_product, ate_product);
    assert!(!tate_product.is_one() && !ate_product.is_one());
}

#[test]
fn identity_only_multi_pairings_are_one_under_every_backend() {
    let pairs = vec![
        (G1Affine::identity(), G2Affine::identity()),
        (G1Affine::identity(), hash_to_g2(b"q").to_affine()),
        (hash_to_g1(b"p").to_affine(), G2Affine::identity()),
    ];
    assert!(multi_pairing_tate(&pairs).is_one());
    assert!(multi_pairing_ate(&pairs).is_one());
    assert!(multi_pairing(&pairs).is_one());
    let prepared: Vec<G2Prepared> = pairs.iter().map(|(_, q)| G2Prepared::from(q)).collect();
    let refs: Vec<(&G1Affine, &G2Prepared)> = pairs
        .iter()
        .zip(&prepared)
        .map(|((p, _), g)| (p, g))
        .collect();
    assert!(multi_miller_loop(&refs).is_one());
    assert!(multi_miller_loop(&[]).is_one());
}
