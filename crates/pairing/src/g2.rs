//! The group `G2 ⊂ E'(Fp2)` on the sextic twist `E' : y² = x³ + 3/ξ`.

use std::sync::OnceLock;

use seccloud_bigint::ApInt;

use crate::ec::{Affine, CurveParams, Point};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fr::Fr;
use crate::params;
use crate::traits::FieldElement;

/// Curve parameters for the `G2` twist.
#[derive(Clone, Copy, Debug)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fp2;
    const NAME: &'static str = "G2";

    fn coeff_b() -> Fp2 {
        static B: OnceLock<Fp2> = OnceLock::new();
        *B.get_or_init(|| {
            // b' = 3/ξ (D-type twist).
            Fp2::from_u64(3).mul(&Fp2::xi().inverse().expect("ξ ≠ 0"))
        })
    }

    fn generator() -> (Fp2, Fp2) {
        static GEN: OnceLock<(Fp2, Fp2)> = OnceLock::new();
        *GEN.get_or_init(|| {
            // The standard BN254 G2 generator (EIP-197 / arkworks), parsed
            // from decimal and verified on-curve + r-torsion in tests.
            let dec = |s: &str| {
                Fp::from_u256(
                    &ApInt::from_dec(s)
                        .expect("valid decimal")
                        .to_uint()
                        .expect("fits in 256 bits"),
                )
            };
            let x = Fp2::new(
                dec(
                    "10857046999023057135944570762232829481370756359578518086990519993285655852781",
                ),
                dec(
                    "11559732032986387107991004021392285783925812861821192530917403151452391805634",
                ),
            );
            let y = Fp2::new(
                dec("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
                dec("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
            );
            (x, y)
        })
    }
}

/// A `G2` point in Jacobian coordinates.
pub type G2 = Point<G2Params>;
/// A `G2` point in affine coordinates.
pub type G2Affine = Affine<G2Params>;

impl G2 {
    /// Scalar multiplication by an `Fr` scalar.
    pub fn mul_fr(&self, k: &Fr) -> Self {
        self.mul_limbs_wnaf(k.to_u256().limbs())
    }

    /// Constant-time scalar multiplication for *secret* scalars: the
    /// fixed-sequence ladder of [`crate::ec::Point::mul_u256_ct`] instead
    /// of the wNAF recoding (whose digit pattern is scalar-dependent).
    pub fn mul_fr_ct(&self, k: &Fr) -> Self {
        self.mul_u256_ct(&k.to_u256())
    }

    /// Whether the point lies in the order-`r` subgroup.
    pub fn is_torsion_free(&self) -> bool {
        self.mul_u256(&Fr::modulus()).is_identity()
    }
}

impl G2Affine {
    /// Serializes to 64 bytes: big-endian `x.c1 ‖ x.c0` with flag bits in
    /// the always-zero top two bits of each half (BN254 elements are
    /// < 2²⁵⁴): byte 0 bit 7 = infinity, byte 0 bit 6 = `y.c0` parity,
    /// byte 32 bit 7 = `y.c1` parity.
    pub fn to_compressed(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        if self.is_identity() {
            out[0] = 0x80;
            return out;
        }
        out[..32].copy_from_slice(&self.x().c1.to_be_bytes());
        out[32..].copy_from_slice(&self.x().c0.to_be_bytes());
        if self.y().c0.is_odd() {
            out[0] |= 0x40;
        }
        if self.y().c1.is_odd() {
            out[32] |= 0x80;
        }
        out
    }

    /// Deserializes a compressed `G2` point, verifying the twist equation
    /// **and** the order-`r` subgroup membership (the twist has a large
    /// cofactor, so the check is mandatory for safety).
    pub fn from_compressed(bytes: &[u8; 64]) -> Option<Self> {
        let infinity = bytes[0] & 0x80 != 0;
        let flags = (bytes[0] & 0x40) | (bytes[32] & 0x80);
        let mut payload = *bytes;
        payload[0] &= 0x3f;
        payload[32] &= 0x7f;
        if infinity {
            return (flags == 0 && payload.iter().all(|&b| b == 0)).then_some(Self::identity());
        }
        let c1 = Fp::from_be_bytes(payload[..32].try_into().expect("32 bytes"))?;
        let c0 = Fp::from_be_bytes(payload[32..].try_into().expect("32 bytes"))?;
        let x = Fp2::new(c0, c1);
        let y2 = x.square().mul(&x).add(&G2Params::coeff_b());
        let y = y2.sqrt()?;
        // Pick the root matching the recorded parities; the two roots are
        // negatives of each other, so exactly one matches (or the encoding
        // is invalid).
        let want = (bytes[0] & 0x40 != 0, bytes[32] & 0x80 != 0);
        let candidate = if (y.c0.is_odd(), y.c1.is_odd()) == want {
            y
        } else {
            let neg = y.neg();
            if (neg.c0.is_odd(), neg.c1.is_odd()) == want {
                neg
            } else {
                return None;
            }
        };
        let point = Self::from_xy(x, candidate)?;
        G2::from(point).is_torsion_free().then_some(point)
    }
}

/// Hashes arbitrary bytes onto the order-`r` subgroup of the twist (the
/// verifier-side `H1 : {0,1}* → G2`, used for `Q_CS` and `Q_DA`).
///
/// Try-and-increment onto `E'(Fp2)` followed by cofactor clearing with
/// `c₂ = p − 1 + t` (derived at runtime; see [`params::g2_cofactor`]).
///
/// # Examples
///
/// ```
/// use seccloud_pairing::hash_to_g2;
/// let q = hash_to_g2(b"cs-01.cloud.example");
/// assert!(q.is_torsion_free());
/// assert!(!q.is_identity());
/// ```
pub fn hash_to_g2(msg: &[u8]) -> G2 {
    let b = G2Params::coeff_b();
    for ctr in 0u32.. {
        let mut input = Vec::with_capacity(msg.len() + 4);
        input.extend_from_slice(msg);
        input.extend_from_slice(&ctr.to_be_bytes());
        let x = Fp2::from_hash(b"seccloud/H1/g2", &input);
        let y2 = x.square().mul(&x).add(&b);
        if let Some(y) = y2.sqrt() {
            let sign = seccloud_hash::hash_to_int_bytes(b"seccloud/H1/g2/sign", &input, 1)[0] & 1;
            let y = if sign == 1 { y.neg() } else { y };
            let p = G2Affine::from_xy(x, y).expect("constructed on curve");
            let cleared = G2::from(p).mul_apint(params::g2_cofactor());
            if !cleared.is_identity() {
                return cleared;
            }
        }
    }
    unreachable!("try-and-increment terminates with overwhelming probability")
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_bigint::U256;

    #[test]
    fn ct_ladder_matches_wnaf() {
        let g = G2::generator();
        let mut drbg = seccloud_hash::HmacDrbg::new(b"g2-ct-ladder");
        for _ in 0..4 {
            let k = Fr::random_nonzero(&mut drbg);
            assert_eq!(g.mul_fr_ct(&k), g.mul_fr(&k));
        }
        assert!(g.mul_fr_ct(&Fr::zero()).is_identity());
        let r_minus_1 = Fr::zero().sub(&Fr::from_u64(1));
        assert_eq!(g.mul_fr_ct(&r_minus_1), g.neg());
    }

    #[test]
    fn generator_is_on_twist_and_in_subgroup() {
        let g = G2::generator();
        assert!(
            g.to_affine().is_on_curve(),
            "generator satisfies y² = x³ + 3/ξ"
        );
        assert!(g.is_torsion_free(), "generator has order r");
        assert!(!g.mul_u256(&U256::from_u64(7)).is_identity());
    }

    #[test]
    fn twist_curve_order_is_cofactor_times_r() {
        // A random curve point (pre-cofactor-clearing) must be annihilated
        // by c₂·r — this validates the derived cofactor formula c₂ = p−1+t.
        let b = G2Params::coeff_b();
        let mut found = 0;
        for ctr in 0u32..20 {
            let x = Fp2::from_hash(b"order-test", &ctr.to_be_bytes());
            let y2 = x.square().mul(&x).add(&b);
            if let Some(y) = y2.sqrt() {
                let p = G2::from(G2Affine::from_xy(x, y).unwrap());
                let order = params::g2_cofactor() * &ApInt::from_uint(&Fr::modulus());
                assert!(p.mul_apint(&order).is_identity(), "point killed by c₂·r");
                found += 1;
            }
        }
        assert!(found >= 3, "expected several curve points");
    }

    #[test]
    fn group_laws() {
        let g = G2::generator();
        let a = g.mul_fr(&Fr::from_u64(3));
        let b = g.mul_fr(&Fr::from_u64(11));
        assert_eq!(a.add(&b), g.mul_fr(&Fr::from_u64(14)));
        assert_eq!(a.add(&b), b.add(&a));
        assert!(a.sub(&a).is_identity());
        assert_eq!(g.double(), g.add(&g));
    }

    #[test]
    fn hash_to_g2_lands_in_subgroup() {
        let q1 = hash_to_g2(b"server-1");
        let q2 = hash_to_g2(b"server-1");
        let q3 = hash_to_g2(b"server-2");
        assert_eq!(q1, q2);
        assert_ne!(q1, q3);
        assert!(q1.is_torsion_free());
        assert!(q1.to_affine().is_on_curve());
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = hash_to_g2(b"distribute");
        let k1 = Fr::hash(b"a");
        let k2 = Fr::hash(b"b");
        assert_eq!(g.mul_fr(&k1.add(&k2)), g.mul_fr(&k1).add(&g.mul_fr(&k2)));
    }
}
