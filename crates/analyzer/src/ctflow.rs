//! Interprocedural constant-time dataflow (rules `ctflow` and `vartime`).
//!
//! The token-level `ct` rule of PR 3 pattern-matches `==` against
//! digest-like identifier names — it cannot see a secret that crosses a
//! `let`, a call boundary, or an arithmetic expression before controlling
//! a branch. This module runs a value-level taint analysis over the same
//! AST + call graph the `taint` rule uses, but with *timing sinks* instead
//! of format/wire sinks:
//!
//! * `if`/`while` conditions and `match` scrutinees (value patterns only —
//!   pure destructuring arms do not compare values),
//! * comparison operators (`==`, `!=`, `<`, `<=`, `>`, `>=`),
//! * `&&` / `||` short-circuits,
//! * slice/array index expressions (cache-timing on the access pattern),
//! * `for`-loop range bounds.
//!
//! A finding fires when a value whose taint lattice carries the SECRET bit
//! reaches one of these sinks. Taint is seeded exactly like the `taint`
//! rule: from `// lint: secret` types, secret-typed params/fields/locals.
//!
//! **Sanitizers.** `ct_eq`, `hmac_verify` and the conditional-select
//! family (`ct_select`, `conditional_select`) return public verdicts by
//! construction; their results are untainted and their arguments are not
//! treated as reaching a sink.
//!
//! **Crate policy.** Two independent per-crate axes (see [`Policy`]):
//!
//! * *return declassification* (`crates/hash`, `crates/ibs`): what these
//!   crates return — digests, DRBG output, signatures, audit verdicts —
//!   is public by protocol design, so returns drop the SECRET bit at the
//!   API boundary (constructors whose declared return type names a secret
//!   type re-taint, e.g. `HmacDrbg::new`, `MasterKey::generate`);
//! * *trusted branches* (`crates/pairing`, `crates/bigint`,
//!   `crates/hash`): internal branch sinks are neither reported nor
//!   propagated — these crates implement the constant-time arithmetic
//!   (or branch only on public structure such as digest block counts),
//!   and their data-dependent paths are policed by the `vartime` rule.
//!
//! `crates/ibs` is the interesting quadrant: its returns are declassified
//! (a signature is published), but its *internals* handle raw key
//! material and are fully analyzed and reported.
//!
//! **Rule `vartime`.** Variable-time primitives — every fn whose name
//! ends in `_vartime`, plus fns carrying an explicit
//! `// lint: vartime(reason)` sanction (wNAF digit recoding, Pippenger
//! window selection, binary-Euclid inversion) — are *sinks for secrets*:
//! per-fn summaries record which params reach a primitive (transitively,
//! across the whole call graph), and a call whose secret-tainted argument
//! or receiver lands on such a path is a `vartime` finding. This turns
//! PR 6's "public Miller-loop slopes only" doc-comment contract into a
//! machine-checked invariant.
//!
//! Escape hatches: `// lint: declassify(reason)` silences `ctflow` on the
//! next line (recorded as an allowance, surfaced in the baseline);
//! `// lint: allow(vartime, reason=…)` does the same for `vartime`.

use std::collections::{HashMap, HashSet};

use crate::ast::{Arm, Expr};
use crate::callgraph::{Typer, Workspace};
use crate::rules::{FileCtx, Finding, Report, RULE_CTFLOW, RULE_VARTIME};
use crate::taint::{qualified, ret_names_secret, ty_secret};

/// Bit 63 marks "directly secret"; bits 0..62 mark "derived from param i".
const SECRET: u64 = 1 << 63;

/// Calls whose result is a public verdict/selection by construction; their
/// arguments do not count as reaching a timing sink.
const SANITIZERS: [&str; 4] = ["ct_eq", "hmac_verify", "ct_select", "conditional_select"];

/// Comparison operators that leak their operands through timing when
/// short-circuiting (or through the branch they feed).
const CMP_OPS: [&str; 6] = ["==", "!=", "<", ">", "<=", ">="];

/// Per-crate trust policy — three independent axes.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Policy {
    /// Returns drop the SECRET bit: the crate's API boundary is where
    /// secret-derived values become public by protocol design (digests,
    /// signatures, audit outcomes). Constructors whose declared return
    /// type names a secret type still re-taint.
    ret_declass: bool,
    /// Internal data-dependent branches are trusted (the crate implements
    /// the constant-time arithmetic itself): branch sinks are neither
    /// reported in the crate nor propagated to callers via summaries.
    /// The `vartime` rule still polices its sanctioned primitives.
    trust_branches: bool,
}

fn policy(path: &str) -> Policy {
    // Field/group arithmetic: taint-transparent (a secret point is still
    // secret across `to_affine`), branches trusted, vartime checked.
    if path.starts_with("crates/pairing/") || path.starts_with("crates/bigint/") {
        return Policy {
            ret_declass: false,
            trust_branches: true,
        };
    }
    // Digest/PRF/DRBG outputs are public by design; fixed-structure key
    // scheduling branches (on lengths, never values) are trusted.
    if path.starts_with("crates/hash/") {
        return Policy {
            ret_declass: true,
            trust_branches: true,
        };
    }
    // The scheme API: everything it *returns* (signatures, proofs,
    // outcomes) is published by protocol design, but its internals handle
    // raw key material — fully analyzed and reported.
    if path.starts_with("crates/ibs/") {
        return Policy {
            ret_declass: true,
            trust_branches: false,
        };
    }
    Policy {
        ret_declass: false,
        trust_branches: false,
    }
}

/// Per-fn dataflow summary (masks only grow across fixpoint rounds).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct Summary {
    /// Params whose taint reaches the return value.
    ret_params: u64,
    /// The return value is secret regardless of arguments.
    ret_secret: bool,
    /// Params whose taint reaches a timing sink in (or below) this fn.
    branch_params: u64,
    /// Params whose taint reaches a variable-time primitive in (or below)
    /// this fn.
    vt_params: u64,
}

/// Runs the `ctflow` + `vartime` rules over the workspace.
pub fn check_ctflow(
    ws: &Workspace,
    typers: &[Typer<'_>],
    ctxs: &HashMap<&str, &FileCtx>,
    secret_names: &HashSet<String>,
    all_rules: bool,
    report: &mut Report,
) {
    if secret_names.is_empty() {
        return;
    }
    // The vartime sanction set: `*_vartime` names plus explicit markers.
    let prims: Vec<bool> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            f.name.ends_with("_vartime")
                || ctxs
                    .get(ws.path_of(i))
                    .is_some_and(|c| c.vartime_lines.contains(&f.line))
        })
        .collect();
    let n = ws.fns.len();
    let summaries = ws.fixpoint_summaries(Summary::default(), |i, sums| {
        analyze_fn(ws, typers, i, sums, &prims, secret_names, all_rules, None)
    });
    // Reporting pass.
    let mut findings = Vec::new();
    for i in 0..n {
        let _ = analyze_fn(
            ws,
            typers,
            i,
            &summaries,
            &prims,
            secret_names,
            all_rules,
            Some(&mut findings),
        );
    }
    for f in findings {
        let allowed = ctxs
            .get(f.file.as_str())
            .is_some_and(|c| c.rule_allowed(f.rule, f.line) || c.test_lines.contains(&f.line));
        if !allowed {
            report.findings.push(f);
        }
    }
}

/// One evaluation of a fn body. Returns the fn's summary; when
/// `findings` is set, also records sink hits (the reporting pass).
#[allow(clippy::too_many_arguments)]
fn analyze_fn(
    ws: &Workspace,
    typers: &[Typer<'_>],
    fn_idx: usize,
    summaries: &[Summary],
    prims: &[bool],
    secret_names: &HashSet<String>,
    all_rules: bool,
    findings: Option<&mut Vec<Finding>>,
) -> Summary {
    let Some(f) = ws.fns.get(fn_idx) else {
        return Summary::default();
    };
    let Some(body) = &f.body else {
        return Summary::default();
    };
    if f.is_test {
        return Summary::default();
    }
    let path = ws.path_of(fn_idx);
    let pol = policy(path);
    if prims.get(fn_idx).copied().unwrap_or(false) {
        // A sanctioned primitive is variable-time in *all* of its inputs
        // by declaration; its body is not analyzed further.
        let all_params = (1u64 << f.params.len().min(62)) - 1;
        return Summary {
            vt_params: all_params,
            ..Summary::default()
        };
    }
    let mut ev = Eval {
        ws,
        summaries,
        prims,
        secret_names,
        typer: match typers.get(fn_idx) {
            Some(t) => t,
            None => return Summary::default(),
        },
        locals: HashMap::new(),
        owner: f.owner.clone(),
        owner_secret: f.owner.as_deref().is_some_and(|o| secret_names.contains(o)),
        out: Summary::default(),
        findings,
        file: path.to_string(),
        // Branch sinks are only *reported* where branches are not trusted
        // (or in fixture mode); they still feed `branch_params` so checked
        // callers of checked callees see through the boundary.
        report_branches: all_rules || !pol.trust_branches,
    };
    for (i, p) in f.params.iter().enumerate().take(62) {
        let mut mask = 1u64 << i;
        let secret_param = if p.name == "self" {
            ev.owner_secret
        } else {
            ty_secret(&p.ty, secret_names)
        };
        if secret_param {
            mask |= SECRET;
        }
        ev.locals.insert(p.name.clone(), mask);
    }
    let ret_mask = ev.eval(body);
    ev.out.ret_params |= ret_mask & !SECRET;
    if ret_mask & SECRET != 0 {
        ev.out.ret_secret = true;
    }
    if ret_names_secret(f, secret_names) {
        ev.out.ret_secret = true;
    }
    ev.out.ret_params &= (1u64 << f.params.len().min(62)) - 1;
    ev.out
}

/// Does a `match` arm compare concrete values (as opposed to pure
/// destructuring)? `0 => …` and `Tag::Ack => …` are value patterns;
/// `Some(v) => …`, `None => …` and `_ => …` are not — matching an
/// `Option`'s presence is how checked code unwraps, not a comparison.
fn is_value_arm(arm: &Arm) -> bool {
    if arm.has_literal {
        // `0 => …`, `"ack" => …`, `Some(0) => …` — comparing a literal is
        // a value comparison wherever it sits in the pattern.
        return true;
    }
    if arm.is_wildcard || !arm.bindings.is_empty() {
        return false;
    }
    !arm.pat_paths
        .iter()
        .all(|p| p.last().is_some_and(|s| s == "None"))
}

/// Is this condition expression already covered by an operator-level sink
/// (a comparison or short-circuit at its top level)?
fn cond_covered(e: &Expr) -> bool {
    match e {
        Expr::Group { children, .. } => children.iter().any(cond_covered),
        Expr::Binary { op, .. } => CMP_OPS.contains(&op.as_str()) || op == "&&" || op == "||",
        _ => false,
    }
}

struct Eval<'a> {
    ws: &'a Workspace,
    summaries: &'a [Summary],
    prims: &'a [bool],
    secret_names: &'a HashSet<String>,
    typer: &'a Typer<'a>,
    locals: HashMap<String, u64>,
    owner: Option<String>,
    owner_secret: bool,
    out: Summary,
    findings: Option<&'a mut Vec<Finding>>,
    file: String,
    report_branches: bool,
}

impl Eval<'_> {
    /// A timing sink (branch/index/comparison) saw `mask`.
    fn branch_sink(&mut self, mask: u64, line: u32, what: &str) {
        self.out.branch_params |= mask & !SECRET;
        if mask & SECRET != 0 && self.report_branches {
            if let Some(f) = self.findings.as_deref_mut() {
                f.push(Finding {
                    rule: RULE_CTFLOW,
                    file: self.file.clone(),
                    line,
                    message: format!(
                        "secret-influenced value reaches {what} — execution time would depend \
                         on key material; use `seccloud_hash::ct_eq` / a constant-time select, \
                         or annotate `// lint: declassify(reason)` if the value is public by \
                         protocol design"
                    ),
                });
            }
        }
    }

    /// A variable-time primitive (or a path into one) saw `mask`.
    fn vt_sink(&mut self, mask: u64, line: u32, what: &str) {
        self.out.vt_params |= mask & !SECRET;
        if mask & SECRET != 0 {
            if let Some(f) = self.findings.as_deref_mut() {
                f.push(Finding {
                    rule: RULE_VARTIME,
                    file: self.file.clone(),
                    line,
                    message: format!(
                        "secret-influenced value reaches variable-time {what} — the vartime \
                         sanction list (DESIGN.md §9) admits public inputs only; route secrets \
                         through the constant-time API (`inverse`, `mul_fr_ct`), or annotate \
                         `// lint: allow(vartime, reason=...)`"
                    ),
                });
            }
        }
    }

    /// Applies resolved callees' summaries to the argument masks
    /// (`arg_masks[0]` aligned with the callee's first param).
    fn apply_summary(
        &mut self,
        targets: &[usize],
        arg_masks: &[u64],
        line: u32,
        name: &str,
    ) -> u64 {
        let mut out = 0u64;
        for &t in targets {
            let Some(callee) = self.ws.fns.get(t) else {
                continue;
            };
            let callee_path = self.ws.path_of(t);
            let summary = self.summaries.get(t).copied().unwrap_or_default();
            if self.prims.get(t).copied().unwrap_or(false) {
                let all = arg_masks.iter().fold(0, |a, m| a | m);
                self.vt_sink(
                    all,
                    line,
                    &format!("primitive `{}`", qualified(callee, name)),
                );
                continue;
            }
            // Variable-time reachability crosses every crate class.
            for (i, m) in arg_masks.iter().enumerate().take(62) {
                if summary.vt_params & (1u64 << i) != 0 {
                    self.vt_sink(*m, line, &format!("path `{}`", qualified(callee, name)));
                }
            }
            let pol = policy(callee_path);
            for (i, m) in arg_masks.iter().enumerate().take(62) {
                let bit = 1u64 << i;
                if summary.ret_params & bit != 0 && !pol.ret_declass {
                    // Declassifying boundaries return *public* values —
                    // both the SECRET bit and the param provenance drop
                    // (otherwise a branch on `verifier.identity()` keeps
                    // blaming the key it was read from). Everywhere else
                    // taint is transparent (a secret point is still
                    // secret after `to_affine`).
                    out |= *m;
                }
                if !pol.trust_branches && summary.branch_params & bit != 0 {
                    self.branch_sink(
                        *m,
                        line,
                        &format!("a branch/index inside `{}`", qualified(callee, name)),
                    );
                }
            }
            if pol.ret_declass {
                // Only constructors of secret types re-taint.
                if ret_names_secret(callee, self.secret_names) {
                    out |= SECRET;
                }
            } else if summary.ret_secret {
                out |= SECRET;
            }
        }
        if targets.is_empty() {
            // Unresolved (std) call: taint flows through (`.clone()`,
            // `Some(…)`, `.to_vec()` all preserve secrecy).
            out = arg_masks.iter().fold(0, |a, m| a | m);
        }
        out
    }

    fn bind(&mut self, names: &[String], mask: u64) {
        for n in names {
            *self.locals.entry(n.clone()).or_insert(0) |= mask;
        }
    }

    fn field_secret(&self, base: &Expr, name: &str) -> bool {
        let Some(base_ty) = self.typer.infer(base) else {
            return false;
        };
        self.ws
            .struct_fields
            .get(&base_ty)
            .and_then(|fields| fields.get(name))
            .is_some_and(|ty| ty_secret(ty, self.secret_names))
    }

    fn eval(&mut self, e: &Expr) -> u64 {
        match e {
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] => self.locals.get(one).copied().unwrap_or(0),
                _ => 0,
            },
            Expr::Lit { .. } | Expr::Opaque { .. } | Expr::NestedFn(_) => 0,
            Expr::Field { base, name, .. } => {
                let mut m = self.eval(base);
                if self.field_secret(base, name) {
                    m |= SECRET;
                }
                m
            }
            Expr::Index { base, index, line } => {
                let bm = self.eval(base);
                let im = self.eval(index);
                self.branch_sink(
                    im,
                    *line,
                    "an array/slice index (secret-dependent memory access pattern)",
                );
                bm | im
            }
            Expr::Binary { op, lhs, rhs, line } => {
                let m = self.eval(lhs) | self.eval(rhs);
                // A comparison (or short-circuit) *is* the timing sink —
                // report it here, once. Its one-bit result is the verdict
                // the code goes on to branch with, so it leaves the
                // expression untainted (otherwise every verifier that
                // returns `lhs == rhs` would re-flag all of its callers).
                if CMP_OPS.contains(&op.as_str()) {
                    self.branch_sink(m, *line, &format!("a `{op}` comparison"));
                    return 0;
                }
                if op == "&&" || op == "||" {
                    self.branch_sink(m, *line, &format!("a `{op}` short-circuit"));
                    return 0;
                }
                m
            }
            Expr::Assign { lhs, rhs, .. } => {
                let m = self.eval(rhs);
                if let Expr::Path { segs, .. } = lhs.as_ref() {
                    if let [one] = segs.as_slice() {
                        *self.locals.entry(one.clone()).or_insert(0) |= m;
                    }
                }
                let _ = self.eval(lhs);
                0
            }
            Expr::Let {
                bindings,
                ty,
                init,
                else_block,
                ..
            } => {
                let mut m = init.as_ref().map_or(0, |i| self.eval(i));
                if ty
                    .as_deref()
                    .is_some_and(|t| ty_secret(t, self.secret_names))
                {
                    m |= SECRET;
                }
                // `let (key, items) = make();` — when the callee's declared
                // tuple components are visible, only secret-typed
                // components inherit SECRET; smearing the whole tuple's
                // taint over every binding flags the public halves too.
                let comps = (bindings.len() > 1 && ty.is_none())
                    .then(|| init.as_ref().and_then(|i| self.typer.ret_tuple_types(i)))
                    .flatten();
                match comps {
                    Some(comps) if comps.len() == bindings.len() => {
                        for (b, c) in bindings.iter().zip(&comps) {
                            let bm = if ty_secret(c, self.secret_names) {
                                m | SECRET
                            } else {
                                m & !SECRET
                            };
                            self.bind(std::slice::from_ref(b), bm);
                        }
                    }
                    _ => self.bind(bindings, m),
                }
                if let Some(e) = else_block {
                    let _ = self.eval(e);
                }
                0
            }
            Expr::Block { stmts, .. } => {
                let mut last = 0;
                for s in stmts {
                    last = self.eval(s);
                }
                last
            }
            Expr::If {
                cond,
                bindings,
                then_block,
                else_block,
                line,
            } => {
                let cm = self.eval(cond);
                // `if let` tests structure, not values; operator-level
                // sinks already fired inside comparison conditions.
                if bindings.is_empty() && !cond_covered(cond) {
                    self.branch_sink(cm, *line, "an `if` condition");
                }
                self.bind(bindings, cm);
                let mut m = self.eval(then_block);
                if let Some(e) = else_block {
                    m |= self.eval(e);
                }
                m
            }
            Expr::Match {
                scrutinee,
                arms,
                line,
            } => {
                let sm = self.eval(scrutinee);
                if arms.iter().any(is_value_arm) {
                    self.branch_sink(sm, *line, "a `match` on concrete values");
                }
                let mut m = 0;
                for arm in arms {
                    self.bind(&arm.bindings, sm);
                    m |= self.eval(&arm.body);
                }
                m
            }
            Expr::For {
                bindings,
                iter,
                body,
                line,
            } => {
                if let Expr::Range { lo, hi, .. } = iter.as_ref() {
                    let bm = lo.as_ref().map_or(0, |l| self.eval(l))
                        | hi.as_ref().map_or(0, |h| self.eval(h));
                    self.branch_sink(bm, *line, "a loop bound");
                }
                let im = self.eval(iter);
                self.bind(bindings, im);
                // Twice: taint assigned late in the body reaches uses
                // earlier in the next iteration.
                let _ = self.eval(body);
                let _ = self.eval(body);
                0
            }
            Expr::Loop {
                cond,
                bindings,
                body,
                line,
            } => {
                if let Some(c) = cond {
                    let cm = self.eval(c);
                    if bindings.is_empty() && !cond_covered(c) {
                        self.branch_sink(cm, *line, "a `while` condition");
                    }
                    self.bind(bindings, cm);
                }
                let _ = self.eval(body);
                let _ = self.eval(body);
                0
            }
            Expr::Closure { body, .. } => self.eval(body),
            Expr::Range { lo, hi, .. } => {
                lo.as_ref().map_or(0, |l| self.eval(l)) | hi.as_ref().map_or(0, |h| self.eval(h))
            }
            Expr::Cast { expr, ty, .. } => {
                let mut m = self.eval(expr);
                if ty_secret(ty, self.secret_names) {
                    m |= SECRET;
                }
                m
            }
            Expr::StructLit { segs, fields, .. } => {
                let mut m = 0;
                for (_, fe) in fields {
                    m |= self.eval(fe);
                }
                let head = segs.last().map(|s| {
                    if s == "Self" {
                        self.owner.as_deref().unwrap_or(s)
                    } else {
                        s.as_str()
                    }
                });
                if head.is_some_and(|s| self.secret_names.contains(s)) {
                    m |= SECRET;
                } else if head.is_some_and(|s| self.ws.struct_fields.contains_key(s)) {
                    // A known non-secret struct boxes the secrets it is
                    // built from; reading one back out re-taints through
                    // the field's declared type (same rule as `taint`).
                    m &= !SECRET;
                }
                m
            }
            Expr::Group { children, .. } => {
                let mut m = 0;
                for c in children {
                    m |= self.eval(c);
                }
                m
            }
            Expr::MacroCall { args, .. } => {
                // Format/panic macro leaks are the `taint` rule's domain;
                // here macros just propagate their arguments' taint.
                args.iter().map(|a| self.eval(a)).fold(0, |a, m| a | m)
            }
            Expr::Call { callee, args, line } => {
                let masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                match callee.as_ref() {
                    Expr::Path { segs, .. } => {
                        let name = segs.last().cloned().unwrap_or_default();
                        if SANITIZERS.contains(&name.as_str()) {
                            return 0;
                        }
                        let targets = self.ws.resolve_call(segs, self.owner.as_deref());
                        if targets.is_empty() && name.ends_with("_vartime") {
                            // Unresolved primitive (macro-generated field
                            // inverses): sink directly on the arguments.
                            let all = masks.iter().fold(0, |a, m| a | m);
                            self.vt_sink(all, *line, &format!("primitive `{name}`"));
                            return all & !SECRET;
                        }
                        let mut m = self.apply_summary(&targets, &masks, *line, &name);
                        if targets.is_empty()
                            && segs
                                .iter()
                                .rev()
                                .nth(1)
                                .is_some_and(|t| self.secret_names.contains(t))
                        {
                            m |= SECRET;
                        }
                        m
                    }
                    other => {
                        let mut m = self.eval(other);
                        for mk in &masks {
                            m |= mk;
                        }
                        m
                    }
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                let recv_mask = self.eval(recv);
                let masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                if SANITIZERS.contains(&name.as_str()) {
                    return 0;
                }
                let recv_ty = self.typer.infer(recv);
                let targets = self.ws.resolve_method(recv_ty.as_deref(), name, args.len());
                let mut aligned = Vec::with_capacity(masks.len() + 1);
                aligned.push(recv_mask);
                aligned.extend(masks.iter().copied());
                if targets.is_empty() && name.ends_with("_vartime") {
                    let all = aligned.iter().fold(0, |a, m| a | m);
                    self.vt_sink(all, *line, &format!("primitive `{name}`"));
                    return all & !SECRET;
                }
                self.apply_summary(&targets, &aligned, *line, name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_files;

    fn lint_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        let r = lint_files(&[(path.to_string(), src.to_string())], false);
        r.findings
            .iter()
            .filter(|f| f.rule == RULE_CTFLOW || f.rule == RULE_VARTIME)
            .map(|f| (f.rule, f.line))
            .collect()
    }

    fn lint(src: &str) -> Vec<(&'static str, u32)> {
        lint_at("crates/core/src/t.rs", src)
    }

    const SECRET_DEF: &str = "// lint: secret\npub struct UserKey { sk: u64 }\n\
                              impl Drop for UserKey { fn drop(&mut self) {} }\n";

    #[test]
    fn secret_branch_is_caught_across_a_call() {
        let src = format!(
            "{SECRET_DEF}\
             fn check(v: u64) -> bool {{ if v > 9 {{ true }} else {{ false }} }}\n\
             fn gate(k: &UserKey) -> bool {{ check(k.sk) }}\n"
        );
        let hits = lint(&src);
        assert!(
            hits.iter().any(|(r, _)| *r == RULE_CTFLOW),
            "expected a ctflow finding, got {hits:?}"
        );
    }

    #[test]
    fn secret_comparison_and_index_are_caught() {
        let src = format!(
            "{SECRET_DEF}\
             fn cmp(k: &UserKey, x: u64) -> bool {{ k.sk == x }}\n\
             fn idx(k: &UserKey, t: &[u8]) -> u8 {{ t[(k.sk as usize) % t.len()] }}\n"
        );
        let hits = lint(&src);
        assert!(hits.len() >= 2, "{hits:?}");
    }

    #[test]
    fn sanitizers_clear_taint() {
        let src = format!(
            "{SECRET_DEF}\
             fn ok(k: &UserKey, x: u64) -> bool {{\n\
                 if ct_eq(&k.sk.to_be_bytes(), &x.to_be_bytes()) {{ true }} else {{ false }}\n\
             }}\n"
        );
        assert!(lint(&src).is_empty(), "{:?}", lint(&src));
    }

    #[test]
    fn declassify_annotation_silences_ctflow() {
        let src = format!(
            "{SECRET_DEF}\
             fn gate(k: &UserKey) -> bool {{\n\
                 // lint: declassify(parity of sk is published in the audit header)\n\
                 k.sk % 2 == 0\n\
             }}\n"
        );
        assert!(lint(&src).is_empty(), "{:?}", lint(&src));
    }

    #[test]
    fn vartime_call_with_secret_argument_is_caught() {
        let src = format!(
            "{SECRET_DEF}\
             fn inverse_vartime(v: u64) -> u64 {{ v }}\n\
             fn bad(k: &UserKey) -> u64 {{ inverse_vartime(k.sk) }}\n\
             fn good(x: u64) -> u64 {{ inverse_vartime(x) }}\n"
        );
        let hits = lint(&src);
        assert_eq!(
            hits.iter().filter(|(r, _)| *r == RULE_VARTIME).count(),
            1,
            "{hits:?}"
        );
    }

    #[test]
    fn vartime_reachability_crosses_call_boundaries() {
        let src = format!(
            "{SECRET_DEF}\
             fn inverse_vartime(v: u64) -> u64 {{ v }}\n\
             fn helper(v: u64) -> u64 {{ inverse_vartime(v) }}\n\
             fn outer(k: &UserKey) -> u64 {{ helper(k.sk) }}\n"
        );
        let hits = lint(&src);
        assert!(
            hits.iter().any(|(r, _)| *r == RULE_VARTIME),
            "transitive vartime reach must be flagged: {hits:?}"
        );
    }

    #[test]
    fn vartime_marker_sanctions_a_named_fn() {
        let src = format!(
            "{SECRET_DEF}\
             // lint: vartime(window selection is public weights only)\n\
             fn fold(w: u64) -> u64 {{ w }}\n\
             fn bad(k: &UserKey) -> u64 {{ fold(k.sk) }}\n"
        );
        let hits = lint(&src);
        assert!(
            hits.iter().any(|(r, _)| *r == RULE_VARTIME),
            "marker-sanctioned fn must sink secrets: {hits:?}"
        );
    }

    #[test]
    fn match_on_destructuring_is_not_a_sink() {
        let src = format!(
            "{SECRET_DEF}\
             fn peel(k: Option<UserKey>) -> u64 {{\n\
                 match k {{ Some(key) => key.sk, None => 0 }}\n\
             }}\n"
        );
        assert!(lint(&src).is_empty(), "{:?}", lint(&src));
    }

    #[test]
    fn trusted_crates_propagate_but_do_not_report() {
        // A branch inside crates/pairing is trusted; the taint still flows
        // through its return into checked code.
        let a = (
            "crates/pairing/src/h.rs".to_string(),
            "pub fn norm(v: u64) -> u64 { if v > 3 { v } else { 0 } }".to_string(),
        );
        let b = (
            "crates/core/src/t.rs".to_string(),
            format!(
                "{SECRET_DEF}\
                 fn gate(k: &UserKey) -> bool {{ norm(k.sk) == 0 }}\n"
            ),
        );
        let r = lint_files(&[a, b], false);
        let ctf: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_CTFLOW)
            .collect();
        assert_eq!(ctf.len(), 1, "{ctf:?}");
        assert!(ctf[0].file.contains("core"), "{ctf:?}");
    }
}
