#!/usr/bin/env bash
# Offline CI gate for the SecCloud workspace.
#
# Runs the formatting, lint, and tier-1 test gates exactly as the driver
# does — no network access required (the workspace has zero external
# dependencies). Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "CI OK"
