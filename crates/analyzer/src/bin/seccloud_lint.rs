//! The `seccloud-lint` binary — the workspace's static-analysis gate.
//!
//! ```text
//! seccloud-lint [--baseline] [--format json|sarif] [PATH]
//! ```
//!
//! * With no `PATH`: lints the workspace rooted at the current directory
//!   with path-scoped rules (what `ci.sh` runs).
//! * With a directory `PATH`: same, rooted there.
//! * With a file `PATH`: lints that one file with **all** rules enabled
//!   (used by the fixture self-tests and for spot checks).
//! * `--baseline`: prints the machine-readable baseline document —
//!   `{"findings": […], "allowances": […]}` — and always exits 0, so CI
//!   can diff it against the committed copy in `crates/baselines/`.
//! * `--format sarif`: prints a SARIF 2.1.0 document instead of the human
//!   report (exit status unchanged); `--format json` prints the findings
//!   array.
//!
//! Exit status: 0 when clean (or `--baseline`), 1 on findings, 2 on usage
//! or I/O errors. The human report always ends with the finding count, so
//! a red CI log is diagnosable without re-running.
#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use analyzer::{
    lint_single_file, lint_workspace, render_baseline_json, render_json, render_sarif, Report,
};

enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut baseline = false;
    let mut format = Format::Human;
    let mut target: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = true,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "seccloud-lint: --format expects `json` or `sarif`, got {}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!("usage: seccloud-lint [--baseline] [--format json|sarif] [PATH]");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("seccloud-lint: unknown flag {arg}");
                return ExitCode::from(2);
            }
            _ if target.is_none() => target = Some(arg),
            _ => {
                eprintln!("seccloud-lint: at most one PATH accepted");
                return ExitCode::from(2);
            }
        }
    }

    let path = target.unwrap_or_else(|| ".".to_string());
    let path = Path::new(&path);
    let result = if path.is_file() {
        lint_single_file(path)
    } else {
        lint_workspace(path)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("seccloud-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };

    if baseline {
        print!("{}", render_baseline_json(&report));
        return ExitCode::SUCCESS;
    }

    match format {
        Format::Human => render_human(&report),
        Format::Json => print!("{}", render_json(&report)),
        Format::Sarif => print!("{}", render_sarif(&report)),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_human(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !report.allowances.is_empty() {
        println!("-- allowances ({}) --", report.allowances.len());
        for a in &report.allowances {
            println!("{}:{}: [{}] allowed: {}", a.file, a.line, a.rule, a.reason);
        }
    }
    println!(
        "seccloud-lint: {} file(s), {} finding(s), {} allowance(s)",
        report.files,
        report.findings.len(),
        report.allowances.len()
    );
}
