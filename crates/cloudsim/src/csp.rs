//! The Cloud Service Provider: task splitting across servers under SLAs
//! (paper Section III-A), with epoch-based Byzantine corruption
//! (Section III-B: "our adversary controls at most b servers for any given
//! epoch").

use seccloud_core::computation::{ComputationRequest, RequestItem};
use seccloud_core::storage::SignedBlock;
use seccloud_core::wire::WireMessage;
use seccloud_core::{CloudUser, Sio};
use seccloud_hash::HmacDrbg;

use crate::behavior::Behavior;
use crate::rpc::RpcError;
use crate::server::{CloudServer, JobHandle, ServerError};

/// A customized Service Level Agreement governing how the CSP allocates
/// resources for a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sla {
    /// Maximum sub-tasks handed to one server per request.
    pub max_subtasks_per_server: usize,
    /// How many servers each stored block is replicated to.
    pub replication: usize,
    /// Validity window granted to audit warrants (logical time units).
    pub warrant_validity: u64,
}

impl Default for Sla {
    fn default() -> Self {
        Self {
            max_subtasks_per_server: 64,
            replication: 2,
            warrant_validity: 1_000,
        }
    }
}

/// The outcome of dispatching one sub-request to one server.
#[derive(Debug)]
pub struct SubTaskExecution {
    /// Index of the executing server in the pool.
    pub server_index: usize,
    /// The original request-item indices this server handled.
    pub item_indices: Vec<usize>,
    /// The server's job handle (request slice + commitment), or the error
    /// it returned.
    pub result: Result<JobHandle, ServerError>,
}

/// A cloud service provider fronting a pool of servers.
///
/// "CSP could divide such a task into multiple sub-task and allow them
/// parallelly executed across hundreds of Cloud Computing servers."
pub struct Csp {
    servers: Vec<CloudServer>,
    sla: Sla,
    epoch: u64,
}

impl std::fmt::Debug for Csp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Csp")
            .field("servers", &self.servers.len())
            .field("epoch", &self.epoch)
            .field("sla", &self.sla)
            .finish()
    }
}

impl Csp {
    /// Spins up `n` honest servers registered with the SIO.
    pub fn new(sio: &Sio, n: usize, sla: Sla, seed: &[u8]) -> Self {
        let servers = (0..n)
            .map(|i| CloudServer::new(sio, &format!("cs-{i:03}"), Behavior::Honest, seed))
            .collect();
        Self {
            servers,
            sla,
            epoch: 0,
        }
    }

    /// The server pool.
    pub fn servers(&self) -> &[CloudServer] {
        &self.servers
    }

    /// Mutable access to one server (behaviour injection in experiments),
    /// or `None` when `index` is outside the pool — a typed miss instead of
    /// a bare-index panic in a protocol-adjacent path.
    pub fn server_mut(&mut self, index: usize) -> Option<&mut CloudServer> {
        self.servers.get_mut(index)
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The active SLA.
    pub fn sla(&self) -> &Sla {
        &self.sla
    }

    /// Advances to the next epoch: the Byzantine adversary corrupts a fresh
    /// set of at most `b` servers with `behavior`; everyone else reverts to
    /// honest.
    ///
    /// # Panics
    ///
    /// Panics if `b` exceeds the pool size.
    pub fn advance_epoch(&mut self, b: usize, behavior: Behavior, drbg: &mut HmacDrbg) {
        assert!(
            b <= self.servers.len(),
            "cannot corrupt more than n servers"
        );
        self.epoch += 1;
        for s in &mut self.servers {
            s.set_behavior(Behavior::Honest);
        }
        for idx in drbg.sample_distinct(self.servers.len() as u64, b as u64) {
            self.servers[idx as usize].set_behavior(behavior.clone());
        }
    }

    /// Indices of currently corrupted servers.
    pub fn corrupted(&self) -> Vec<usize> {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.behavior().is_protocol_honest())
            .map(|(i, _)| i)
            .collect()
    }

    /// Stores signed blocks with SLA-governed replication: block `i` lands
    /// on servers `i mod n, …, (i + replication − 1) mod n`.
    ///
    /// Returns the number of (block, server) placements accepted.
    pub fn store(&mut self, owner: &CloudUser, blocks: &[SignedBlock]) -> usize {
        let n = self.servers.len();
        let mut accepted = 0;
        for (i, block) in blocks.iter().enumerate() {
            for r in 0..self.sla.replication.min(n) {
                let target = (i + r) % n;
                if let Some(server) = self.servers.get_mut(target) {
                    accepted += server.store(owner, vec![block.clone()]);
                }
            }
        }
        accepted
    }

    /// Splits a request into per-server slices (round-robin chunks capped
    /// by the SLA) — the MapReduce-style decomposition of Section III-A.
    ///
    /// Returns `(server_index, slice, original item indices)` triples.
    pub fn split_request(
        &self,
        request: &ComputationRequest,
    ) -> Vec<(usize, ComputationRequest, Vec<usize>)> {
        let n = self.servers.len();
        if n == 0 || request.is_empty() {
            return Vec::new();
        }
        let chunk = request
            .len()
            .div_ceil(n)
            .min(self.sla.max_subtasks_per_server)
            .max(1);
        request
            .items
            .chunks(chunk)
            .enumerate()
            .map(|(c, items)| {
                let server = c % n;
                let indices = (c * chunk..c * chunk + items.len()).collect();
                (server, ComputationRequest::new(items.to_vec()), indices)
            })
            .collect()
    }

    /// Dispatches a request across the pool: splits it, routes every slice
    /// to a server *holding the required data* (data-locality scheduling,
    /// starting from the round-robin default), and collects the
    /// commitments. A slice whose data no server holds is still dispatched
    /// to the default server, which reports the missing block.
    ///
    /// Execution is genuinely parallel — "parallelly executed across
    /// hundreds of Cloud Computing servers" — with each server owned by one
    /// worker, so per-server state (job ids, behaviour dice) evolves
    /// exactly as under serial dispatch and the result keeps plan order.
    pub fn execute(
        &mut self,
        owner: &CloudUser,
        request: &ComputationRequest,
        auditor: &seccloud_ibs::VerifierPublic,
    ) -> Vec<SubTaskExecution> {
        self.execute_for_identity(owner.identity(), request, auditor)
    }

    /// Like [`Csp::execute`] but addressed by owner identity alone — the
    /// form a byte-level front end uses, since only the identity string
    /// crosses the wire.
    pub fn execute_for_identity(
        &mut self,
        owner_identity: &str,
        request: &ComputationRequest,
        auditor: &seccloud_ibs::VerifierPublic,
    ) -> Vec<SubTaskExecution> {
        let n = self.servers.len();
        let plan = self.split_request(request);
        // Routing pass (read-only): pick a data-holding server per slice.
        let mut per_server: Vec<Vec<(usize, ComputationRequest, Vec<usize>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (slot, (default_index, slice, item_indices)) in plan.into_iter().enumerate() {
            let positions: Vec<u64> = slice
                .items
                .iter()
                .flat_map(|i| i.positions.iter().copied())
                .collect();
            let server_index = (0..n)
                .map(|off| (default_index + off) % n)
                .find(|&idx| {
                    self.servers.get(idx).is_some_and(|srv| {
                        positions
                            .iter()
                            .all(|&p| srv.retrieve(owner_identity, p).is_some())
                    })
                })
                .unwrap_or(default_index);
            if let Some(bucket) = per_server.get_mut(server_index) {
                bucket.push((slot, slice, item_indices));
            }
        }
        // Dispatch pass: one worker per server, each executing its slices
        // in plan order against its exclusively-borrowed server.
        let owner_id = owner_identity.to_string();
        let grouped = seccloud_parallel::parallel_map_mut(&mut self.servers, |i, server| {
            per_server
                .get(i)
                .map_or(&[][..], Vec::as_slice)
                .iter()
                .map(|(slot, slice, item_indices)| {
                    let result = server.handle_computation(&owner_id, slice, auditor);
                    (
                        *slot,
                        SubTaskExecution {
                            server_index: i,
                            item_indices: item_indices.clone(),
                            result,
                        },
                    )
                })
                .collect::<Vec<_>>()
        });
        // Restore plan order. Every slice was routed to exactly one server,
        // so sorting the tagged results by slot reproduces the plan order
        // without any placeholder slots.
        let mut tagged: Vec<(usize, SubTaskExecution)> = grouped.into_iter().flatten().collect();
        tagged.sort_by_key(|(slot, _)| *slot);
        tagged.into_iter().map(|(_, exec)| exec).collect()
    }

    /// Byte-level front door: decodes a serialized [`ComputationRequest`]
    /// and dispatches it across the pool. Malformed bytes surface as a
    /// typed [`RpcError::Malformed`] — never a panic — so a faulty channel
    /// in front of the CSP degrades to an error, not undefined behaviour.
    ///
    /// # Errors
    ///
    /// [`RpcError::Malformed`] when `request_bytes` fails to decode.
    pub fn execute_wire(
        &mut self,
        owner_identity: &str,
        request_bytes: &[u8],
        auditor: &seccloud_ibs::VerifierPublic,
    ) -> Result<Vec<SubTaskExecution>, RpcError> {
        let request = ComputationRequest::from_wire(request_bytes)?;
        Ok(self.execute_for_identity(owner_identity, &request, auditor))
    }

    /// Builds the request items for a full-table scan of `positions` with
    /// one function per `group_size` positions (workload-generator helper).
    pub fn plan_scan(
        function: &seccloud_core::computation::ComputeFunction,
        positions: u64,
        group_size: u64,
    ) -> ComputationRequest {
        assert!(group_size > 0, "group size must be positive");
        let items = (0..positions)
            .step_by(group_size as usize)
            .map(|start| RequestItem {
                function: function.clone(),
                positions: (start..(start + group_size).min(positions)).collect(),
            })
            .collect();
        ComputationRequest::new(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agency::DesignatedAgency;
    use seccloud_core::computation::ComputeFunction;
    use seccloud_core::storage::DataBlock;

    fn world(n_servers: usize) -> (Sio, CloudUser, DesignatedAgency, Csp) {
        let sio = Sio::new(b"csp-tests");
        let user = sio.register("alice");
        let da = DesignatedAgency::new(&sio, "da", b"da-seed");
        let csp = Csp::new(&sio, n_servers, Sla::default(), b"pool");
        (sio, user, da, csp)
    }

    fn store_blocks(user: &CloudUser, da: &DesignatedAgency, csp: &mut Csp, n: u64) {
        let blocks: Vec<DataBlock> = (0..n)
            .map(|i| DataBlock::from_values(i, &[i, i + 1, i + 2]))
            .collect();
        // Sign for every server plus the DA so any replica can authenticate.
        let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
        verifiers.push(da.public().clone());
        let refs: Vec<&_> = verifiers.iter().collect();
        let signed = user.sign_blocks(&blocks, &refs);
        csp.store(user, &signed);
    }

    #[test]
    fn replication_places_blocks_on_multiple_servers() {
        let (_, user, da, mut csp) = world(4);
        store_blocks(&user, &da, &mut csp, 8);
        let total: usize = (0..4).map(|i| csp.servers()[i].stored_count("alice")).sum();
        assert_eq!(total, 16, "8 blocks × replication 2");
        // Each block reachable from at least one server.
        for pos in 0..8u64 {
            assert!(
                csp.servers()
                    .iter()
                    .any(|s| s.retrieve("alice", pos).is_some()),
                "position {pos}"
            );
        }
    }

    #[test]
    fn split_covers_all_items_exactly_once() {
        let (_, _, _, csp) = world(3);
        let request = Csp::plan_scan(&ComputeFunction::Sum, 20, 2); // 10 items
        let plan = csp.split_request(&request);
        let mut covered: Vec<usize> = plan.iter().flat_map(|(_, _, idx)| idx.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
        // Slice lengths match their index lists.
        for (_, slice, idx) in &plan {
            assert_eq!(slice.len(), idx.len());
        }
    }

    #[test]
    fn execute_and_audit_each_subtask() {
        // Full replication: any server can execute any slice.
        let sio = Sio::new(b"csp-exec");
        let user = sio.register("alice");
        let mut da = DesignatedAgency::new(&sio, "da", b"da-seed");
        let mut csp = Csp::new(
            &sio,
            3,
            Sla {
                replication: 3,
                ..Sla::default()
            },
            b"pool",
        );
        store_blocks(&user, &da, &mut csp, 12);
        let request = Csp::plan_scan(&ComputeFunction::Sum, 12, 2); // 6 items
        let executions = csp.execute(&user, &request, da.public());
        assert!(!executions.is_empty());
        for exec in &executions {
            let handle = exec.result.as_ref().expect("replicated storage suffices");
            let server = &csp.servers()[exec.server_index];
            let verdict = da
                .audit(server, handle, &user, handle.request.len(), 0)
                .unwrap();
            assert!(!verdict.detected, "honest pool passes");
        }
    }

    #[test]
    fn epoch_rotation_bounds_corruption() {
        let (_, _, _, mut csp) = world(10);
        let mut drbg = HmacDrbg::new(b"adversary");
        for _ in 0..5 {
            csp.advance_epoch(
                3,
                Behavior::ComputationCheater {
                    csc: 0.0,
                    guess_range: None,
                },
                &mut drbg,
            );
            assert_eq!(csp.corrupted().len(), 3);
        }
        assert_eq!(csp.epoch(), 5);
        // Reverting: epoch with b = 0 heals the pool.
        csp.advance_epoch(0, Behavior::Honest, &mut drbg);
        assert!(csp.corrupted().is_empty());
    }

    #[test]
    fn corrupted_subtasks_detected_under_full_audit() {
        // Full replication so every server can serve every slice and the
        // round-robin default routing reaches all four servers.
        let sio = Sio::new(b"csp-corruption");
        let user = sio.register("alice");
        let mut da = DesignatedAgency::new(&sio, "da", b"da-seed");
        let mut csp = Csp::new(
            &sio,
            4,
            Sla {
                replication: 4,
                ..Sla::default()
            },
            b"pool",
        );
        store_blocks(&user, &da, &mut csp, 16);
        let mut drbg = HmacDrbg::new(b"adv");
        csp.advance_epoch(
            2,
            Behavior::ComputationCheater {
                csc: 0.0,
                guess_range: None,
            },
            &mut drbg,
        );
        let corrupted = csp.corrupted();
        let request = Csp::plan_scan(&ComputeFunction::Sum, 16, 2); // 8 items
        let executions = csp.execute(&user, &request, da.public());
        let mut caught = 0;
        let mut clean = 0;
        for exec in &executions {
            let Ok(handle) = exec.result.as_ref() else {
                continue;
            };
            let server = &csp.servers()[exec.server_index];
            let verdict = da
                .audit(server, handle, &user, handle.request.len(), 0)
                .unwrap();
            if corrupted.contains(&exec.server_index) {
                assert!(verdict.detected, "corrupted server must be caught");
                caught += 1;
            } else {
                assert!(!verdict.detected, "honest server must pass");
                clean += 1;
            }
        }
        assert!(caught > 0, "some slice landed on a corrupted server");
        assert!(clean > 0, "some slice landed on an honest server");
    }

    #[test]
    #[should_panic(expected = "cannot corrupt")]
    fn overcorruption_panics() {
        let (_, _, _, mut csp) = world(2);
        let mut drbg = HmacDrbg::new(b"x");
        csp.advance_epoch(3, Behavior::Honest, &mut drbg);
    }

    #[test]
    fn server_mut_is_total_over_indices() {
        let (_, _, _, mut csp) = world(2);
        csp.server_mut(0)
            .expect("in range")
            .set_behavior(Behavior::Honest);
        assert!(csp.server_mut(1).is_some());
        assert!(
            csp.server_mut(2).is_none(),
            "out of range is a typed miss, not a panic"
        );
    }

    #[test]
    fn plan_scan_shapes() {
        let r = Csp::plan_scan(&ComputeFunction::Max, 10, 3);
        assert_eq!(r.len(), 4); // 3+3+3+1
        assert_eq!(r.items[3].positions, vec![9]);
    }
}
