//! Benches for the Merkle commitment layer (paper eq. 6, Fig. 3), the
//! multi-proof-vs-independent-paths ablation from DESIGN.md, and the
//! parallel-vs-serial tree-build ablation.

use seccloud_bench::Bench;
use seccloud_merkle::MerkleTree;

fn data(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("y{i}||p{i}").into_bytes()).collect()
}

fn bench_build() {
    let mut g = Bench::group("merkle_build");
    for &n in &[64usize, 1024, 16_384] {
        let d = data(n);
        let serial = g.bench(&format!("serial/{n}"), || {
            MerkleTree::from_data(d.iter().map(Vec::as_slice))
        });
        let leaves: Vec<&[u8]> = d.iter().map(Vec::as_slice).collect();
        let parallel = g.bench(&format!("parallel/{n}"), || {
            MerkleTree::from_data_parallel(&leaves)
        });
        println!("   -> parallel speedup at n={n}: {:.2}x", serial / parallel);
    }
}

fn bench_prove_verify() {
    let mut g = Bench::group("merkle_prove_verify");
    let n = 4096;
    let d = data(n);
    let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
    let root = tree.root();
    let proof = tree.prove(n / 2).unwrap();

    g.bench("prove_single", || tree.prove(n / 2).unwrap());
    g.bench("verify_single", || {
        assert!(proof.verify(&root, &d[n / 2], n / 2))
    });
}

fn bench_multiproof_ablation() {
    // DESIGN.md ablation: one multi-proof for t samples vs t single paths.
    let mut g = Bench::group("merkle_multiproof");
    let n = 4096;
    let d = data(n);
    let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
    let root = tree.root();

    for &t in &[8usize, 33] {
        let indices: Vec<usize> = (0..t).map(|i| i * (n / t)).collect();
        g.bench(&format!("multi/{t}"), || {
            tree.prove_multi(&indices).unwrap()
        });
        g.bench(&format!("singles/{t}"), || {
            indices
                .iter()
                .map(|&i| tree.prove(i).unwrap())
                .collect::<Vec<_>>()
        });
        let multi = tree.prove_multi(&indices).unwrap();
        let claims: Vec<(usize, &[u8])> = indices.iter().map(|&i| (i, d[i].as_slice())).collect();
        g.bench(&format!("verify_multi/{t}"), || {
            assert!(multi.verify(&root, &claims))
        });
    }
}

fn main() {
    bench_build();
    bench_prove_verify();
    bench_multiproof_ablation();
}
