//! [`NetTransport`]: the `WireTransport` a verifier dials over TCP.
//!
//! The transport holds at most one live [`TcpStream`] and reconnects
//! lazily: any socket failure drops the stream, and the next call dials
//! again. One transparent resend is allowed per call, and only when a
//! *reused* connection dies at a frame boundary — that is the signature of
//! the server's per-connection request cap (or an idle close), not of a
//! failing exchange. A timeout is never transparently resent: the request
//! may have been executed, and deciding whether to re-issue it belongs to
//! the resilience layer's retry policy, not to the socket.
//!
//! Peer identities ([`peer_verifier`]/[`peer_signer`]) are supplied at
//! construction from the SIO/PKI, exactly as the `WireTransport` contract
//! requires — nothing read from the channel can influence who the client
//! *expects* to be talking to, so a man-in-the-middle gains nothing by
//! rewriting identity strings.
//!
//! Error mapping keeps the taxonomy intact end to end:
//!
//! * socket conditions surface as [`RpcError::Malformed`] wrapping the
//!   framing layer's [`WireError`] (all transient except `FrameTooLarge`);
//! * a `Failed` response carries the server's typed [`RpcError`]
//!   verbatim;
//! * [`rpc_retrieve`](WireTransport::rpc_retrieve) returns `Some(vec![])`
//!   on channel damage rather than `None` — `None` is the *authoritative*
//!   "no such block" answer, and a flaky socket must never be allowed to
//!   impersonate it (the empty bytes fail `SignedBlock` decoding upstream,
//!   which the resilience layer already treats as transient).

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use seccloud_cloudsim::rpc::{RpcError, WireTransport};
use seccloud_core::wire::{WireError, WireMessage};
use seccloud_ibs::{UserPublic, VerifierPublic};

use crate::frame::{read_frame, write_frame};
use crate::proto::{NetRequest, NetResponse};

/// Tuning for a [`NetTransport`].
#[derive(Clone, Debug)]
pub struct NetClientConfig {
    /// Dial deadline in milliseconds.
    pub connect_timeout_ms: u64,
    /// Per-call read deadline in milliseconds.
    pub read_timeout_ms: u64,
    /// Per-call write deadline in milliseconds.
    pub write_timeout_ms: u64,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout_ms: 1_000,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
        }
    }
}

/// A `WireTransport` speaking the framed protocol over one TCP connection,
/// reconnecting on drop.
pub struct NetTransport {
    addr: SocketAddr,
    config: NetClientConfig,
    stream: Option<TcpStream>,
    peer_verifier: VerifierPublic,
    peer_signer: UserPublic,
    reconnects: u64,
}

impl std::fmt::Debug for NetTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NetTransport({}, connected={})",
            self.addr,
            self.stream.is_some()
        )
    }
}

impl NetTransport {
    /// Creates a transport for `addr`; the socket is dialed lazily on the
    /// first call. `peer_verifier`/`peer_signer` are the SIO-anchored
    /// identities of the far end.
    pub fn new(
        addr: SocketAddr,
        peer_verifier: VerifierPublic,
        peer_signer: UserPublic,
        config: NetClientConfig,
    ) -> Self {
        Self {
            addr,
            config,
            stream: None,
            peer_verifier,
            peer_signer,
            reconnects: 0,
        }
    }

    /// How many times the transport has (re)dialed the server.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn ensure_stream(&mut self) -> Result<(), WireError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(
            &self.addr,
            Duration::from_millis(self.config.connect_timeout_ms.max(1)),
        )
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WireError::Timeout,
            _ => WireError::ConnectionLost,
        })?;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(
            self.config.read_timeout_ms.max(1),
        )));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(
            self.config.write_timeout_ms.max(1),
        )));
        let _ = stream.set_nodelay(true);
        self.stream = Some(stream);
        self.reconnects = self.reconnects.saturating_add(1);
        Ok(())
    }

    /// One request/response exchange on the current stream.
    fn exchange(&mut self, request_bytes: &[u8]) -> Result<NetResponse, WireError> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(WireError::ConnectionLost);
        };
        write_frame(stream, request_bytes)?;
        let payload = read_frame(stream)?;
        NetResponse::from_wire(&payload)
    }

    /// Sends `request`, reconnecting and transparently resending once if a
    /// *reused* connection turns out to be dead at the frame boundary.
    fn call(&mut self, request: &NetRequest) -> Result<NetResponse, RpcError> {
        let request_bytes = request.to_wire();
        let mut fresh = self.stream.is_none();
        for attempt in 0..2u8 {
            if let Err(e) = self.ensure_stream() {
                return Err(RpcError::Malformed(e));
            }
            match self.exchange(&request_bytes) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Whatever happened, this socket is suspect.
                    self.stream = None;
                    let stale_close = matches!(e, WireError::ConnectionLost) && !fresh;
                    if attempt == 0 && stale_close {
                        // The server closed between requests (request cap /
                        // idle): redial and resend — nothing was executed.
                        fresh = true;
                        continue;
                    }
                    return Err(RpcError::Malformed(e));
                }
            }
        }
        Err(RpcError::Malformed(WireError::ConnectionLost))
    }
}

impl WireTransport for NetTransport {
    fn rpc_store(&mut self, owner_identity: &str, body: &[u8]) -> Result<u64, RpcError> {
        match self.call(&NetRequest::Store {
            owner: owner_identity.to_owned(),
            body: body.to_vec(),
        })? {
            NetResponse::Stored(n) => Ok(n),
            NetResponse::Failed(e) => Err(e),
            // A response of the wrong shape is channel damage, not an
            // authenticated decision: classify transient.
            _ => Err(RpcError::Malformed(WireError::BadElement)),
        }
    }

    fn rpc_compute(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        body: &[u8],
    ) -> Result<(u64, Vec<u8>), RpcError> {
        match self.call(&NetRequest::Compute {
            owner: owner_identity.to_owned(),
            auditor: auditor_identity.to_owned(),
            body: body.to_vec(),
        })? {
            NetResponse::Computed { job_id, commitment } => Ok((job_id, commitment)),
            NetResponse::Failed(e) => Err(e),
            _ => Err(RpcError::Malformed(WireError::BadElement)),
        }
    }

    fn rpc_audit(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        job_id: u64,
        challenge_bytes: &[u8],
        warrant_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, RpcError> {
        match self.call(&NetRequest::Audit {
            owner: owner_identity.to_owned(),
            auditor: auditor_identity.to_owned(),
            job_id,
            challenge: challenge_bytes.to_vec(),
            warrant: warrant_bytes.to_vec(),
            now,
        })? {
            NetResponse::Audited(bytes) => Ok(bytes),
            NetResponse::Failed(e) => Err(e),
            _ => Err(RpcError::Malformed(WireError::BadElement)),
        }
    }

    fn rpc_retrieve(&mut self, owner_identity: &str, position: u64) -> Option<Vec<u8>> {
        match self.call(&NetRequest::Retrieve {
            owner: owner_identity.to_owned(),
            position,
        }) {
            Ok(NetResponse::Retrieved(opt)) => opt,
            // `None` is reserved for the server's authoritative "absent"
            // answer. Channel damage returns undecodable bytes instead,
            // which the caller's SignedBlock decode rejects as transient.
            Ok(_) | Err(_) => Some(Vec::new()),
        }
    }

    fn peer_verifier(&self) -> VerifierPublic {
        self.peer_verifier.clone()
    }

    fn peer_signer(&self) -> UserPublic {
        self.peer_signer.clone()
    }
}
