//! Deterministic virtual time.
//!
//! The resilience layer never reads a wall clock: deadlines, backoff waits
//! and latency charges all advance a [`VirtualClock`], so a recovery
//! schedule is a pure function of its seeds and replays bit-for-bit.

use seccloud_hash::HmacDrbg;

/// A monotonically advancing logical clock, in milliseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        Self { now_ms: start_ms }
    }

    /// The current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock by `ms` (saturating — the clock never wraps).
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// A per-call latency model: every RPC attempt charges
/// `base_ms + uniform[0, jitter_ms]` of virtual time. Attempts whose charge
/// exceeds the policy's per-call deadline surface as timeouts, which the
/// transport classifies as transient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed latency charged to every attempt.
    pub base_ms: u64,
    /// Upper bound of the DRBG-drawn additive jitter.
    pub jitter_ms: u64,
}

impl LatencyModel {
    /// Draws one attempt's latency from `drbg`.
    pub fn sample(&self, drbg: &mut HmacDrbg) -> u64 {
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            drbg.next_below(self.jitter_ms + 1)
        };
        self.base_ms.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new(5);
        assert_eq!(c.now_ms(), 5);
        c.advance(10);
        c.advance(0);
        assert_eq!(c.now_ms(), 15);
        c.advance(u64::MAX);
        assert_eq!(c.now_ms(), u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn latency_sample_is_bounded_and_deterministic() {
        let model = LatencyModel {
            base_ms: 20,
            jitter_ms: 7,
        };
        let draw = |seed: &[u8]| {
            let mut drbg = HmacDrbg::new(seed);
            (0..50).map(|_| model.sample(&mut drbg)).collect::<Vec<_>>()
        };
        let a = draw(b"lat");
        assert!(a.iter().all(|&l| (20..=27).contains(&l)));
        assert_eq!(a, draw(b"lat"), "same seed, same latency stream");
        assert_ne!(a, draw(b"other"), "different seeds diverge");
    }

    #[test]
    fn zero_jitter_is_constant() {
        let model = LatencyModel {
            base_ms: 3,
            jitter_ms: 0,
        };
        let mut drbg = HmacDrbg::new(b"zj");
        assert!((0..10).all(|_| model.sample(&mut drbg) == 3));
    }
}
