//! Clean fixture: exercises every rule's *happy* path — typed errors,
//! `.get(..)` indexing, a wiped secret with a redacted `Debug`, `ct_eq`
//! for tag comparison, a `SAFETY:`-commented unsafe block, and one
//! annotated allowance. Must produce zero findings under all rules.
//! Never compiled — lexed by the analyzer self-tests only.

pub enum DecodeError {
    Truncated,
}

pub fn take_u8(data: &[u8], pos: usize) -> Result<u8, DecodeError> {
    data.get(pos).copied().ok_or(DecodeError::Truncated)
}

// lint: secret
#[derive(Clone)]
pub struct SessionKey {
    bytes: [u8; 32],
}

impl Drop for SessionKey {
    fn drop(&mut self) {
        for b in self.bytes.iter_mut() {
            *b = 0;
        }
    }
}

impl core::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SessionKey").finish_non_exhaustive()
    }
}

fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut acc = a.len() ^ b.len();
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= (x ^ y) as usize;
    }
    acc == 0
}

pub fn verify_tag(tag: &[u8], expected_tag: &[u8]) -> bool {
    ct_eq(tag, expected_tag)
}

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` is valid for reads (fixture example).
    unsafe { *p }
}

pub fn checked_invariant(v: &[u8]) -> u8 {
    // lint: allow(panic, reason=fixture demonstrating the escape hatch)
    v.first().copied().expect("caller keeps v non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v = vec![1u8];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
