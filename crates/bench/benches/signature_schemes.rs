//! Criterion benches for the Table-II comparator schemes: RSA, ECDSA and
//! BGLS signing/verification (the SecCloud rows live in `batch_verify.rs`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use seccloud_baselines::bgls::{aggregate, verify_aggregate, BlsKeyPair, BlsPublicKey};
use seccloud_baselines::ecdsa::EcdsaKeyPair;
use seccloud_baselines::rsa::RsaKeyPair;

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_1024");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let key = RsaKeyPair::generate(512, b"bench-rsa");
    let sig = key.sign(b"message");
    group.bench_function("sign", |b| b.iter(|| key.sign(b"message")));
    group.bench_function("verify", |b| {
        b.iter(|| assert!(key.public().verify(b"message", &sig)))
    });
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecdsa_bn254");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let key = EcdsaKeyPair::generate(b"bench-ecdsa");
    let sig = key.sign(b"message");
    group.bench_function("sign", |b| b.iter(|| key.sign(b"message")));
    group.bench_function("verify", |b| {
        b.iter(|| assert!(key.public().verify(b"message", &sig)))
    });
    group.finish();
}

fn bench_bgls(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgls");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let key = BlsKeyPair::generate(b"bench-bls");
    let sig = key.sign(b"message");
    group.bench_function("sign", |b| b.iter(|| key.sign(b"message")));
    group.bench_function("verify", |b| {
        b.iter(|| assert!(key.public().verify(b"message", &sig)))
    });

    // Aggregate of 8 distinct-message signatures: (n+1) pairings.
    let keys: Vec<BlsKeyPair> = (0..8)
        .map(|i| BlsKeyPair::generate(format!("agg-{i}").as_bytes()))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..8u32).map(|i| format!("m{i}").into_bytes()).collect();
    let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
    let agg = aggregate(&sigs);
    let pairs: Vec<(&BlsPublicKey, &[u8])> = keys
        .iter()
        .zip(&msgs)
        .map(|(k, m)| (k.public(), m.as_slice()))
        .collect();
    group.bench_function("verify_aggregate_8", |b| {
        b.iter(|| assert!(verify_aggregate(&pairs, &agg)))
    });
    group.finish();
}

criterion_group!(benches, bench_rsa, bench_ecdsa, bench_bgls);
criterion_main!(benches);
