//! A simulated cloud for exercising SecCloud end-to-end
//! (paper Sections III-A and III-B).
//!
//! The paper evaluates its protocol analytically and in Matlab; this crate
//! supplies the substrate the paper assumes: a cloud service provider
//! ([`Csp`]) that splits computation requests across `n` servers
//! MapReduce-style under an [`Sla`], [`CloudServer`]s that store signed
//! blocks and build commitments, a [`DesignatedAgency`] that drives audits,
//! and a Byzantine [`behavior::Behavior`] model covering every adversary of
//! Section III-B:
//!
//! * **Storage-cheating** — delete or corrupt stored blocks (semi-honest /
//!   malicious cases) or serve data from wrong positions.
//! * **Computation-cheating** — skip sub-tasks and return guesses
//!   (`CSC`, range-`R` guessing), or compute on wrong-position data
//!   (`SSC`).
//! * **Privacy-cheating** — leak designated signatures to a non-designated
//!   buyer ([`privacy`]), who provably learns nothing.
//!
//! [`montecarlo`] replays thousands of logical audits to validate the
//! paper's detection-probability formulas (eq. 10/12/14) against
//! simulation.
//!
//! # Examples
//!
//! ```
//! use seccloud_cloudsim::{behavior::Behavior, CloudServer, DesignatedAgency};
//! use seccloud_core::{storage::DataBlock, Sio};
//! use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
//!
//! let sio = Sio::new(b"sim-doc");
//! let user = sio.register("alice");
//! let mut server = CloudServer::new(&sio, "cs-01", Behavior::Honest, b"srv");
//! let mut da = DesignatedAgency::new(&sio, "da", b"agency");
//!
//! let blocks: Vec<DataBlock> =
//!     (0..8).map(|i| DataBlock::from_values(i, &[i, i + 1])).collect();
//! server.store(&user, user.sign_blocks(&blocks, &[server.public(), da.public()]));
//!
//! let request = ComputationRequest::new(vec![RequestItem {
//!     function: ComputeFunction::Sum,
//!     positions: vec![0, 1, 2],
//! }]);
//! let job = server.handle_computation(&user.identity().to_string(), &request, da.public()).unwrap();
//! let verdict = da.audit(&server, &job, &user, 1, 0).unwrap();
//! assert!(!verdict.detected);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agency;
pub mod behavior;
pub mod concurrent;
pub mod csp;
pub mod montecarlo;
pub mod privacy;
pub mod rpc;
pub mod server;

pub use agency::{AuditVerdict, DesignatedAgency};
pub use csp::{Csp, Sla, SubTaskExecution};
pub use server::{CloudServer, JobHandle, ServerError};
