//! Backend-equivalence property suite: every arithmetic backend must be
//! bit-for-bit indistinguishable from the strict `Reference` oracle.
//!
//! The limb-level properties drive each backend through `arch::*_with`
//! (explicit backend — no global state), so they exercise whichever
//! backends this machine supports, including the MULX/ADCX path when the
//! CPU has BMI2+ADX. Generators mix uniform residues with the adversarial
//! edge values for lazy reduction: `0`, `1`, `2`, `p−1`, `p−2`, `(p−1)/2`
//! and the Montgomery image of one. Non-canonical raw integers (`p ± ε`)
//! are covered through the `from_u256` canonicalization property.
//!
//! Run the whole suite under a forced backend with e.g.
//! `SECCLOUD_ARCH=generic cargo test` — the env override changes the
//! auto-detected backend that all high-level code (`pairing`, GLV, the
//! tower) dispatches through, while these properties still compare every
//! available backend pairwise.

use seccloud_bigint::U256;
use seccloud_pairing::arch::{self, Backend};
use seccloud_pairing::{
    hash_to_g1, hash_to_g2, pairing, pairing_prepared, FieldElement, Fp, Fp12, Fp2, Fp6, Fr,
    G2Prepared, G1,
};
use seccloud_testkit::{forall, Tape};

/// A canonical residue mod `p`, biased heavily toward reduction edges.
fn fp_limbs(t: &mut Tape) -> [u64; 4] {
    let p = Fp::modulus();
    match t.next_below(10) {
        0 => [0u64; 4],
        1 => [1, 0, 0, 0],
        2 => [2, 0, 0, 0],
        3 => *p.wrapping_sub(&U256::ONE).limbs(),
        4 => *p.wrapping_sub(&U256::from_u64(2)).limbs(),
        5 => *p.shr(1).limbs(),
        6 => *Fp::one().repr(), // the Montgomery image R mod p
        _ => {
            let raw = U256::from_limbs(std::array::from_fn(|_| t.next_u64()));
            *Fp::from_u256(&raw).repr()
        }
    }
}

#[test]
fn mont_mul_matches_reference_on_every_backend() {
    forall(
        "arch/mont_mul",
        |t| (fp_limbs(t), fp_limbs(t)),
        |(a, b)| {
            let m = &Fp::MODULUS;
            let want = arch::mont_mul_with(Backend::Reference, a, b, m, Fp::NEG_INV);
            for bk in Backend::available() {
                let got = arch::mont_mul_with(bk, a, b, m, Fp::NEG_INV);
                if got != want {
                    return Err(format!("{bk:?}: {got:?} != reference {want:?}"));
                }
                if U256::from_limbs(got) >= Fp::modulus() {
                    return Err(format!("{bk:?}: non-canonical output {got:?}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn add_sub_neg_match_reference_on_every_backend() {
    forall(
        "arch/add_sub_neg",
        |t| (fp_limbs(t), fp_limbs(t)),
        |(a, b)| {
            let m = &Fp::MODULUS;
            for bk in Backend::available() {
                let trio = [
                    (
                        "add",
                        arch::add_mod_with(bk, a, b, m),
                        arch::add_mod_with(Backend::Reference, a, b, m),
                    ),
                    (
                        "sub",
                        arch::sub_mod_with(bk, a, b, m),
                        arch::sub_mod_with(Backend::Reference, a, b, m),
                    ),
                    (
                        "neg",
                        arch::neg_mod_with(bk, a, m),
                        arch::neg_mod_with(Backend::Reference, a, m),
                    ),
                ];
                for (op, got, want) in trio {
                    if got != want {
                        return Err(format!("{bk:?} {op}: {got:?} != {want:?}"));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn fp2_kernels_match_reference_on_every_backend() {
    forall(
        "arch/fp2_mul_sqr",
        |t| (fp_limbs(t), fp_limbs(t), fp_limbs(t), fp_limbs(t)),
        |(a0, a1, b0, b1)| {
            let m = &Fp::MODULUS;
            let want_mul =
                arch::fp2_mul_with(Backend::Reference, a0, a1, b0, b1, m, &Fp::M2, Fp::NEG_INV);
            let want_sqr = arch::fp2_sqr_with(Backend::Reference, a0, a1, m, Fp::NEG_INV);
            for bk in Backend::available() {
                let got_mul = arch::fp2_mul_with(bk, a0, a1, b0, b1, m, &Fp::M2, Fp::NEG_INV);
                if got_mul != want_mul {
                    return Err(format!("{bk:?} fp2_mul: {got_mul:?} != {want_mul:?}"));
                }
                let got_sqr = arch::fp2_sqr_with(bk, a0, a1, m, Fp::NEG_INV);
                if got_sqr != want_sqr {
                    return Err(format!("{bk:?} fp2_sqr: {got_sqr:?} != {want_sqr:?}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn from_u256_canonicalizes_out_of_range_inputs() {
    // Non-canonical raw integers (p ± ε, 2p ± ε, MAX) must enter the field
    // already reduced, so no lazy-reduction bound ever sees limbs ≥ p.
    forall(
        "arch/from_u256_canonical",
        |t| {
            let p = Fp::modulus();
            let eps = U256::from_u64(t.next_below(4));
            match t.next_below(5) {
                0 => p.wrapping_add(&eps),
                1 => p.wrapping_sub(&eps),
                2 => p.shl(1).wrapping_add(&eps),
                3 => U256::MAX.wrapping_sub(&eps),
                _ => U256::from_limbs(std::array::from_fn(|_| t.next_u64())),
            }
        },
        |raw| {
            let x = Fp::from_u256(raw);
            if U256::from_limbs(*x.repr()) >= Fp::modulus() {
                return Err(format!("from_u256({raw:?}) left non-canonical limbs"));
            }
            // And the value is correct: x ≡ raw (mod p), checked additively.
            let p = Fp::modulus();
            let mut reduced = *raw;
            while reduced >= p {
                reduced = reduced.wrapping_sub(&p);
            }
            if x.to_u256() != reduced {
                return Err(format!("from_u256({raw:?}) wrong residue"));
            }
            Ok(())
        },
    );
}

#[test]
fn vartime_inverse_matches_fermat_inverse() {
    // The Euclidean fast path used on public Miller-loop operands must
    // agree with the constant-time Fermat ladder everywhere, including the
    // reduction edge values.
    forall(
        "arch/inverse_vartime",
        |t| (fp_limbs(t), fp_limbs(t)),
        |(a, b)| {
            let x = Fp::from_repr_unchecked(*a);
            if x.inverse_vartime() != x.inverse() {
                return Err(format!("Fp inverse mismatch for {x:?}"));
            }
            let x2 = Fp2::new(x, Fp::from_repr_unchecked(*b));
            if x2.inverse_vartime() != x2.inverse() {
                return Err(format!("Fp2 inverse mismatch for {x2:?}"));
            }
            Ok(())
        },
    );
}

/// Whole-protocol equivalence under each backend via the process-wide
/// switch: pairings, the tower, and GLV must produce identical canonical
/// values no matter which backend computed them. Runs in one test fn so
/// the `set_backend` round-trip is not racing itself.
#[test]
fn full_pairing_and_glv_agree_across_backends() {
    let initial = arch::active();
    let p = hash_to_g1(b"arch-eq-p").to_affine();
    let q = hash_to_g2(b"arch-eq-q").to_affine();
    let q_prep = G2Prepared::from(&q);
    let k = Fr::hash(b"arch-eq-k");
    let x2 = Fp2::from_hash(b"arch-eq", b"x2");
    let x12 = Fp12::new(
        Fp6::new(x2, x2.square(), x2.neg()),
        Fp6::new(x2.add(&x2), x2, x2.square().square()),
    );

    let mut results = Vec::new();
    for bk in Backend::available() {
        arch::set_backend(bk);
        results.push((
            bk,
            pairing(&p, &q),
            pairing_prepared(&p, &q_prep),
            G1::generator().mul_fr(&k),
            x12.mul(&x12.square()),
            x12.inverse().expect("nonzero"),
        ));
    }
    arch::set_backend(initial);

    let (_, e0, ep0, g0, m0, i0) = &results[0];
    for (bk, e, ep, g, m, i) in &results[1..] {
        assert_eq!(e, e0, "pairing differs on {bk:?}");
        assert_eq!(ep, ep0, "prepared pairing differs on {bk:?}");
        assert_eq!(g, g0, "GLV scalar mul differs on {bk:?}");
        assert_eq!(m, m0, "Fp12 mul differs on {bk:?}");
        assert_eq!(i, i0, "Fp12 inverse differs on {bk:?}");
    }
    // And the pairing value is a genuine pairing (consistency, not just
    // backend agreement): bilinearity spot-check on the first backend.
    assert_eq!(
        pairing(&G1::generator().mul_fr(&k).to_affine(), &q),
        pairing(&G1::generator().to_affine(), &q).pow(&k),
    );
}
