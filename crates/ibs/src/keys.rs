//! System initialization and identity key extraction (paper Section V-A).

use std::sync::Arc;

use seccloud_hash::HmacDrbg;
use seccloud_pairing::{hash_to_g1, hash_to_g2, Fr, G2Prepared, G1, G2};

/// Public system parameters published by the SIO after setup.
///
/// `params = (G1, G2, q, ê, P, P_pub, H, H1, H2)` in the paper; the groups,
/// pairing and hash functions are fixed by this workspace, so only the
/// master public keys vary per deployment. Both `s·P₁` and `s·P₂` are
/// published: the former is used by the ECDSA-style comparisons, the latter
/// by public verification of the *undesignated* signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemParams {
    p_pub_g1: G1,
    p_pub_g2: G2,
}

impl SystemParams {
    /// The master public key `s·P₁ ∈ G1`.
    pub fn p_pub_g1(&self) -> &G1 {
        &self.p_pub_g1
    }

    /// The master public key `s·P₂ ∈ G2`.
    pub fn p_pub_g2(&self) -> &G2 {
        &self.p_pub_g2
    }
}

/// The SIO's master secret `s` plus the derived public parameters.
///
/// In deployment the SIO is "the government or a trusted third party"
/// (paper footnote 1); registration is off-line.
// lint: secret
#[derive(Clone)]
pub struct MasterKey {
    s: Fr,
    params: SystemParams,
}

impl Drop for MasterKey {
    fn drop(&mut self) {
        self.wipe();
    }
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the master secret.
        f.debug_struct("MasterKey")
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl MasterKey {
    /// Zeros the master scalar; called from `Drop`. The compromise of `s`
    /// breaks every identity in the system (paper Section V-A), so it must
    /// not survive in freed memory.
    fn wipe(&mut self) {
        seccloud_hash::wipe_copy(&mut self.s, Fr::from_u64(0));
    }

    /// Generates a master key deterministically from seed bytes.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::new(seed);
        Self::from_drbg(&mut drbg)
    }

    /// Generates a master key from an existing DRBG stream.
    pub fn from_drbg(drbg: &mut HmacDrbg) -> Self {
        let s = Fr::random_nonzero(drbg);
        Self::from_scalar(s)
    }

    /// Wraps an explicit master scalar (test hook; prefer
    /// [`MasterKey::from_seed`]).
    pub fn from_scalar(s: Fr) -> Self {
        let params = SystemParams {
            p_pub_g1: G1::generator().mul_fr_ct(&s),
            p_pub_g2: G2::generator().mul_fr_ct(&s),
        };
        Self { s, params }
    }

    /// The public system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Extracts a *user* key: `Q_ID = H1(ID) ∈ G1`, `sk_ID = s·Q_ID`
    /// (paper eq. 4).
    pub fn extract_user(&self, identity: &str) -> UserKey {
        let q = hash_to_g1(identity.as_bytes());
        UserKey {
            public: UserPublic {
                identity: identity.to_owned(),
                q,
            },
            sk: q.mul_fr_ct(&self.s),
        }
    }

    /// Extracts a *verifier* key (cloud server or designated agency):
    /// `Q_V = H1(ID) ∈ G2`, `sk_V = s·Q_V`.
    pub fn extract_verifier(&self, identity: &str) -> VerifierKey {
        let q = hash_to_g2(identity.as_bytes());
        VerifierKey {
            public: VerifierPublic {
                identity: identity.to_owned(),
                q,
            },
            sk: q.mul_fr_ct(&self.s),
        }
    }
}

/// A user's public identity data: the identity string and `Q_ID = H1(ID)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserPublic {
    identity: String,
    q: G1,
}

impl UserPublic {
    /// Recomputes the public data for an identity (anyone can do this —
    /// that is the point of identity-based cryptography).
    pub fn from_identity(identity: &str) -> Self {
        Self {
            identity: identity.to_owned(),
            q: hash_to_g1(identity.as_bytes()),
        }
    }

    /// The identity string.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// The identity public key `Q_ID ∈ G1`.
    pub fn q(&self) -> &G1 {
        &self.q
    }
}

/// A user's extracted key pair.
// lint: secret
#[derive(Clone)]
pub struct UserKey {
    public: UserPublic,
    sk: G1,
}

impl Drop for UserKey {
    fn drop(&mut self) {
        self.wipe();
    }
}

impl std::fmt::Debug for UserKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserKey")
            .field("identity", &self.public.identity)
            .finish_non_exhaustive()
    }
}

impl UserKey {
    /// Zeros the identity secret key; called from `Drop`.
    fn wipe(&mut self) {
        seccloud_hash::wipe_copy(&mut self.sk, G1::identity());
    }

    /// The public part.
    pub fn public(&self) -> &UserPublic {
        &self.public
    }

    /// The identity string.
    pub fn identity(&self) -> &str {
        &self.public.identity
    }

    /// The secret key `sk_ID = s·Q_ID ∈ G1` (crate-internal).
    pub(crate) fn sk(&self) -> &G1 {
        &self.sk
    }
}

/// A verifier's public identity data: identity string and `Q_V ∈ G2`.
///
/// `Q_V` is a fixed pairing argument for the verifier's lifetime (every
/// [`crate::designate`] call pairs against it), so its Miller-loop line
/// coefficients are resolved through the process-wide
/// [`seccloud_pairing::cache`] LRU — *every* instance recomputed from the
/// same identity (e.g. a fresh decode on each wire audit) shares one
/// preparation, instead of each instance re-preparing privately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierPublic {
    identity: String,
    q: G2,
}

impl VerifierPublic {
    /// Recomputes the public data for a verifier identity.
    pub fn from_identity(identity: &str) -> Self {
        Self {
            identity: identity.to_owned(),
            q: hash_to_g2(identity.as_bytes()),
        }
    }

    /// The identity string.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// The identity public key `Q_V ∈ G2`.
    pub fn q(&self) -> &G2 {
        &self.q
    }

    /// The prepared form of `Q_V`, shared through the process-wide
    /// prepared-key cache (prepared on first use anywhere, then amortized
    /// across every instance naming the same point).
    pub fn q_prepared(&self) -> Arc<G2Prepared> {
        seccloud_pairing::cache::global().get_or_prepare(&self.q.to_affine())
    }
}

/// A verifier's extracted key pair (cloud server / designated agency).
// lint: secret
#[derive(Clone)]
pub struct VerifierKey {
    public: VerifierPublic,
    sk: G2,
}

impl Drop for VerifierKey {
    fn drop(&mut self) {
        self.wipe();
    }
}

impl std::fmt::Debug for VerifierKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifierKey")
            .field("identity", &self.public.identity)
            .finish_non_exhaustive()
    }
}

impl VerifierKey {
    /// Zeros the identity secret key and drops its cached prepared form
    /// from the secret prepared-key cache (the removed `G2Prepared` wipes
    /// its line coefficients when the last handle drops); called from
    /// `Drop`.
    fn wipe(&mut self) {
        seccloud_pairing::cache::secret().remove(&self.sk.to_affine());
        seccloud_hash::wipe_copy(&mut self.sk, G2::identity());
    }

    /// The public part.
    pub fn public(&self) -> &VerifierPublic {
        &self.public
    }

    /// The identity string.
    pub fn identity(&self) -> &str {
        &self.public.identity
    }

    /// The secret key `sk_V = s·Q_V ∈ G2` (test hook; production paths go
    /// through the prepared form below).
    #[cfg(test)]
    pub(crate) fn sk(&self) -> &G2 {
        &self.sk
    }

    /// The prepared form of `sk_V`, resolved through the **secret**
    /// prepared-key cache ([`seccloud_pairing::cache::secret`]) — never
    /// the shared [`seccloud_pairing::cache::global`] instance that public
    /// points flow through. Every designated verification pairs against
    /// the same `sk_V`, so the Miller-loop line coefficients are prepared
    /// once and amortized across calls (and across clones of this key);
    /// eviction or [`Self::wipe`]-driven removal zeroizes the coefficients
    /// when the last outstanding handle drops (`G2Prepared` wipes on
    /// drop).
    ///
    /// The handle is secret-derived: verification engines (batch
    /// verifiers, the sharded epoch verifier) may hold it for the
    /// verifier's own checks, but it must never be serialized or logged —
    /// exactly like `sk_V` itself. Callers that retain the `Arc` keep the
    /// preparation alive past a `wipe()` of this key; drop the handle as
    /// soon as the verification engine is done with it.
    pub fn sk_prepared(&self) -> Arc<G2Prepared> {
        seccloud_pairing::cache::secret().get_or_prepare_ct(&self.sk.to_affine())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_pairing::pairing;

    #[test]
    fn extraction_is_deterministic() {
        let m = MasterKey::from_seed(b"seed");
        let a1 = m.extract_user("alice");
        let a2 = m.extract_user("alice");
        assert_eq!(a1.public(), a2.public());
        assert_eq!(a1.sk(), a2.sk());
        assert_ne!(a1.public(), m.extract_user("bob").public());
    }

    #[test]
    fn different_seeds_different_master_keys() {
        let m1 = MasterKey::from_seed(b"seed-1");
        let m2 = MasterKey::from_seed(b"seed-2");
        assert_ne!(m1.params(), m2.params());
    }

    #[test]
    fn user_public_matches_anyone_recomputing_it() {
        let m = MasterKey::from_seed(b"seed");
        let alice = m.extract_user("alice");
        let recomputed = UserPublic::from_identity("alice");
        assert_eq!(alice.public(), &recomputed);
        let server = m.extract_verifier("cs");
        assert_eq!(server.public(), &VerifierPublic::from_identity("cs"));
    }

    #[test]
    fn extracted_keys_satisfy_the_master_relation() {
        // ê(sk_ID, P₂) = ê(Q_ID, s·P₂) — the defining property of eq. (4).
        let m = MasterKey::from_seed(b"relation");
        let u = m.extract_user("alice");
        let lhs = pairing(&u.sk().to_affine(), &G2::generator().to_affine());
        let rhs = pairing(
            &u.public().q().to_affine(),
            &m.params().p_pub_g2().to_affine(),
        );
        assert_eq!(lhs, rhs);

        // ê(P₁, sk_V) = ê(s·P₁, Q_V) for verifier keys.
        let v = m.extract_verifier("da");
        let lhs = pairing(&G1::generator().to_affine(), &v.sk().to_affine());
        let rhs = pairing(
            &m.params().p_pub_g1().to_affine(),
            &v.public().q().to_affine(),
        );
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn debug_never_leaks_secrets() {
        let m = MasterKey::from_seed(b"secret-seed");
        let u = m.extract_user("u");
        let v = m.extract_verifier("v");
        let dbg = format!("{m:?}{u:?}{v:?}");
        // Secrets would print as hex values of the s / sk fields; ensure the
        // redacted formatters are in use and the raw values are absent.
        assert!(dbg.contains(".."), "redaction marker missing: {dbg}");
        assert!(!dbg.contains("sk:"), "extracted secret printed: {dbg}");
        let sk_hex = format!("{:?}", u.sk());
        assert!(!dbg.contains(&sk_hex), "user secret printed");
    }

    #[test]
    fn wipe_clears_secret_material() {
        // `wipe()` is exactly what `Drop` runs; exercising it directly lets
        // the test observe the cleared state without reading freed memory.
        let mut m = MasterKey::from_seed(b"wipe-test");
        let mut u = m.extract_user("alice");
        let mut v = m.extract_verifier("cs");
        let sk_point = v.sk.to_affine();
        let _ = v.sk_prepared(); // populate the secret cache so wipe() has work to do
        assert!(seccloud_pairing::cache::secret().contains(&sk_point));
        assert!(
            !seccloud_pairing::cache::global().contains(&sk_point),
            "the shared public cache must never hold secret-derived entries"
        );

        m.wipe();
        assert!(m.s.is_zero(), "master scalar must be zeroed on drop");

        u.wipe();
        assert!(u.sk.is_identity(), "user secret key must be cleared");

        v.wipe();
        assert!(v.sk.is_identity(), "verifier secret key must be cleared");
        assert!(
            !seccloud_pairing::cache::secret().contains(&sk_point),
            "secret-derived prepared lines must be dropped from the cache"
        );
    }

    #[test]
    fn zero_master_scalar_is_rejected_by_construction() {
        // Fr::random_nonzero never returns zero; from_scalar with an
        // explicit nonzero scalar keeps P_pub off the identity.
        let m = MasterKey::from_scalar(Fr::from_u64(1).add(&Fr::from_u64(1)));
        assert!(!m.params().p_pub_g1().is_identity());
        assert!(!m.params().p_pub_g2().is_identity());
    }
}
