//! Shared measurement helpers for the SecCloud experiment harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (Section VII); the benches in `benches/` time the
//! same primitives with the self-calibrating [`Bench`] harness (no
//! Criterion — the workspace builds offline with zero external
//! dependencies). See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results.
#![forbid(unsafe_code)]

use std::time::Instant;

/// Measures the mean wall-clock milliseconds of `f` over `iters` calls
/// after `warmup` unmeasured calls.
///
/// A deliberately simple estimator for the experiment binaries — the
/// Criterion benches are the rigorous source of timing numbers; the
/// binaries only need table-of-magnitude figures to print paper-style rows.
pub fn measure_ms<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "need at least one measured iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1_000.0 / iters as f64
}

/// Formats a milliseconds value with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1_000.0)
    }
}

/// Formats a Markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// A self-calibrating benchmark runner: picks an iteration count targeting
/// `budget_ms` of wall time per case, measures, and prints one aligned row
/// per case. The stand-in for Criterion in an offline workspace.
pub struct Bench {
    group: String,
    budget_ms: f64,
    results: Vec<(String, f64)>,
}

impl Bench {
    /// Starts a named bench group with a ~300 ms measurement budget per case.
    pub fn group(name: &str) -> Self {
        println!("\n== {name} ==");
        Self {
            group: name.to_string(),
            budget_ms: 300.0,
            results: Vec::new(),
        }
    }

    /// Overrides the per-case measurement budget (milliseconds).
    pub fn budget_ms(mut self, ms: f64) -> Self {
        self.budget_ms = ms;
        self
    }

    /// Times `f`, printing `group/label` with the mean latency and rate.
    /// Returns the mean milliseconds per call.
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> f64 {
        // Calibrate with one untimed call, then size the measured run.
        let start = Instant::now();
        std::hint::black_box(f());
        let probe_ms = (start.elapsed().as_secs_f64() * 1_000.0).max(1e-6);
        let iters = ((self.budget_ms / probe_ms) as usize).clamp(1, 10_000);
        let warmup = (iters / 10).max(1);
        let ms = measure_ms(warmup, iters, f);
        let rate = 1_000.0 / ms;
        println!(
            "{:<44} {:>12}   {:>12.1} ops/s   ({} iters)",
            format!("{}/{label}", self.group),
            fmt_ms(ms),
            rate,
            iters
        );
        self.results.push((label.to_string(), ms));
        ms
    }

    /// The `(label, mean ms)` rows measured so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let ms = measure_ms(1, 5, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(ms > 0.0);
        assert!(ms < 1_000.0, "a 1k-iteration loop is not a second");
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(250.0), "250 ms");
        assert_eq!(fmt_ms(4.14), "4.14 ms");
        assert_eq!(fmt_ms(0.5), "500.0 µs");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_iters_panics() {
        let _ = measure_ms(0, 0, || 1);
    }
}
