//! Fixture-driven integration tests for `seccloud-lint`.
//!
//! Each bad fixture in `tests/fixtures/` must trip exactly its rule, both
//! through the library API and through the compiled binary (nonzero exit).
//! The clean fixture must be silent, and so must the real workspace tree.

use std::path::{Path, PathBuf};
use std::process::Command;

use analyzer::{lint_single_file, render_json, Report};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Report {
    lint_single_file(&fixture_path(name)).expect("fixture readable")
}

fn rules_hit(report: &Report) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

fn run_binary(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_seccloud-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn panic_fixture_trips_panic_rule() {
    let report = lint_fixture("panic.rs");
    assert_eq!(rules_hit(&report), ["panic"]);
    // unwrap + expect + panic! + unreachable!
    assert_eq!(report.findings.len(), 4);
}

#[test]
fn index_fixture_trips_index_rule() {
    let report = lint_fixture("index.rs");
    assert_eq!(rules_hit(&report), ["index"]);
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn secret_fixture_trips_secret_and_taint_rules() {
    let report = lint_fixture("secret.rs");
    // Debug derive + missing Drop fire `secret`; the format-site leak is
    // now interprocedural and fires `taint`.
    assert_eq!(rules_hit(&report), ["secret", "taint"]);
    assert!(
        report.findings.len() >= 3,
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn taint_fixture_trips_taint_rule() {
    let report = lint_fixture("taint_bad.rs");
    assert_eq!(rules_hit(&report), ["taint"], "{:?}", report.findings);
    // The laundered scalar reaches a wire-encode sink and a format sink.
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("wire-encode")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("format")), "{msgs:?}");
}

#[test]
fn taint_clean_fixture_is_silent() {
    let report = lint_fixture("taint_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn panic_path_fixture_trips_panic_and_panic_path() {
    let report = lint_fixture("panic_path_bad.rs");
    // The `.unwrap()` itself is a `panic` finding; both callers that
    // reach it transitively are `panic_path` findings.
    assert_eq!(rules_hit(&report), ["panic", "panic_path"]);
    let paths: Vec<&_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "panic_path")
        .collect();
    assert_eq!(paths.len(), 2, "{:?}", report.findings);
    // The witness chain names the panic source.
    assert!(
        paths.iter().all(|f| f.message.contains("unwrap")),
        "{paths:?}"
    );
}

#[test]
fn panic_path_clean_fixture_is_silent() {
    let report = lint_fixture("panic_path_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn arith_fixture_trips_arith_rule() {
    let report = lint_fixture("arith_bad.rs");
    assert_eq!(rules_hit(&report), ["arith"], "{:?}", report.findings);
    // `1usize << s` and `t * scale`.
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
}

#[test]
fn arith_clean_fixture_is_silent() {
    let report = lint_fixture("arith_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn dispatch_fixture_trips_dispatch_rule() {
    let report = lint_fixture("dispatch_bad.rs");
    assert_eq!(rules_hit(&report), ["dispatch"], "{:?}", report.findings);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.findings[0].message.contains("WireError"));
}

#[test]
fn dispatch_clean_fixture_is_silent() {
    let report = lint_fixture("dispatch_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn ct_fixture_trips_ct_rule() {
    let report = lint_fixture("ct.rs");
    assert_eq!(rules_hit(&report), ["ct"]);
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn unsafe_fixture_trips_unsafe_rule() {
    let report = lint_fixture("unsafe.rs");
    assert_eq!(rules_hit(&report), ["unsafe"]);
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn transport_fixture_trips_transport_rule() {
    let report = lint_fixture("transport.rs");
    assert_eq!(rules_hit(&report), ["transport"]);
    // `WireTransport` bound + `WireServer` construction.
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn clean_fixture_is_silent_and_reports_allowance() {
    let report = lint_fixture("clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
    // The one `lint: allow(panic, ...)` escape hatch must be surfaced.
    assert_eq!(report.allowances.len(), 1);
    assert_eq!(report.allowances[0].rule, "panic");
    assert!(report.allowances[0].reason.contains("escape hatch"));
}

#[test]
fn ctflow_fixture_trips_ctflow_rule() {
    let report = lint_fixture("ctflow_bad.rs");
    assert_eq!(rules_hit(&report), ["ctflow"], "{:?}", report.findings);
    // `==` comparison, `match` on concrete values, loop bound.
    assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("comparison")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("match")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("loop bound")), "{msgs:?}");
}

#[test]
fn ctflow_clean_fixture_is_silent_with_declassify_allowance() {
    let report = lint_fixture("ctflow_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
    // The one `lint: declassify(...)` must surface as a ctflow allowance.
    assert_eq!(report.allowances.len(), 1, "{:?}", report.allowances);
    assert_eq!(report.allowances[0].rule, "ctflow");
    assert!(report.allowances[0].reason.contains("parity"));
}

#[test]
fn vartime_fixture_trips_vartime_rule() {
    let report = lint_fixture("vartime_bad.rs");
    assert_eq!(rules_hit(&report), ["vartime"], "{:?}", report.findings);
    // Direct call into the primitive + the transitive path through `normalize`.
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("primitive `modinv_vartime`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("path `normalize`")),
        "{msgs:?}"
    );
}

#[test]
fn vartime_clean_fixture_is_silent() {
    let report = lint_fixture("vartime_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn atomics_fixture_trips_atomics_rule() {
    let report = lint_fixture("atomics_bad.rs");
    assert_eq!(rules_hit(&report), ["atomics"], "{:?}", report.findings);
    // Two unannotated ordering sites + the Relaxed RMW escalation.
    assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("read-modify-write")),
        "{msgs:?}"
    );
}

#[test]
fn atomics_clean_fixture_is_silent_with_ordering_allowances() {
    let report = lint_fixture("atomics_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
    assert_eq!(report.allowances.len(), 3, "{:?}", report.allowances);
    assert!(report.allowances.iter().all(|a| a.rule == "atomics"));
}

#[test]
fn locks_fixture_trips_locks_rule() {
    let report = lint_fixture("locks_bad.rs");
    assert_eq!(rules_hit(&report), ["locks"], "{:?}", report.findings);
    // One elementary cycle: `Pair.a → Pair.b → Pair.a`.
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let msg = &report.findings[0].message;
    assert!(msg.contains("lock-order cycle"), "{msg}");
    // The cross-function edge names the helper it goes through, and every
    // edge carries a file:line witness.
    assert!(msg.contains("via `with_b`"), "{msg}");
    assert!(msg.contains("`Pair::backward`"), "{msg}");
    assert!(msg.contains("locks_bad.rs:"), "{msg}");
}

#[test]
fn locks_clean_fixture_is_silent() {
    let report = lint_fixture("locks_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn blocking_fixture_trips_blocking_rule() {
    let report = lint_fixture("blocking_bad.rs");
    assert_eq!(rules_hit(&report), ["blocking"], "{:?}", report.findings);
    // Pairing under a bound guard + sleep on a guard-extending temporary.
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("miller_loop") && m.contains("pairing computation")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("sleep") && m.contains("while holding `State.inner`")),
        "{msgs:?}"
    );
}

#[test]
fn blocking_clean_fixture_is_silent_with_lock_allowance() {
    let report = lint_fixture("blocking_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
    // The one justified `lint: lock(...)` surfaces as a blocking allowance.
    assert_eq!(report.allowances.len(), 1, "{:?}", report.allowances);
    assert_eq!(report.allowances[0].rule, "blocking");
    assert!(report.allowances[0].reason.contains("serialization point"));
}

#[test]
fn deadline_fixture_trips_deadline_rule() {
    let report = lint_fixture("deadline_bad.rs");
    assert_eq!(rules_hit(&report), ["deadline"], "{:?}", report.findings);
    // Direct un-deadlined write + the read obligation propagated out of
    // the generic `read_header` helper to the call site.
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("no write deadline")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("flows into `read_header`") && m.contains("no read deadline")),
        "{msgs:?}"
    );
}

#[test]
fn deadline_clean_fixture_is_silent() {
    let report = lint_fixture("deadline_clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn binary_fails_on_each_bad_fixture() {
    for name in [
        "panic.rs",
        "index.rs",
        "secret.rs",
        "ct.rs",
        "unsafe.rs",
        "transport.rs",
        "taint_bad.rs",
        "panic_path_bad.rs",
        "arith_bad.rs",
        "dispatch_bad.rs",
        "ctflow_bad.rs",
        "vartime_bad.rs",
        "atomics_bad.rs",
        "locks_bad.rs",
        "blocking_bad.rs",
        "deadline_bad.rs",
    ] {
        let path = fixture_path(name);
        let out = run_binary(&[path.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} should exit 1: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_passes_on_clean_fixtures() {
    for name in [
        "clean.rs",
        "taint_clean.rs",
        "panic_path_clean.rs",
        "arith_clean.rs",
        "dispatch_clean.rs",
        "ctflow_clean.rs",
        "vartime_clean.rs",
        "atomics_clean.rs",
        "locks_clean.rs",
        "blocking_clean.rs",
        "deadline_clean.rs",
    ] {
        let path = fixture_path(name);
        let out = run_binary(&[path.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} should exit 0: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_baseline_emits_findings_and_allowances() {
    let path = fixture_path("ct.rs");
    let out = run_binary(&["--baseline", path.to_str().unwrap()]);
    // Baseline mode always exits 0 — it reports, it does not gate.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"findings\""), "stdout: {stdout}");
    assert!(stdout.contains("\"allowances\""), "stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"ct\""), "stdout: {stdout}");
    assert!(stdout.contains("\"line\""), "stdout: {stdout}");
}

#[test]
fn binary_format_sarif_emits_sarif_and_still_gates() {
    let path = fixture_path("dispatch_bad.rs");
    let out = run_binary(&["--format", "sarif", path.to_str().unwrap()]);
    // SARIF changes the output shape, not the exit contract.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"version\": \"2.1.0\""),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("\"ruleId\": \"dispatch\""),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"startLine\""), "stdout: {stdout}");
}

#[test]
fn binary_rejects_unknown_format() {
    let out = run_binary(&["--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_rejects_bad_usage() {
    let out = run_binary(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyzer::lint_workspace(&root).expect("workspace readable");
    assert!(
        report.findings.is_empty(),
        "workspace findings:\n{}",
        render_json(&report)
    );
    // Every allowance in the tree must carry a reason.
    for a in &report.allowances {
        assert!(!a.reason.is_empty(), "allowance without reason: {a:?}");
    }
}
