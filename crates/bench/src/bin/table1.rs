//! **Table I** — cryptographic operations' execution time.
//!
//! Paper reference (MIRACL, Intel Core 2 Duo E6550, 2 GB RAM):
//! `T_pmul = 0.86 ms`, `T_pair = 4.14 ms`.
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin table1
//! ```
#![forbid(unsafe_code)]

use seccloud_bench::{fmt_ms, measure_ms, row};
use seccloud_pairing::{hash_to_g1, hash_to_g2, pairing, Fr, G1, G2};

fn main() {
    println!("# Table I — cryptographic operation execution time\n");
    println!("Paper (MIRACL, Core 2 Duo E6550): T_pmul = 0.86 ms, T_pair = 4.14 ms\n");

    let g1 = G1::generator();
    let g2 = G2::generator();
    let k = Fr::hash(b"bench-scalar");
    let p_aff = hash_to_g1(b"bench-p").to_affine();
    let q_aff = hash_to_g2(b"bench-q").to_affine();
    let gt = pairing(&p_aff, &q_aff);

    let t_pmul_g1 = measure_ms(3, 50, || g1.mul_fr(&k));
    let t_pmul_g2 = measure_ms(3, 30, || g2.mul_fr(&k));
    let t_pair = measure_ms(2, 10, || pairing(&p_aff, &q_aff));
    let t_hash_g1 = measure_ms(3, 50, || hash_to_g1(b"hash-bench-input"));
    let t_hash_g2 = measure_ms(1, 3, || hash_to_g2(b"hash-bench-input"));
    let t_gt_exp = measure_ms(2, 10, || gt.pow(&k));

    println!(
        "{}",
        row(&[
            "operation".into(),
            "symbol".into(),
            "paper".into(),
            "measured".into()
        ])
    );
    println!(
        "{}",
        row(&["---".into(), "---".into(), "---".into(), "---".into()])
    );
    println!(
        "{}",
        row(&[
            "G1 point multiplication".into(),
            "T_pmul".into(),
            "0.86 ms".into(),
            fmt_ms(t_pmul_g1),
        ])
    );
    println!(
        "{}",
        row(&[
            "G2 point multiplication".into(),
            "—".into(),
            "n/a".into(),
            fmt_ms(t_pmul_g2),
        ])
    );
    println!(
        "{}",
        row(&[
            "pairing".into(),
            "T_pair".into(),
            "4.14 ms".into(),
            fmt_ms(t_pair),
        ])
    );
    println!(
        "{}",
        row(&[
            "hash-to-G1".into(),
            "H1".into(),
            "n/a".into(),
            fmt_ms(t_hash_g1)
        ])
    );
    println!(
        "{}",
        row(&[
            "hash-to-G2 (cofactored)".into(),
            "H1'".into(),
            "n/a".into(),
            fmt_ms(t_hash_g2)
        ])
    );
    println!(
        "{}",
        row(&[
            "GT exponentiation".into(),
            "—".into(),
            "n/a".into(),
            fmt_ms(t_gt_exp)
        ])
    );

    let ratio = t_pair / t_pmul_g1;
    println!(
        "\nShape check: T_pair / T_pmul = {ratio:.1}× (paper: {:.1}×) — the pairing \
         dominates, which is what drives the batch-verification savings.",
        4.14 / 0.86
    );
    println!("\nMachine-readable: T_PMUL_MS={t_pmul_g1:.4} T_PAIR_MS={t_pair:.4}");
}
