//! Fixed-width and arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the arithmetic substrate for the SecCloud reproduction.
//! Everything above it (prime fields, pairings, RSA) is built on two types:
//!
//! * [`Uint<N>`] — a stack-allocated little-endian `N × u64` unsigned
//!   integer used by the pairing-friendly prime fields (`N = 4` for 256-bit
//!   BN254 elements). Provides carry-propagating add/sub, widening
//!   multiplication and the comparison/shift toolkit Montgomery arithmetic
//!   needs.
//! * [`ApInt`] — a heap-allocated arbitrary-precision unsigned integer with
//!   schoolbook multiplication, Knuth Algorithm-D division, modular
//!   exponentiation and an extended Euclid inverse. Used by the RSA baseline
//!   and to *derive* curve constants at runtime instead of transcribing them.
//!
//! # Examples
//!
//! ```
//! use seccloud_bigint::{ApInt, U256};
//!
//! let p = U256::from_hex(
//!     "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47",
//! ).unwrap();
//! assert_eq!(p.bits(), 254);
//!
//! let a = ApInt::from_u64(1 << 40);
//! let b = ApInt::from_u64(10);
//! let (q, r) = a.divrem(&b).unwrap();
//! assert_eq!(&q * &b + &r, a);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apint;
mod limb;
mod prime;
#[cfg(test)]
pub(crate) mod testrand;
mod uint;

pub use apint::ApInt;
pub use limb::{adc, mac, sbb};
pub use prime::is_probable_prime;
pub use uint::{ParseUintError, Uint, U256, U512};
