//! **Uncheatability validation** (eq. 10/12/14–15) — Monte-Carlo simulated
//! audits vs the paper's closed-form cheat-success probabilities.
//!
//! The analytic model assumes each sample independently lands on a cheated
//! item; the simulation replays the actual process (a server cheats on a
//! random subset of `n` sub-tasks; the DA samples `t` without replacement).
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin detection_sim
//! ```
#![forbid(unsafe_code)]

use seccloud_cloudsim::montecarlo::{run, sweep_t, Experiment};
use seccloud_core::analysis::sampling::CheatParams;

fn main() {
    println!("# Detection-probability validation (eq. 10/12/14)\n");
    const TRIALS: usize = 20_000;
    const N: usize = 500;

    println!("## Escape probability vs sampling size t");
    println!("   (CSC = 0.9, SSC = 0.95, R = 2, n = {N}, {TRIALS} trials)\n");
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "t", "simulated", "analytic", "|Δ|"
    );
    let params = CheatParams::new(0.9, 0.95).with_range(2.0);
    for (t, sim, analytic) in sweep_t(params, N, &[1, 2, 5, 10, 20, 40, 80], TRIALS, b"sweep-1") {
        println!(
            "{t:>4} {sim:>14.4} {analytic:>14.4} {:>10.4}",
            (sim - analytic).abs()
        );
    }

    println!("\n## Across cheating profiles (t = 10)\n");
    println!(
        "{:>5} {:>5} {:>6} {:>14} {:>14} {:>8}",
        "CSC", "SSC", "R", "simulated", "analytic", "within 3σ?"
    );
    for (csc, ssc, range) in [
        (0.5, 1.0, Some(2.0)),
        (0.8, 0.9, Some(4.0)),
        (0.95, 0.8, None),
        (0.99, 0.99, Some(2.0)),
        (0.0, 1.0, Some(2.0)),
    ] {
        let mut p = CheatParams::new(csc, ssc);
        if let Some(r) = range {
            p = p.with_range(r);
        }
        let result = run(
            &Experiment {
                params: p,
                n: N,
                t: 10,
                trials: TRIALS,
            },
            b"profiles",
        );
        let ok = result.abs_error() <= result.three_sigma().max(0.01);
        println!(
            "{csc:>5.2} {ssc:>5.2} {:>6} {:>14.4} {:>14.4} {:>8}",
            range.map_or("inf".into(), |r| format!("{r:.0}")),
            result.escape_rate,
            result.analytic,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "simulation must agree with the closed form");
    }

    println!("\n## Paper anchors under simulation (ε = 1e-4)\n");
    // At the paper's required sample sizes the empirical escape rate should
    // be below ~1e-4 (so almost surely 0 escapes in 20k trials).
    for (label, params, t) in [
        (
            "R=2,   t=33",
            CheatParams::new(0.5, 0.5).with_range(2.0),
            33,
        ),
        ("R→∞, t=15", CheatParams::new(0.5, 0.5), 15),
    ] {
        let result = run(
            &Experiment {
                params,
                n: N,
                t,
                trials: TRIALS,
            },
            b"anchors",
        );
        println!(
            "{label}: escapes = {:.0} / {TRIALS} (analytic {:.2e})",
            result.escape_rate * TRIALS as f64,
            result.analytic
        );
        assert!(result.escape_rate < 5e-4, "anchor sampling size suffices");
    }
    println!("\nAll simulated audits agree with the paper's formulas.");
}
