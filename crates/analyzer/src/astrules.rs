//! AST-level rules: unchecked sampling arithmetic (`arith`) and
//! exhaustive wire dispatch (`dispatch`).
//!
//! * `arith` — in the sampling/escalation/backoff files, a raw `+ - *
//!   <<` (or compound assignment) on operands known to be integers is a
//!   finding: the eq. 10 math (`t' = min(2^s·t, n)`, binomial terms)
//!   must use `checked_*` / `saturating_*` so a silent wrap can never
//!   inflate or deflate a detection probability. Floating-point math is
//!   exempt — the rule only fires when an operand is *provably* an
//!   integer (int-typed binding, `as` int cast, suffixed literal,
//!   `.len()`-family call, or an int-range loop variable) and neither
//!   side is provably a float.
//! * `dispatch` — a `match` whose arms name a wire-protocol enum
//!   (`WireError`, `RpcError`, `ServerError`, `ComputeFunction`) must
//!   not also carry a bare catch-all `_` arm: a `_` silently discards
//!   unknown-variant evidence the audit trail needs. Guarded `_ if …`
//!   arms and matches on non-protocol enums are exempt.

use std::collections::{HashMap, HashSet};

use crate::ast::{int_suffixed, int_typed, Expr};
use crate::callgraph::{type_head, Workspace};
use crate::rules::{FileCtx, Finding, Report, RULE_ARITH, RULE_DISPATCH};

/// Files whose integer arithmetic must be overflow-safe.
const ARITH_SCOPE: [&str; 5] = [
    "crates/resilience/src/escalation.rs",
    "crates/resilience/src/policy.rs",
    "crates/resilience/src/breaker.rs",
    "crates/core/src/analysis/sampling.rs",
    "crates/cloudsim/src/montecarlo.rs",
];

/// Wire-protocol enums whose matches must stay arm-exhaustive.
const DISPATCH_ENUMS: [&str; 5] = [
    "WireError",
    "RpcError",
    "ServerError",
    "ComputeFunction",
    "WireMessage",
];

/// Handler-code prefixes for the dispatch rule.
const DISPATCH_SCOPE: [&str; 4] = [
    "crates/cloudsim/src/",
    "crates/resilience/src/",
    "crates/core/src/",
    "crates/testkit/src/",
];

/// Operators the arith rule polices (division/modulo panic rather than
/// wrap and are left to the panic rules).
const ARITH_OPS: [&str; 4] = ["+", "-", "*", "<<"];
const ARITH_ASSIGN_OPS: [&str; 4] = ["+=", "-=", "*=", "<<="];

#[derive(Clone, Copy, PartialEq, Eq)]
enum NumKind {
    Int,
    Float,
    Unknown,
}

/// Methods that return integers regardless of receiver.
const INT_METHODS: [&str; 3] = ["len", "count", "leading_zeros"];
/// Methods that return floats regardless of receiver.
const FLOAT_METHODS: [&str; 8] = [
    "powi",
    "powf",
    "sqrt",
    "ln",
    "log2",
    "exp",
    "abs_diff_f",
    "to_f64",
];

/// The `arith` rule.
pub fn check_arith(
    ws: &Workspace,
    ctxs: &HashMap<&str, &FileCtx>,
    all_rules: bool,
    report: &mut Report,
) {
    for (i, f) in ws.fns.iter().enumerate() {
        let path = ws.path_of(i);
        if f.is_test {
            continue;
        }
        if !all_rules && !ARITH_SCOPE.contains(&path) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let ctx = ctxs.get(path).copied();
        // Bindings known to be ints / floats: params, then `let`s (one
        // forward pass; a second pass would only matter for use-before-
        // definition, which `let` cannot express).
        let mut kinds: HashMap<String, NumKind> = HashMap::new();
        for p in &f.params {
            kinds.insert(p.name.clone(), kind_of_ty(&p.ty));
        }
        let mut findings: Vec<(u32, String)> = Vec::new();
        walk_arith(body, &mut kinds, &mut findings);
        for (line, op) in findings {
            let allowed = ctx
                .is_some_and(|c| c.rule_allowed(RULE_ARITH, line) || c.test_lines.contains(&line));
            if allowed {
                continue;
            }
            report.findings.push(Finding {
                rule: RULE_ARITH,
                file: path.to_string(),
                line,
                message: format!(
                    "unchecked `{op}` on integer operands in sampling/backoff math — a \
                     silent wrap skews eq. 10; use `checked_{{add,sub,mul,shl}}` / \
                     `saturating_*`, or annotate `// lint: allow(arith, reason=...)`"
                ),
            });
        }
    }
}

fn kind_of_ty(ty: &str) -> NumKind {
    if int_typed(ty) {
        NumKind::Int
    } else {
        let head = type_head(ty);
        if head == "f64" || head == "f32" {
            NumKind::Float
        } else {
            NumKind::Unknown
        }
    }
}

/// Walks a body in evaluation order, tracking binding kinds and flagging
/// raw integer arithmetic.
fn walk_arith(e: &Expr, kinds: &mut HashMap<String, NumKind>, out: &mut Vec<(u32, String)>) {
    match e {
        Expr::Let {
            bindings, ty, init, ..
        } => {
            if let Some(i) = init {
                walk_arith(i, kinds, out);
            }
            let k = match ty.as_deref() {
                Some(t) => kind_of_ty(t),
                None => init
                    .as_ref()
                    .map_or(NumKind::Unknown, |i| num_kind(i, kinds)),
            };
            for b in bindings {
                kinds.insert(b.clone(), k);
            }
        }
        Expr::Binary { op, lhs, rhs, line } => {
            walk_arith(lhs, kinds, out);
            walk_arith(rhs, kinds, out);
            if ARITH_OPS.contains(&op.as_str()) {
                let lk = num_kind(lhs, kinds);
                let rk = num_kind(rhs, kinds);
                let some_int = lk == NumKind::Int || rk == NumKind::Int;
                let some_float = lk == NumKind::Float || rk == NumKind::Float;
                if some_int && !some_float {
                    out.push((*line, op.clone()));
                }
            }
        }
        Expr::Assign { op, lhs, rhs, line } => {
            walk_arith(lhs, kinds, out);
            walk_arith(rhs, kinds, out);
            if ARITH_ASSIGN_OPS.contains(&op.as_str()) {
                let lk = num_kind(lhs, kinds);
                let rk = num_kind(rhs, kinds);
                let some_int = lk == NumKind::Int || rk == NumKind::Int;
                let some_float = lk == NumKind::Float || rk == NumKind::Float;
                if some_int && !some_float {
                    out.push((*line, op.clone()));
                }
            }
        }
        Expr::For {
            bindings,
            iter,
            body,
            ..
        } => {
            walk_arith(iter, kinds, out);
            let k = num_kind(iter, kinds);
            for b in bindings {
                kinds.insert(b.clone(), k);
            }
            walk_arith(body, kinds, out);
        }
        // Everything else: recurse structurally.
        Expr::Block { stmts, .. } => {
            for s in stmts {
                walk_arith(s, kinds, out);
            }
        }
        Expr::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            walk_arith(cond, kinds, out);
            walk_arith(then_block, kinds, out);
            if let Some(e2) = else_block {
                walk_arith(e2, kinds, out);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_arith(scrutinee, kinds, out);
            for arm in arms {
                walk_arith(&arm.body, kinds, out);
            }
        }
        Expr::Loop { cond, body, .. } => {
            if let Some(c) = cond {
                walk_arith(c, kinds, out);
            }
            walk_arith(body, kinds, out);
        }
        Expr::Call { callee, args, .. } => {
            walk_arith(callee, kinds, out);
            for a in args {
                walk_arith(a, kinds, out);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_arith(recv, kinds, out);
            for a in args {
                walk_arith(a, kinds, out);
            }
        }
        Expr::Field { base, .. } => walk_arith(base, kinds, out),
        Expr::Index { base, index, .. } => {
            walk_arith(base, kinds, out);
            walk_arith(index, kinds, out);
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(l) = lo {
                walk_arith(l, kinds, out);
            }
            if let Some(h) = hi {
                walk_arith(h, kinds, out);
            }
        }
        Expr::Cast { expr, .. } => walk_arith(expr, kinds, out),
        Expr::StructLit { fields, .. } => {
            for (_, fe) in fields {
                walk_arith(fe, kinds, out);
            }
        }
        Expr::Group { children, .. } => {
            for c in children {
                walk_arith(c, kinds, out);
            }
        }
        Expr::Closure { body, .. } => walk_arith(body, kinds, out),
        Expr::MacroCall { args, .. } => {
            for a in args {
                walk_arith(a, kinds, out);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } | Expr::NestedFn(_) => {}
    }
}

/// Classifies an operand as provably-int, provably-float, or unknown.
fn num_kind(e: &Expr, kinds: &HashMap<String, NumKind>) -> NumKind {
    match e {
        Expr::Lit { text, is_int, .. } => {
            if int_suffixed(text) {
                NumKind::Int
            } else if !is_int || text.ends_with("f64") || text.ends_with("f32") {
                NumKind::Float
            } else {
                // A bare integer literal: numeric but its type is driven
                // by the other operand — report Unknown so `1.0 + 1`
                // style float math never fires.
                NumKind::Unknown
            }
        }
        Expr::Path { segs, .. } => match segs.as_slice() {
            [one] => kinds.get(one).copied().unwrap_or(NumKind::Unknown),
            _ => NumKind::Unknown,
        },
        Expr::Cast { ty, .. } => kind_of_ty(ty),
        Expr::Binary { op, lhs, rhs, .. } if ARITH_OPS.contains(&op.as_str()) || op == "/" => {
            let lk = num_kind(lhs, kinds);
            if lk != NumKind::Unknown {
                lk
            } else {
                num_kind(rhs, kinds)
            }
        }
        Expr::MethodCall { name, .. } if INT_METHODS.contains(&name.as_str()) => NumKind::Int,
        Expr::MethodCall { name, .. } if FLOAT_METHODS.contains(&name.as_str()) => NumKind::Float,
        Expr::MethodCall { recv, name, .. } => {
            // Arithmetic helpers (`saturating_mul`, `min`, `max`, …)
            // preserve the receiver's kind.
            if name.starts_with("saturating_")
                || name.starts_with("wrapping_")
                || name == "min"
                || name == "max"
                || name == "pow"
            {
                num_kind(recv, kinds)
            } else {
                NumKind::Unknown
            }
        }
        Expr::Group { children, .. } => match children.as_slice() {
            [one] => num_kind(one, kinds),
            _ => NumKind::Unknown,
        },
        Expr::Range { lo, hi, .. } => {
            let k = lo.as_ref().map_or(NumKind::Unknown, |l| num_kind(l, kinds));
            if k != NumKind::Unknown {
                k
            } else {
                hi.as_ref().map_or(NumKind::Unknown, |h| num_kind(h, kinds))
            }
        }
        _ => NumKind::Unknown,
    }
}

/// The `dispatch` rule.
pub fn check_dispatch(
    ws: &Workspace,
    ctxs: &HashMap<&str, &FileCtx>,
    all_rules: bool,
    report: &mut Report,
) {
    for (i, f) in ws.fns.iter().enumerate() {
        let path = ws.path_of(i);
        if f.is_test {
            continue;
        }
        if !all_rules && !DISPATCH_SCOPE.iter().any(|p| path.starts_with(p)) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let ctx = ctxs.get(path).copied();
        body.walk(&mut |e| {
            let Expr::Match { arms, .. } = e else { return };
            let mut enums: HashSet<&str> = HashSet::new();
            for arm in arms {
                for p in &arm.pat_paths {
                    if let Some(first) = p.first() {
                        if DISPATCH_ENUMS.contains(&first.as_str()) {
                            enums.insert(first.as_str());
                        }
                    }
                }
            }
            if enums.is_empty() {
                return;
            }
            for arm in arms {
                if !arm.is_wildcard {
                    continue;
                }
                let allowed = ctx.is_some_and(|c| {
                    c.rule_allowed(RULE_DISPATCH, arm.line) || c.test_lines.contains(&arm.line)
                });
                if allowed {
                    continue;
                }
                let mut names: Vec<&str> = enums.iter().copied().collect();
                names.sort_unstable();
                report.findings.push(Finding {
                    rule: RULE_DISPATCH,
                    file: path.to_string(),
                    line: arm.line,
                    message: format!(
                        "catch-all `_` in a match on `{}` discards unknown-variant \
                         evidence — enumerate every variant so new wire cases are a \
                         compile error, or annotate `// lint: allow(dispatch, reason=...)`",
                        names.join("`/`")
                    ),
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_files;

    fn lint_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        let r = lint_files(&[(path.to_string(), src.to_string())], false);
        r.findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn raw_int_math_fires_in_scope_only() {
        let src = "pub fn esc(t: usize, s: u32) -> usize { t * 2 + s as usize }";
        let hits = lint_at("crates/resilience/src/escalation.rs", src);
        assert_eq!(hits, vec![(RULE_ARITH, 1), (RULE_ARITH, 1)]);
        assert!(lint_at("crates/resilience/src/transport.rs", src).is_empty());
    }

    #[test]
    fn float_probability_math_is_exempt() {
        let src = "pub fn p(x: f64, t: u32) -> f64 {\n\
                   let mut acc = 1.0;\n\
                   for i in 0..t { acc = acc * (1.0 - x / (i as f64 + 1.0)); }\n\
                   acc\n}";
        let hits = lint_at("crates/core/src/analysis/sampling.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn checked_and_saturating_forms_are_clean() {
        let src = "pub fn esc(t: usize, n: usize, s: u32) -> usize {\n\
                   let scale = 1usize.checked_shl(s.min(63)).unwrap_or(usize::MAX);\n\
                   t.saturating_mul(scale).min(n)\n}";
        let hits = lint_at("crates/resilience/src/escalation.rs", src);
        assert!(hits.iter().all(|(r, _)| *r != RULE_ARITH), "{hits:?}");
    }

    #[test]
    fn compound_assign_and_len_math_fire() {
        let src = "pub fn f(xs: &[u8]) -> usize {\n\
                   let mut t = 0usize;\n\
                   t += 1;\n\
                   xs.len() - 1\n}";
        let hits = lint_at("crates/core/src/analysis/sampling.rs", src);
        let arith: Vec<u32> = hits
            .iter()
            .filter(|(r, _)| *r == RULE_ARITH)
            .map(|(_, l)| *l)
            .collect();
        assert_eq!(arith, vec![3, 4], "{hits:?}");
    }

    #[test]
    fn wildcard_on_wire_enum_fires() {
        let src = "pub fn handle(e: &RpcError) -> bool {\n\
                   match e {\n\
                   RpcError::Timeout { .. } => true,\n\
                   _ => false,\n\
                   }\n}";
        let hits = lint_at("crates/cloudsim/src/handler.rs", src);
        assert_eq!(hits, vec![(RULE_DISPATCH, 4)]);
    }

    #[test]
    fn exhaustive_match_and_foreign_enums_are_clean() {
        let ok = "pub fn handle(e: &RpcError) -> bool {\n\
                  match e {\n\
                  RpcError::Timeout { .. } => true,\n\
                  RpcError::ChannelUnavailable => false,\n\
                  }\n}";
        assert!(lint_at("crates/cloudsim/src/handler.rs", ok).is_empty());
        let foreign =
            "pub fn f(b: &Behavior) -> f64 { match b { Behavior::Honest => 1.0, _ => 0.0 } }";
        assert!(lint_at("crates/cloudsim/src/behavior.rs", foreign).is_empty());
    }

    #[test]
    fn guarded_wildcard_is_exempt() {
        let src = "pub fn handle(e: &RpcError, n: u32) -> bool {\n\
                   match e {\n\
                   RpcError::Timeout { .. } => true,\n\
                   _ if n > 3 => false,\n\
                   RpcError::ChannelUnavailable => false,\n\
                   }\n}";
        let hits = lint_at("crates/cloudsim/src/handler.rs", src);
        assert!(hits.iter().all(|(r, _)| *r != RULE_DISPATCH), "{hits:?}");
    }
}
