//! Bad fixture for the `arith` rule: sampling-escalation math written
//! with raw operators that overflow silently in release builds.
//! Never compiled — lexed by the analyzer self-tests only.

pub fn escalate(t: usize, s: u32, n: usize) -> usize {
    let scale = 1usize << s;
    let next = t * scale;
    if next > n {
        n
    } else {
        next
    }
}
