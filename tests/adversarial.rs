//! Adversarial integration tests: every mutable surface of the protocol is
//! tampered with and must be rejected — the "no false accept" matrix.

use seccloud::core::computation::{
    verify_response, verify_response_batched, AuditChallenge, CommitmentSession,
    ComputationRequest, ComputeFunction, RequestItem,
};
use seccloud::core::storage::DataBlock;
use seccloud::core::warrant::{Warrant, WarrantError};
use seccloud::core::{CloudUser, Sio, VerifierCredential};
use seccloud::ibs::DesignatedSignature;
use seccloud::pairing::G1;

struct World {
    sio: Sio,
    user: CloudUser,
    cs: VerifierCredential,
    da: VerifierCredential,
    stored: Vec<seccloud::core::storage::SignedBlock>,
    request: ComputationRequest,
}

fn world() -> World {
    let sio = Sio::new(b"adversarial");
    let user = sio.register("alice");
    let cs = sio.register_verifier("cs");
    let da = sio.register_verifier("da");
    let blocks: Vec<DataBlock> = (0..8u64)
        .map(|i| DataBlock::from_values(i, &[i + 1, i + 2]))
        .collect();
    let stored = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
    let request = ComputationRequest::new(
        (0..4u64)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![2 * i, 2 * i + 1],
            })
            .collect(),
    );
    World {
        sio,
        user,
        cs,
        da,
        stored,
        request,
    }
}

fn commit(w: &World) -> (seccloud::core::computation::Commitment, CommitmentSession) {
    CommitmentSession::commit(
        &w.request,
        |p| w.stored.get(p as usize),
        w.cs.signer(),
        w.da.public(),
    )
    .unwrap()
}

#[test]
fn replayed_root_signature_from_another_request_fails() {
    let w = world();
    let (commitment, session) = commit(&w);
    // Reuse the commitment against a different (sub)request.
    let other = ComputationRequest::new(vec![w.request.items[0].clone()]);
    let challenge = AuditChallenge::from_indices(vec![0]);
    let response = session.respond(&challenge).unwrap();
    let outcome = verify_response(
        w.da.key(),
        w.user.public(),
        w.cs.signer_public(),
        &other,
        &challenge,
        &commitment,
        &response,
    );
    assert!(
        !outcome.root_sig_ok,
        "Sig(R) is bound to the request digest"
    );
}

#[test]
fn commitment_root_swapped_with_another_trees_root() {
    let w = world();
    let (mut commitment, session) = commit(&w);
    // Server swaps in the root of a tree over different results.
    let other_session = CommitmentSession::from_results(
        w.request.clone(),
        (0..4)
            .map(|i| vec![w.stored[2 * i].clone(), w.stored[2 * i + 1].clone()])
            .collect(),
        vec![1, 2, 3, 4],
    );
    commitment.root = other_session.root();
    let challenge = AuditChallenge::from_indices(vec![0, 1]);
    let response = session.respond(&challenge).unwrap();
    let outcome = verify_response(
        w.da.key(),
        w.user.public(),
        w.cs.signer_public(),
        &w.request,
        &challenge,
        &commitment,
        &response,
    );
    // Both the root signature (signed over the old root) and paths break.
    assert!(!outcome.is_valid());
}

#[test]
fn cross_user_signature_substitution_fails() {
    let w = world();
    let bob = w.sio.register("bob");
    let bob_blocks: Vec<DataBlock> = (0..8u64)
        .map(|i| DataBlock::from_values(i, &[i + 1, i + 2]))
        .collect();
    let bob_stored = bob.sign_blocks(&bob_blocks, &[w.cs.public(), w.da.public()]);
    // Same data, same positions — but signed by Bob. An audit for Alice
    // must reject Bob's blocks.
    let (commitment, _) = commit(&w);
    let session = CommitmentSession::from_results(
        w.request.clone(),
        (0..4)
            .map(|i| vec![bob_stored[2 * i].clone(), bob_stored[2 * i + 1].clone()])
            .collect(),
        commitment.results.clone(),
    );
    let challenge = AuditChallenge::from_indices(vec![0]);
    let response = session.respond(&challenge).unwrap();
    let outcome = verify_response(
        w.da.key(),
        w.user.public(),
        w.cs.signer_public(),
        &w.request,
        &challenge,
        &commitment,
        &response,
    );
    assert!(outcome
        .failures
        .iter()
        .any(|(_, f)| matches!(f, seccloud::core::computation::AuditFailure::BadSignature)));
}

#[test]
fn designated_signature_cannot_be_retargeted() {
    // A signature designated to the CS must not verify for the DA even if
    // an attacker re-labels it.
    let w = world();
    let block = &w.stored[0];
    let cs_sig = block.designation_for("cs").unwrap().clone();
    let forged = DesignatedSignature::from_parts(*cs_sig.u(), *cs_sig.sigma());
    assert!(!forged.verify(w.da.key(), w.user.public(), &block.block().signed_message()));
    assert!(forged.verify(w.cs.key(), w.user.public(), &block.block().signed_message()));
}

#[test]
fn zero_point_u_component_rejected() {
    let w = world();
    let block = &w.stored[0];
    let sig = block.designation_for("da").unwrap();
    let zeroed = DesignatedSignature::from_parts(G1::identity(), *sig.sigma());
    assert!(!zeroed.verify(w.da.key(), w.user.public(), &block.block().signed_message()));
}

#[test]
fn warrant_cannot_be_transferred_between_agencies() {
    let w = world();
    let digest = w.request.digest();
    let warrant = Warrant::issue(&w.user, "da", 100, digest, &[w.cs.public()]);
    // A rival agency presents the same warrant under its own name.
    assert_eq!(
        warrant.verify(w.cs.key(), w.user.public(), "rival-da", &digest, 10),
        Err(WarrantError::WrongDelegatee)
    );
}

#[test]
fn batched_and_individual_verification_agree_on_tampered_responses() {
    let w = world();
    let (commitment, session) = commit(&w);
    let challenge = AuditChallenge::from_indices(vec![0, 2]);
    let good = session.respond(&challenge).unwrap();

    // Matrix of tampers; each must be rejected by both verifiers.
    let mut tampered = Vec::new();
    {
        let mut r = good.clone();
        r.items[0].claimed_y = r.items[0].claimed_y.wrapping_add(1);
        tampered.push(("claimed_y", r));
    }
    {
        let mut r = good.clone();
        r.items[1].inputs.swap(0, 1);
        tampered.push(("input order", r));
    }
    {
        let mut r = good.clone();
        r.items.swap(0, 1);
        tampered.push(("item order", r));
    }
    {
        let mut r = good.clone();
        let mut b = w.stored[7].clone();
        b.tamper_index(0);
        r.items[0].inputs[0] = b;
        tampered.push(("relabelled block", r));
    }
    {
        let mut r = good.clone();
        r.items[0].path.siblings_mut()[0].0[0] ^= 1;
        tampered.push(("merkle sibling", r));
    }

    for (label, response) in &tampered {
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            response,
        );
        assert!(!outcome.is_valid(), "individual verifier missed: {label}");
        assert!(
            !verify_response_batched(
                w.da.key(),
                w.user.public(),
                w.cs.signer_public(),
                &w.request,
                &challenge,
                &commitment,
                response,
            ),
            "batched verifier missed: {label}"
        );
    }

    // And the untampered response passes both.
    assert!(verify_response(
        w.da.key(),
        w.user.public(),
        w.cs.signer_public(),
        &w.request,
        &challenge,
        &commitment,
        &good,
    )
    .is_valid());
}

#[test]
fn foreign_system_parameters_are_useless() {
    // Keys extracted under a different SIO master secret verify nothing
    // in this system.
    let w = world();
    let foreign = Sio::new(b"foreign-system");
    let fake_da = foreign.register_verifier("da");
    let block = &w.stored[0];
    assert!(!block.verify(fake_da.key(), w.user.public()));
}
