//! Batched Merkle proofs covering several leaves at once.

use std::collections::BTreeMap;

use crate::tree::{leaf_hash, node_hash, MerkleTree, Node};

/// A proof that a *set* of leaves is committed under one root, sharing
/// interior nodes between the individual paths.
///
/// During an audit with sampling size `t`, the cloud server answers the
/// whole challenge set with one `MultiProof` instead of `t` independent
/// paths; for adjacent samples this saves most of the response bytes.
///
/// # Examples
///
/// ```
/// use seccloud_merkle::MerkleTree;
///
/// let data: Vec<Vec<u8>> = (0..16u32).map(|i| i.to_be_bytes().to_vec()).collect();
/// let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
/// let proof = tree.prove_multi(&[2, 3, 9]).unwrap();
/// let claims: Vec<(usize, &[u8])> = vec![(2, &data[2]), (3, &data[3]), (9, &data[9])];
/// assert!(proof.verify(&tree.root(), &claims));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiProof {
    /// Sibling/interior hashes in deterministic replay order.
    nodes: Vec<Node>,
    /// Leaf count of the source tree.
    leaf_count: usize,
}

impl MultiProof {
    /// Generates a proof for `indices` (need not be sorted; duplicates are
    /// collapsed). Returns `None` on an empty list or out-of-range index.
    pub(crate) fn generate(tree: &MerkleTree, indices: &[usize]) -> Option<Self> {
        if indices.is_empty() {
            return None;
        }
        let mut known: Vec<usize> = indices.to_vec();
        known.sort_unstable();
        known.dedup();
        if known.last().is_none_or(|&l| l >= tree.leaf_count()) {
            return None;
        }

        let mut nodes = Vec::new();
        for level_idx in 0..tree.height() - 1 {
            let level = tree.level(level_idx);
            let mut next_known = Vec::new();
            let mut i = 0;
            while let Some(&pos) = known.get(i) {
                let sib = pos ^ 1;
                if let Some(&sib_node) = level.get(sib) {
                    if known.get(i + 1) == Some(&sib) {
                        // Sibling is also a claimed/known node: no extra data.
                        i += 1;
                    } else {
                        nodes.push(sib_node);
                    }
                }
                next_known.push(pos / 2);
                i += 1;
            }
            known = next_known;
        }
        Some(Self {
            nodes,
            leaf_count: tree.leaf_count(),
        })
    }

    /// Verifies a set of `(index, data)` claims against `root`.
    ///
    /// Duplicated indices with conflicting data, unknown indices, or any
    /// hash mismatch cause rejection.
    pub fn verify(&self, root: &Node, claims: &[(usize, &[u8])]) -> bool {
        if claims.is_empty() {
            return false;
        }
        // index → leaf hash, rejecting conflicting duplicates.
        let mut by_index: BTreeMap<usize, Node> = BTreeMap::new();
        for (idx, data) in claims {
            if *idx >= self.leaf_count {
                return false;
            }
            let h = leaf_hash(data);
            if let Some(prev) = by_index.insert(*idx, h) {
                if prev != h {
                    return false;
                }
            }
        }

        let mut known: Vec<(usize, Node)> = by_index.into_iter().collect();
        let mut width = self.leaf_count;
        let mut node_iter = self.nodes.iter();
        while width > 1 {
            let mut next = Vec::with_capacity(known.len());
            let mut i = 0;
            while let Some(&(pos, hash)) = known.get(i) {
                let sib = pos ^ 1;
                let parent = if sib >= width {
                    hash // promoted
                } else if let Some(&(_, sib_hash)) = known.get(i + 1).filter(|&&(p, _)| p == sib) {
                    i += 1;
                    node_hash(&hash, &sib_hash)
                } else {
                    let Some(sib_hash) = node_iter.next() else {
                        return false;
                    };
                    if sib < pos {
                        node_hash(sib_hash, &hash)
                    } else {
                        node_hash(&hash, sib_hash)
                    }
                };
                next.push((pos / 2, parent));
                i += 1;
            }
            known = next;
            width = width.div_ceil(2);
        }
        node_iter.next().is_none() && known.len() == 1 && seccloud_hash::ct_eq(&known[0].1, root)
    }

    /// Number of interior hashes carried.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the proof carries no hashes (all-leaf trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serialized size in bytes (hashes + header), for cost accounting.
    pub fn byte_len(&self) -> usize {
        self.nodes.len() * 32 + 8
    }

    /// The interior hashes in replay order (serialization support).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The source tree's leaf count (serialization support).
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Rebuilds a proof from serialized parts; validity is established by
    /// [`MultiProof::verify`], not construction.
    pub fn from_parts(nodes: Vec<Node>, leaf_count: usize) -> Self {
        Self { nodes, leaf_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Vec<Vec<u8>>, MerkleTree) {
        let data: Vec<Vec<u8>> = (0..n).map(|i| format!("y{i}||p{i}").into_bytes()).collect();
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        (data, tree)
    }

    #[test]
    fn verifies_various_index_sets() {
        for n in [2usize, 3, 5, 8, 13, 16, 31] {
            let (data, tree) = setup(n);
            let sets: Vec<Vec<usize>> = vec![
                vec![0],
                vec![n - 1],
                vec![0, n - 1],
                (0..n).collect(),
                (0..n).step_by(2).collect(),
            ];
            for set in sets {
                let proof = tree.prove_multi(&set).unwrap();
                let claims: Vec<(usize, &[u8])> =
                    set.iter().map(|&i| (i, data[i].as_slice())).collect();
                assert!(proof.verify(&tree.root(), &claims), "n={n} set={set:?}");
            }
        }
    }

    #[test]
    fn unsorted_and_duplicate_indices_accepted() {
        let (data, tree) = setup(16);
        let proof = tree.prove_multi(&[9, 2, 2, 14]).unwrap();
        let claims: Vec<(usize, &[u8])> = vec![
            (14, data[14].as_slice()),
            (2, data[2].as_slice()),
            (9, data[9].as_slice()),
        ];
        assert!(proof.verify(&tree.root(), &claims));
    }

    #[test]
    fn rejects_wrong_data() {
        let (data, tree) = setup(16);
        let proof = tree.prove_multi(&[3, 7]).unwrap();
        let claims: Vec<(usize, &[u8])> = vec![(3, data[3].as_slice()), (7, b"forged")];
        assert!(!proof.verify(&tree.root(), &claims));
    }

    #[test]
    fn rejects_conflicting_duplicate_claims() {
        let (data, tree) = setup(8);
        let proof = tree.prove_multi(&[1]).unwrap();
        let claims: Vec<(usize, &[u8])> = vec![(1, data[1].as_slice()), (1, b"other")];
        assert!(!proof.verify(&tree.root(), &claims));
    }

    #[test]
    fn rejects_subset_and_superset_claims() {
        // The claim set must match the proof's index set exactly.
        let (data, tree) = setup(16);
        let proof = tree.prove_multi(&[3, 7]).unwrap();
        let subset: Vec<(usize, &[u8])> = vec![(3, data[3].as_slice())];
        assert!(!proof.verify(&tree.root(), &subset));
        let superset: Vec<(usize, &[u8])> = vec![
            (3, data[3].as_slice()),
            (7, data[7].as_slice()),
            (9, data[9].as_slice()),
        ];
        assert!(!proof.verify(&tree.root(), &superset));
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let (data, tree) = setup(8);
        assert!(tree.prove_multi(&[]).is_none());
        assert!(tree.prove_multi(&[8]).is_none());
        let proof = tree.prove_multi(&[0]).unwrap();
        assert!(!proof.verify(&tree.root(), &[]));
        assert!(!proof.verify(&tree.root(), &[(12, data[0].as_slice())]));
    }

    #[test]
    fn adjacent_samples_share_nodes() {
        // Proof for {0,1} needs strictly fewer nodes than two single proofs.
        let (_, tree) = setup(16);
        let multi = tree.prove_multi(&[0, 1]).unwrap();
        let single = tree.prove(0).unwrap();
        assert!(multi.len() < 2 * single.len());
        // {0,1} share all interior siblings: exactly height-2 nodes.
        assert_eq!(multi.len(), 3);
    }

    #[test]
    fn full_leaf_set_needs_no_nodes() {
        let (data, tree) = setup(8);
        let all: Vec<usize> = (0..8).collect();
        let proof = tree.prove_multi(&all).unwrap();
        assert!(proof.is_empty());
        let claims: Vec<(usize, &[u8])> = all.iter().map(|&i| (i, data[i].as_slice())).collect();
        assert!(proof.verify(&tree.root(), &claims));
    }

    #[test]
    fn odd_width_promotion_paths() {
        // Trees with promoted nodes exercise the `sib >= width` branch.
        for n in [3usize, 5, 9, 11, 21] {
            let (data, tree) = setup(n);
            let proof = tree.prove_multi(&[n - 1]).unwrap();
            let claims: Vec<(usize, &[u8])> = vec![(n - 1, data[n - 1].as_slice())];
            assert!(proof.verify(&tree.root(), &claims), "n={n}");
        }
    }
}
