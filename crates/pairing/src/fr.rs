//! The BN254 scalar field `Fr` (the paper's `Z_q`).

use crate::mont_field;

mont_field!(
    Fr,
    // r = 36x⁴ + 36x³ + 18x² + 6x + 1 for x = 4965661367192848881
    "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001",
    "The BN254 scalar field `F_r` — the group order `q` of the paper."
);

impl Fr {
    /// The paper's `H : {0,1}* → Z_q` — a domain-separated hash into the
    /// scalar field, used for Merkle leaves and challenge derivation.
    ///
    /// # Examples
    ///
    /// ```
    /// use seccloud_pairing::Fr;
    /// let a = Fr::hash(b"result-42");
    /// assert_eq!(a, Fr::hash(b"result-42"));
    /// assert_ne!(a, Fr::hash(b"result-43"));
    /// ```
    pub fn hash(msg: &[u8]) -> Self {
        Self::from_hash(b"seccloud/H", msg)
    }

    /// The paper's `H2 : {0,1}* → Z_q*` — like [`Fr::hash`] but never zero
    /// (re-hashes with a counter in the negligible zero case).
    pub fn hash_nonzero(msg: &[u8]) -> Self {
        let mut ctr: u32 = 0;
        loop {
            let mut input = Vec::with_capacity(msg.len() + 4);
            input.extend_from_slice(msg);
            input.extend_from_slice(&ctr.to_be_bytes());
            let v = Self::from_hash(b"seccloud/H2", &input);
            if !v.is_zero() {
                return v;
            }
            ctr += 1;
        }
    }

    /// Maps arbitrary bytes to a near-uniform scalar with a caller-chosen
    /// domain tag.
    pub fn from_hash(domain: &[u8], msg: &[u8]) -> Self {
        let wide = seccloud_hash::hash_to_int_bytes(domain, msg, 64);
        Self::from_bytes_wide(&wide)
    }

    /// Draws a uniform nonzero scalar from a DRBG.
    pub fn random_nonzero(drbg: &mut seccloud_hash::HmacDrbg) -> Self {
        loop {
            let wide = drbg.next_bytes(64);
            let v = Self::from_bytes_wide(&wide);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_bigint::U256;
    use seccloud_hash::HmacDrbg;

    fn fr(d: &mut HmacDrbg) -> Fr {
        Fr::from_u256(&U256::from_limbs(std::array::from_fn(|_| d.next_u64())))
    }

    #[test]
    fn modulus_is_the_bn254_group_order() {
        // r = p + 1 - t with t = 6x² + 1, x = 4965661367192848881.
        use seccloud_bigint::ApInt;
        let x = ApInt::from_u64(4_965_661_367_192_848_881);
        let six_x2 = &(&x * &x) * &ApInt::from_u64(6);
        let p = ApInt::from_uint(&crate::Fp::modulus());
        let r = ApInt::from_uint(&Fr::modulus());
        // p - r = t - 1 = 6x²
        assert_eq!(p.checked_sub(&r).unwrap(), six_x2);
    }

    #[test]
    fn hash_nonzero_is_never_zero() {
        for i in 0..50u32 {
            assert!(!Fr::hash_nonzero(&i.to_be_bytes()).is_zero());
        }
    }

    #[test]
    fn random_nonzero_is_deterministic_per_seed() {
        let mut d1 = seccloud_hash::HmacDrbg::new(b"seed");
        let mut d2 = seccloud_hash::HmacDrbg::new(b"seed");
        assert_eq!(Fr::random_nonzero(&mut d1), Fr::random_nonzero(&mut d2));
    }

    #[test]
    fn field_axioms() {
        let mut d = HmacDrbg::new(b"fr-axioms");
        for _ in 0..48 {
            let (a, b, c) = (fr(&mut d), fr(&mut d), fr(&mut d));
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert!((a - a).is_zero());
        }
    }

    #[test]
    fn inverse_law() {
        let mut d = HmacDrbg::new(b"fr-inv");
        for _ in 0..48 {
            let a = fr(&mut d);
            if let Some(inv) = a.inverse() {
                assert_eq!(a * inv, Fr::one());
            } else {
                assert!(a.is_zero());
            }
        }
    }
}
