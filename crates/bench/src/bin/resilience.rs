//! Writes `BENCH_resilience.json` — audit latency, throughput and success
//! rate with and without the resilience layer, at channel fault rates of
//! 0%, 5% and 20%.
//!
//! Each cell runs the same workload — dispatch a weighted-sum job, then a
//! full-sample audit — against one honest server behind a seeded
//! `FaultyChannel`. The *raw* arm drives the wire directly (one fault =
//! one lost or spuriously-failed audit); the *resilient* arm goes through
//! `ResilientTransport` + `run_job_resilient`, which retries structural
//! damage and escalates semantic damage. The interesting numbers are the
//! success-rate gap at 20% faults and the latency the recovery layer pays
//! for it.
//!
//! Run with `cargo run --release -p seccloud-bench --bin resilience`.
//! The file lands in the current working directory.
#![forbid(unsafe_code)]

use seccloud_bench::measure_ms;
use seccloud_cloudsim::behavior::Behavior;
// lint: allow(transport, reason=baseline arm of the with/without comparison)
use seccloud_cloudsim::rpc::{audit_over_the_wire, WireServer, WireTransport};
use seccloud_cloudsim::{CloudServer, DesignatedAgency};
use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud_core::storage::DataBlock;
use seccloud_core::wire::WireMessage;
use seccloud_core::{CloudUser, Sio};
use seccloud_resilience::{run_job_resilient, Op, ResilientTransport, RetryPolicy};
use seccloud_testkit::fault::FaultyChannel;

const N_BLOCKS: u64 = 12;
const JOBS: usize = 40;
const FAULT_RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// One measured cell of the rate × arm grid.
struct Cell {
    fault_rate: f64,
    arm: &'static str,
    mean_ms_per_audit: f64,
    success_rate: f64,
    faults_injected: usize,
    recovered_transients: u64,
    escalations: u64,
}

fn request(weight: u64) -> ComputationRequest {
    ComputationRequest::new(
        (0..4u64)
            .map(|i| RequestItem {
                function: ComputeFunction::WeightedSum(vec![weight, weight + 1]),
                positions: vec![i % N_BLOCKS],
            })
            .collect(),
    )
}

/// One honest server pre-loaded with blocks (the upload is out-of-band so
/// both arms measure only the dispatch + audit path), behind a seeded
/// fault channel.
// lint: allow(transport, reason=baseline arm of the with/without comparison)
fn world(seed: u64, rate: f64) -> (CloudUser, DesignatedAgency, FaultyChannel<WireServer>) {
    let sio = Sio::new(b"bench-resilience");
    let user = sio.register("alice");
    let mut server = CloudServer::new(&sio, "cs", Behavior::Honest, b"srv");
    let da = DesignatedAgency::new(&sio, "da", b"agency");
    let blocks: Vec<DataBlock> = (0..N_BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i * 7, i + 1]))
        .collect();
    let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
    assert_eq!(server.store(&user, signed), N_BLOCKS as usize);
    // lint: allow(transport, reason=baseline arm of the with/without comparison)
    let channel = FaultyChannel::new(WireServer::new(server), seed, rate);
    (user, da, channel)
}

/// The baseline: drive the raw wire. Every structural fault is a lost
/// audit; every surviving replay is (at best) a spurious detection.
fn raw_arm(rate: f64, seed: u64) -> Cell {
    let (user, mut da, mut channel) = world(seed, rate);
    let mut ok = 0usize;
    let mut weight = 2u64;
    let total_ms = measure_ms(0, 1, || {
        for _ in 0..JOBS {
            let req = request(weight);
            weight += 1;
            let outcome = channel
                .rpc_compute(user.identity(), da.identity(), &req.to_wire())
                .and_then(|(job_id, commitment)| {
                    audit_over_the_wire(
                        &mut da,
                        &mut channel,
                        &user,
                        &req,
                        job_id,
                        &commitment,
                        req.len(),
                        0,
                    )
                });
            if matches!(&outcome, Ok(v) if !v.detected) {
                ok += 1;
            }
        }
    });
    Cell {
        fault_rate: rate,
        arm: "raw",
        mean_ms_per_audit: total_ms / JOBS as f64,
        success_rate: ok as f64 / JOBS as f64,
        faults_injected: channel.plan().injected.len(),
        recovered_transients: 0,
        escalations: 0,
    }
}

/// The resilient arm: the same workload through the recovery runtime.
fn resilient_arm(rate: f64, seed: u64) -> Cell {
    let (user, mut da, channel) = world(seed, rate);
    let mut transport =
        ResilientTransport::new(channel, RetryPolicy::default(), &seed.to_be_bytes());
    let mut ok = 0usize;
    let mut escalations = 0u64;
    let mut weight = 2u64;
    let total_ms = measure_ms(0, 1, || {
        for _ in 0..JOBS {
            let req = request(weight);
            weight += 1;
            let res = run_job_resilient(&mut da, &mut transport, &user, &req, req.len(), 0);
            escalations += res.stats().escalations;
            if res.is_clean() {
                ok += 1;
            }
        }
    });
    let faults_injected = transport.inner().plan().injected.len();
    // Transport-level (tier-1) retries: faults healed inside single RPCs.
    let transients: u64 = [Op::Store, Op::Compute, Op::Audit, Op::Retrieve]
        .into_iter()
        .map(|op| transport.stats(op).transient_faults)
        .sum();
    Cell {
        fault_rate: rate,
        arm: "resilient",
        mean_ms_per_audit: total_ms / JOBS as f64,
        success_rate: ok as f64 / JOBS as f64,
        faults_injected,
        recovered_transients: transients,
        escalations,
    }
}

fn main() {
    let mut cells = Vec::new();
    for (i, &rate) in FAULT_RATES.iter().enumerate() {
        let seed = 11 + i as u64;
        let raw = raw_arm(rate, seed);
        let res = resilient_arm(rate, seed);
        println!(
            "rate {:>4.0}%: raw {:>7.2} ms/audit ({:>5.1}% ok, {} faults) | \
             resilient {:>7.2} ms/audit ({:>5.1}% ok, {} faults, {} retried, {} escalations)",
            rate * 100.0,
            raw.mean_ms_per_audit,
            raw.success_rate * 100.0,
            raw.faults_injected,
            res.mean_ms_per_audit,
            res.success_rate * 100.0,
            res.faults_injected,
            res.recovered_transients,
            res.escalations,
        );
        cells.push(raw);
        cells.push(res);
    }

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"fault_rate\": {:.2}, \"arm\": \"{}\", \"mean_ms_per_audit\": {:.4}, \
             \"audits_per_sec\": {:.3}, \"success_rate\": {:.4}, \"faults_injected\": {}, \
             \"recovered_transients\": {}, \"escalations\": {} }}",
            c.fault_rate,
            c.arm,
            c.mean_ms_per_audit,
            1_000.0 / c.mean_ms_per_audit,
            c.success_rate,
            c.faults_injected,
            c.recovered_transients,
            c.escalations,
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"seccloud-bench-resilience/v1\",\n  \"jobs_per_cell\": {JOBS},\n  \
         \"threads\": {},\n  \"cells\": [\n{rows}\n  ]\n}}\n",
        seccloud_parallel::num_threads(),
    );
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");
    println!("\nwrote BENCH_resilience.json ({} cells)", cells.len());
}
