//! Detection analysis for the epoch-based Byzantine pool model
//! (paper Section III-B: "our adversary controls at most b servers for any
//! given epoch").
//!
//! Combines the per-audit detection probability from [`super::sampling`]
//! with the pool geometry: if each corrupted server's slice audit catches it
//! with probability `d`, how likely is the DA to expose at least one of the
//! `b` corrupted servers per epoch, and how many epochs until the whole
//! rotating adversary has been caught at least once?

/// Probability that auditing every server in one epoch detects **at least
/// one** of the `b` corrupted servers, when each corrupted server is caught
/// independently with probability `per_server_detection`.
///
/// `1 − (1 − d)^b` — the complement of every cheater escaping.
///
/// # Panics
///
/// Panics if `per_server_detection ∉ [0, 1]`.
pub fn epoch_detection_probability(b: usize, per_server_detection: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&per_server_detection),
        "probability out of range"
    );
    1.0 - (1.0 - per_server_detection).powi(b as i32)
}

/// Probability that **every** corrupted server is exposed within one epoch:
/// `d^b`.
///
/// # Panics
///
/// Panics if `per_server_detection ∉ [0, 1]`.
pub fn epoch_full_exposure_probability(b: usize, per_server_detection: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&per_server_detection),
        "probability out of range"
    );
    per_server_detection.powi(b as i32)
}

/// The smallest number of epochs `e` after which the probability of having
/// detected corruption in *every* epoch's adversary set reaches
/// `confidence`: solves `(1 − (1−d)^b)^e ≥ confidence`… conservatively, the
/// chance that *some* epoch slipped through entirely is
/// `1 − (1 − miss)^e` with `miss = (1−d)^b`; we return the smallest `e`
/// with `1 − miss·e ≥ confidence` under the union bound, falling back to
/// the exact geometric computation.
///
/// Returns `None` when detection is impossible (`d = 0` with `b > 0`) or
/// `confidence` is not in `(0, 1)`.
pub fn epochs_until_detection(b: usize, per_server_detection: f64, confidence: f64) -> Option<u32> {
    if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
        return None;
    }
    if b == 0 {
        return Some(0); // nothing to detect
    }
    let per_epoch = epoch_detection_probability(b, per_server_detection);
    if per_epoch <= 0.0 {
        return None;
    }
    // P[first detection within e epochs] = 1 − (1 − per_epoch)^e
    let miss = 1.0 - per_epoch;
    if miss == 0.0 {
        return Some(1);
    }
    let e = ((1.0 - confidence).ln() / miss.ln()).ceil();
    Some(e.max(1.0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sampling::{cheat_probability, CheatParams};

    #[test]
    fn epoch_detection_reference_values() {
        // One cheater caught with d = 0.5 → 0.5; three cheaters → 1 − 0.5³.
        assert!((epoch_detection_probability(1, 0.5) - 0.5).abs() < 1e-12);
        assert!((epoch_detection_probability(3, 0.5) - 0.875).abs() < 1e-12);
        assert_eq!(epoch_detection_probability(0, 0.9), 0.0);
        assert_eq!(epoch_detection_probability(5, 0.0), 0.0);
        assert_eq!(epoch_detection_probability(5, 1.0), 1.0);
    }

    #[test]
    fn full_exposure_is_stricter_than_any_detection() {
        for b in 1..6 {
            for d in [0.1, 0.5, 0.9] {
                assert!(
                    epoch_full_exposure_probability(b, d)
                        <= epoch_detection_probability(b, d) + 1e-12
                );
            }
        }
    }

    #[test]
    fn epochs_until_detection_monotonicity() {
        // Higher confidence or weaker per-server detection needs more epochs.
        let e1 = epochs_until_detection(2, 0.5, 0.9).unwrap();
        let e2 = epochs_until_detection(2, 0.5, 0.999).unwrap();
        assert!(e2 >= e1);
        let e3 = epochs_until_detection(2, 0.1, 0.9).unwrap();
        assert!(e3 >= e1);
        // Certain detection: one epoch.
        assert_eq!(epochs_until_detection(2, 1.0, 0.999), Some(1));
        // Nothing to detect: zero epochs.
        assert_eq!(epochs_until_detection(0, 0.5, 0.9), Some(0));
        // Impossible detection.
        assert_eq!(epochs_until_detection(2, 0.0, 0.9), None);
        assert_eq!(epochs_until_detection(2, 0.5, 1.5), None);
    }

    #[test]
    fn composes_with_the_sampling_analysis() {
        // A compute-only CSC = 0.5, R = 2 cheater audited with t = 8 per
        // slice escapes the FCS channel with q = (0.75)⁸ ≈ 0.1; with b = 2
        // such servers the epoch detection probability is 1 − q² ≈ 0.99.
        let params = CheatParams::new(0.5, 0.5).with_range(2.0);
        let q = crate::analysis::sampling::fcs_probability(&params, 8);
        let _ = cheat_probability(&params, 8); // full union-bound variant
        let d = 1.0 - q;
        let per_epoch = epoch_detection_probability(2, d);
        assert!(per_epoch > 0.98, "per-epoch {per_epoch}");
        let epochs = epochs_until_detection(2, d, 0.9999).unwrap();
        assert!((2..=3).contains(&epochs), "epochs {epochs}");
    }

    #[test]
    fn geometric_formula_matches_simulation() {
        // Monte-Carlo the geometric distribution directly.
        let (b, d, confidence) = (2usize, 0.4, 0.95);
        let e = epochs_until_detection(b, d, confidence).unwrap();
        let per_epoch = epoch_detection_probability(b, d);
        let mut drbg = seccloud_hash::HmacDrbg::new(b"geometric");
        let trials = 20_000;
        let mut detected_within_e = 0;
        for _ in 0..trials {
            for _epoch in 0..e {
                if drbg.next_f64() < per_epoch {
                    detected_within_e += 1;
                    break;
                }
            }
        }
        let rate = detected_within_e as f64 / trials as f64;
        assert!(rate >= confidence - 0.02, "rate {rate} at e = {e}");
    }
}
