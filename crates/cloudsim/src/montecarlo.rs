//! Monte-Carlo validation of the uncheatability analysis
//! (paper eq. 10/12/14 and Fig. 4).
//!
//! The formulas model each of the `t` samples as independently landing on a
//! cheated item; this module replays the actual process — a server cheats on
//! a random subset of `n` sub-tasks, the DA samples `t` *without
//! replacement* — and estimates the empirical cheat-success probability.
//! Agreement with the closed forms (for `n ≫ t`) is what
//! `bin/detection_sim` reports.

use seccloud_core::analysis::sampling::CheatParams;
use seccloud_hash::HmacDrbg;

/// Configuration of one Monte-Carlo detection experiment.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Cheating profile (CSC, SSC, range, forgery probability).
    pub params: CheatParams,
    /// Number of sub-tasks per request `n`.
    pub n: usize,
    /// Sampling size `t`.
    pub t: usize,
    /// Number of simulated audit rounds.
    pub trials: usize,
}

/// The outcome of a Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Fraction of trials where the cheat went *undetected*
    /// (the empirical `Pr[Cheating Successful]`).
    pub escape_rate: f64,
    /// The analytic value from eq. 14 for comparison.
    pub analytic: f64,
    /// Number of trials run.
    pub trials: usize,
}

impl ExperimentResult {
    /// Absolute gap between simulation and the closed form.
    pub fn abs_error(&self) -> f64 {
        (self.escape_rate - self.analytic).abs()
    }

    /// A ~3σ binomial confidence half-width around the analytic value.
    pub fn three_sigma(&self) -> f64 {
        let p = self.analytic.clamp(1e-12, 1.0 - 1e-12);
        3.0 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }
}

/// Runs the logical-level simulation: no cryptography, just the sampling
/// process, so hundreds of thousands of audits are cheap. Each trial:
///
/// 1. the server skips each sub-task w.p. `1 − CSC` (a skipped task's guess
///    is accidentally right w.p. `1/R`), and serves wrong-position data for
///    each sub-task w.p. `1 − SSC` (escaping w.p. `Pr[SigForge]`);
/// 2. the DA samples `t` of `n` items without replacement;
/// 3. the cheat escapes iff no sampled item exposes either channel.
pub fn run(experiment: &Experiment, seed: &[u8]) -> ExperimentResult {
    let Experiment {
        params,
        n,
        t,
        trials,
    } = *experiment;
    assert!(t <= n, "cannot sample more items than exist");
    let mut drbg = HmacDrbg::new(seed);
    let mut escapes = 0usize;
    for _ in 0..trials {
        if trial_escapes(&params, n, t, &mut drbg) {
            escapes = escapes.saturating_add(1);
        }
    }
    finish(params, t, trials, escapes)
}

/// Parallel counterpart of [`run`]. Trials fan out across
/// [`seccloud_parallel::num_threads`] workers; each trial draws from its own
/// DRBG seeded by `(seed, trial index)`, so the result is identical for
/// every thread count (including `SECCLOUD_THREADS=1`) — but it is a
/// *different* (equally valid) random transcript than the serial [`run`],
/// which streams all trials from one generator.
pub fn run_parallel(experiment: &Experiment, seed: &[u8]) -> ExperimentResult {
    run_parallel_threads(experiment, seed, seccloud_parallel::num_threads())
}

/// [`run_parallel`] with an explicit worker count, for A/B determinism
/// tests and benchmarking.
pub fn run_parallel_threads(
    experiment: &Experiment,
    seed: &[u8],
    threads: usize,
) -> ExperimentResult {
    let Experiment {
        params,
        n,
        t,
        trials,
    } = *experiment;
    assert!(t <= n, "cannot sample more items than exist");
    let escapes: usize = seccloud_parallel::parallel_ranges(trials, threads, |range| {
        range
            .filter(|&trial| {
                let mut drbg = HmacDrbg::new(
                    &[seed, b"/mc-trial/", &(trial as u64).to_be_bytes()[..]].concat(),
                );
                trial_escapes(&params, n, t, &mut drbg)
            })
            .count()
    })
    .into_iter()
    .sum();
    finish(params, t, trials, escapes)
}

/// One simulated audit round: samples `t` of `n` items and rolls the cheat
/// dice lazily per sampled item (equivalent to rolling all `n` up front
/// because the per-item events are independent). Returns `true` iff the
/// cheat goes undetected.
fn trial_escapes(params: &CheatParams, n: usize, t: usize, drbg: &mut HmacDrbg) -> bool {
    let sample = drbg.sample_distinct(n as u64, t as u64);
    for _idx in sample {
        // FCS channel: item was skipped AND the guess missed.
        let skipped = drbg.next_f64() >= params.csc;
        if skipped {
            let guessed_right = match params.range {
                Some(r) => drbg.next_f64() < 1.0 / r,
                None => false,
            };
            if !guessed_right {
                return false;
            }
        }
        // PCS channel: wrong-position data AND no signature forgery.
        let wrong_pos = drbg.next_f64() >= params.ssc;
        if wrong_pos && drbg.next_f64() >= params.sig_forge {
            return false;
        }
    }
    true
}

fn finish(params: CheatParams, t: usize, trials: usize, escapes: usize) -> ExperimentResult {
    // Analytic escape probability: per-sample escape is the product of the
    // two per-channel escape probabilities (both channels must survive).
    let per_sample = params.fcs_base() * params.pcs_base();
    let analytic = per_sample.powi(t as i32);
    ExperimentResult {
        escape_rate: escapes as f64 / trials as f64,
        analytic,
        trials,
    }
}

/// Sweeps `t` and reports `(t, empirical escape, analytic escape)` —
/// the data series behind the detection-probability plot.
pub fn sweep_t(
    params: CheatParams,
    n: usize,
    t_values: &[usize],
    trials: usize,
    seed: &[u8],
) -> Vec<(usize, f64, f64)> {
    t_values
        .iter()
        .map(|&t| {
            let r = run(
                &Experiment {
                    params,
                    n,
                    t,
                    trials,
                },
                &[seed, &t.to_be_bytes()].concat(),
            );
            (t, r.escape_rate, r.analytic)
        })
        .collect()
}

/// Parallel counterpart of [`sweep_t`]: every `t` value still gets the same
/// derived seed, but its trials run through [`run_parallel`], so the series
/// is deterministic per thread count *and* across thread counts.
pub fn sweep_t_parallel(
    params: CheatParams,
    n: usize,
    t_values: &[usize],
    trials: usize,
    seed: &[u8],
) -> Vec<(usize, f64, f64)> {
    t_values
        .iter()
        .map(|&t| {
            let r = run_parallel(
                &Experiment {
                    params,
                    n,
                    t,
                    trials,
                },
                &[seed, &t.to_be_bytes()].concat(),
            );
            (t, r.escape_rate, r.analytic)
        })
        .collect()
}

/// Runs `trials` *full-cryptography* audit rounds — real signatures, real
/// Merkle commitments, real pairings — against a computation-cheating
/// server, and returns the empirical escape rate. Much slower than [`run`];
/// used to validate that the logical simulator models the actual protocol.
pub fn run_crypto(csc: f64, guess_range: Option<u64>, n: usize, t: usize, trials: usize) -> f64 {
    use crate::agency::DesignatedAgency;
    use crate::behavior::Behavior;
    use crate::server::CloudServer;
    use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;
    use seccloud_core::Sio;

    let sio = Sio::new(b"crypto-montecarlo");
    let user = sio.register("mc-user");
    let mut da = DesignatedAgency::new(&sio, "mc-da", b"mc-agency");
    let mut server = CloudServer::new(
        &sio,
        "mc-cs",
        Behavior::ComputationCheater { csc, guess_range },
        b"mc-server",
    );
    let blocks: Vec<DataBlock> = (0..n as u64)
        .map(|i| DataBlock::from_values(i, &[i, i + 1]))
        .collect();
    server.store(
        &user,
        user.sign_blocks(&blocks, &[server.public(), da.public()]),
    );
    let request = ComputationRequest::new(
        (0..n as u64)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i],
            })
            .collect(),
    );

    let mut escapes = 0usize;
    for trial in 0..trials {
        // A fresh commitment per trial re-rolls the server's cheat dice.
        let handle = server
            .handle_computation(&user.identity().to_string(), &request, da.public())
            // lint: allow(panic, reason=simulator invariant, blocks were stored two lines above)
            .expect("blocks stored");
        let verdict = da
            .audit(&server, &handle, &user, t, trial as u64)
            // lint: allow(panic, reason=simulator invariant, warrant was issued for this request)
            .expect("warranted audit");
        if !verdict.detected {
            escapes = escapes.saturating_add(1);
        }
    }
    escapes as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_server_always_escapes() {
        let r = run(
            &Experiment {
                params: CheatParams::new(1.0, 1.0),
                n: 50,
                t: 10,
                trials: 500,
            },
            b"honest",
        );
        assert_eq!(r.escape_rate, 1.0);
        assert_eq!(r.analytic, 1.0);
    }

    #[test]
    fn full_cheater_with_unbounded_range_never_escapes() {
        let r = run(
            &Experiment {
                params: CheatParams::new(0.0, 1.0),
                n: 50,
                t: 1,
                trials: 500,
            },
            b"cheater",
        );
        assert_eq!(r.escape_rate, 0.0);
        assert_eq!(r.analytic, 0.0);
    }

    #[test]
    fn simulation_matches_analytic_within_three_sigma() {
        for (csc, ssc, range, t) in [
            (0.5, 1.0, Some(2.0), 5),
            (0.8, 0.9, None, 8),
            (0.9, 0.5, Some(4.0), 6),
            (0.95, 0.95, Some(2.0), 20),
        ] {
            let mut params = CheatParams::new(csc, ssc);
            if let Some(r) = range {
                params = params.with_range(r);
            }
            let result = run(
                &Experiment {
                    params,
                    n: 400,
                    t,
                    trials: 4_000,
                },
                b"match-test",
            );
            assert!(
                result.abs_error() <= result.three_sigma().max(0.02),
                "csc={csc} ssc={ssc} t={t}: sim {} vs analytic {}",
                result.escape_rate,
                result.analytic
            );
        }
    }

    #[test]
    fn escape_rate_decreases_with_t() {
        let series = sweep_t(
            CheatParams::new(0.7, 0.9).with_range(2.0),
            200,
            &[1, 5, 10, 20, 40],
            2_000,
            b"sweep",
        );
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.03, "roughly monotone: {series:?}");
            assert!(w[1].2 < w[0].2, "analytic strictly decreasing");
        }
    }

    #[test]
    fn forgery_channel_raises_escape() {
        let base = run(
            &Experiment {
                params: CheatParams::new(1.0, 0.5),
                n: 100,
                t: 3,
                trials: 3_000,
            },
            b"forge-base",
        );
        let forging = run(
            &Experiment {
                params: CheatParams::new(1.0, 0.5).with_sig_forge(0.9),
                n: 100,
                t: 3,
                trials: 3_000,
            },
            b"forge-on",
        );
        assert!(forging.escape_rate > base.escape_rate);
    }

    #[test]
    fn crypto_pipeline_matches_logical_simulator() {
        // The real-pairing audit and the logical model must see (nearly)
        // the same escape statistics. Kept small: each crypto trial costs
        // t+1 pairings.
        let (csc, n, t, trials) = (0.5, 24usize, 4usize, 30usize);
        let crypto_rate = run_crypto(csc, None, n, t, trials);
        let logical = run(
            &Experiment {
                params: CheatParams::new(csc, 1.0),
                n,
                t,
                trials: 5_000,
            },
            b"cross-validate",
        );
        // Analytic escape = 0.5⁴ = 0.0625; allow generous binomial noise on
        // the 30-trial crypto estimate (3σ ≈ 0.14).
        assert!(
            (crypto_rate - logical.analytic).abs() < 0.2,
            "crypto {crypto_rate} vs analytic {}",
            logical.analytic
        );
        assert!(logical.abs_error() < 0.02);
    }

    #[test]
    fn crypto_pipeline_extremes() {
        // CSC = 1 (honest): never detected. CSC = 0, R = ∞: always caught.
        assert_eq!(run_crypto(1.0, None, 8, 4, 5), 1.0);
        assert_eq!(run_crypto(0.0, None, 8, 4, 5), 0.0);
    }

    #[test]
    fn parallel_run_is_thread_count_invariant() {
        let exp = Experiment {
            params: CheatParams::new(0.7, 0.9).with_range(2.0),
            n: 200,
            t: 8,
            trials: 3_000,
        };
        let reference = run_parallel_threads(&exp, b"invariant", 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                run_parallel_threads(&exp, b"invariant", threads),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_run_matches_analytic_within_three_sigma() {
        let result = run_parallel(
            &Experiment {
                params: CheatParams::new(0.8, 0.9).with_range(4.0),
                n: 400,
                t: 6,
                trials: 4_000,
            },
            b"parallel-match",
        );
        assert!(
            result.abs_error() <= result.three_sigma().max(0.02),
            "sim {} vs analytic {}",
            result.escape_rate,
            result.analytic
        );
    }

    #[test]
    fn parallel_sweep_tracks_serial_sweep_analytics() {
        let params = CheatParams::new(0.7, 0.9).with_range(2.0);
        let serial = sweep_t(params, 200, &[1, 5, 10, 20], 2_000, b"sweep-cmp");
        let parallel = sweep_t_parallel(params, 200, &[1, 5, 10, 20], 2_000, b"sweep-cmp");
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.2, p.2, "analytic values must agree exactly");
            // Different transcripts, same distribution: both estimators sit
            // within a few σ of the shared analytic value.
            assert!(
                (s.1 - p.1).abs() < 0.06,
                "serial {} vs parallel {}",
                s.1,
                p.1
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = run(
            &Experiment {
                params: CheatParams::new(0.5, 0.5),
                n: 5,
                t: 6,
                trials: 1,
            },
            b"x",
        );
    }
}
