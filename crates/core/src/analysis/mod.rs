//! The paper's quantitative analysis (Section VII).
//!
//! * [`sampling`] — uncheatability: the cheat-success probabilities of
//!   eq. 10/12/14 and the required sample size behind Fig. 4.
//! * [`pool`] — epoch-model detection: how fast a rotating b-of-n
//!   Byzantine adversary is exposed (Section III-B).
//! * [`costmodel`] — the total-cost model of eq. 17 with Theorem 3's
//!   closed-form optimal sample size, plus the verification-cost curves of
//!   Fig. 5 and Table II.

pub mod costmodel;
pub mod pool;
pub mod sampling;

pub use costmodel::{CostParams, SchemeCosts, VerificationCostModel};
pub use pool::{epoch_detection_probability, epochs_until_detection};
pub use sampling::{
    cheat_probability, fcs_probability, pcs_probability, required_sample_size, CheatParams,
};
