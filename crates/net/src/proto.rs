//! RPC envelope messages: the payloads that ride inside `frame` frames.
//!
//! One [`NetRequest`] maps one-to-one onto a [`WireTransport`] method; one
//! [`NetResponse`] carries the method's result back, including a fully
//! structured error. Errors cross the socket *typed*, not stringified:
//! [`RpcError`], [`ServerError`] and [`WarrantError`] each get a codec
//! here, so the client-side transient-vs-byzantine classification
//! (`RpcError::is_transient`) runs on exactly the value the server
//! produced. A deployment that flattened errors to strings would lose the
//! taxonomy at the first hop.
//!
//! Both envelopes implement [`WireMessage`] and therefore inherit the
//! version header, length-prefix bounds and trailing-byte rejection of the
//! canonical codec in `seccloud_core::wire`.
//!
//! [`WireTransport`]: seccloud_cloudsim::rpc::WireTransport

use seccloud_cloudsim::rpc::RpcError;
use seccloud_cloudsim::server::ServerError;
use seccloud_core::warrant::WarrantError;
use seccloud_core::wire::{Reader, WireError, WireMessage, Writer};

/// A client→server call, one variant per [`WireTransport`] method.
///
/// [`WireTransport`]: seccloud_cloudsim::rpc::WireTransport
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetRequest {
    /// `rpc_store(owner, body)`.
    Store {
        /// The uploading user's identity string.
        owner: String,
        /// Serialized block bundle (`encode_store_body` output).
        body: Vec<u8>,
    },
    /// `rpc_compute(owner, auditor, body)`.
    Compute {
        /// The data owner's identity string.
        owner: String,
        /// The auditing verifier's identity string.
        auditor: String,
        /// Serialized [`ComputationRequest`](seccloud_core::computation::ComputationRequest).
        body: Vec<u8>,
    },
    /// `rpc_audit(owner, auditor, job_id, challenge, warrant, now)`.
    Audit {
        /// The data owner's identity string.
        owner: String,
        /// The auditing verifier's identity string.
        auditor: String,
        /// Server-assigned job handle from the compute call.
        job_id: u64,
        /// Serialized [`AuditChallenge`](seccloud_core::computation::AuditChallenge).
        challenge: Vec<u8>,
        /// Serialized [`Warrant`](seccloud_core::warrant::Warrant).
        warrant: Vec<u8>,
        /// The auditor's clock, for warrant-expiry checks.
        now: u64,
    },
    /// `rpc_retrieve(owner, position)`.
    Retrieve {
        /// The data owner's identity string.
        owner: String,
        /// Block position to fetch.
        position: u64,
    },
}

/// A server→client reply; the success variants mirror [`NetRequest`]'s
/// return types, `Failed` carries a structured [`RpcError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetResponse {
    /// Blocks accepted by a `Store` call.
    Stored(u64),
    /// `(job_id, serialized commitment)` from a `Compute` call.
    Computed {
        /// Server-assigned job handle.
        job_id: u64,
        /// Serialized [`Commitment`](seccloud_core::computation::Commitment).
        commitment: Vec<u8>,
    },
    /// Serialized audit response from an `Audit` call.
    Audited(Vec<u8>),
    /// Result of a `Retrieve` call (`None` = authoritative "no such
    /// block", distinct from any channel failure).
    Retrieved(Option<Vec<u8>>),
    /// The call failed; the error survives the hop fully typed.
    Failed(RpcError),
}

// --- error codecs ---------------------------------------------------------
//
// Tags are append-only: new variants take the next free tag so old peers
// reject them as BadTag instead of misparsing.

fn put_wire_error(w: &mut Writer, e: &WireError) {
    match e {
        WireError::Truncated => w.put_u8(0),
        WireError::BadTag(t) => {
            w.put_u8(1);
            w.put_u8(*t);
        }
        WireError::BadElement => w.put_u8(2),
        WireError::TrailingBytes => w.put_u8(3),
        WireError::LengthOverflow => w.put_u8(4),
        WireError::Timeout => w.put_u8(5),
        WireError::ConnectionLost => w.put_u8(6),
        WireError::FrameTooLarge => w.put_u8(7),
        WireError::TruncatedFrame => w.put_u8(8),
    }
}

fn take_wire_error(r: &mut Reader<'_>) -> Result<WireError, WireError> {
    Ok(match r.take_u8()? {
        0 => WireError::Truncated,
        1 => WireError::BadTag(r.take_u8()?),
        2 => WireError::BadElement,
        3 => WireError::TrailingBytes,
        4 => WireError::LengthOverflow,
        5 => WireError::Timeout,
        6 => WireError::ConnectionLost,
        7 => WireError::FrameTooLarge,
        8 => WireError::TruncatedFrame,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_warrant_error(w: &mut Writer, e: &WarrantError) {
    match e {
        WarrantError::Expired => w.put_u8(0),
        WarrantError::WrongDelegatee => w.put_u8(1),
        WarrantError::WrongRequest => w.put_u8(2),
        WarrantError::NotDesignated => w.put_u8(3),
        WarrantError::BadSignature => w.put_u8(4),
    }
}

fn take_warrant_error(r: &mut Reader<'_>) -> Result<WarrantError, WireError> {
    Ok(match r.take_u8()? {
        0 => WarrantError::Expired,
        1 => WarrantError::WrongDelegatee,
        2 => WarrantError::WrongRequest,
        3 => WarrantError::NotDesignated,
        4 => WarrantError::BadSignature,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_server_error(w: &mut Writer, e: &ServerError) {
    match e {
        ServerError::MissingBlock { position } => {
            w.put_u8(0);
            w.put_u64(*position);
        }
        ServerError::RejectedUpload { slot } => {
            w.put_u8(1);
            w.put_u64(*slot as u64);
        }
        ServerError::UnknownJob => w.put_u8(2),
        ServerError::BadChallenge => w.put_u8(3),
        ServerError::Warrant(we) => {
            w.put_u8(4);
            put_warrant_error(w, we);
        }
        ServerError::EmptyRequest => w.put_u8(5),
    }
}

fn take_server_error(r: &mut Reader<'_>) -> Result<ServerError, WireError> {
    Ok(match r.take_u8()? {
        0 => ServerError::MissingBlock {
            position: r.take_u64()?,
        },
        1 => ServerError::RejectedUpload {
            slot: r.take_u64()? as usize,
        },
        2 => ServerError::UnknownJob,
        3 => ServerError::BadChallenge,
        4 => ServerError::Warrant(take_warrant_error(r)?),
        5 => ServerError::EmptyRequest,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_rpc_error(w: &mut Writer, e: &RpcError) {
    match e {
        RpcError::Malformed(we) => {
            w.put_u8(0);
            put_wire_error(w, we);
        }
        RpcError::Server(se) => {
            w.put_u8(1);
            put_server_error(w, se);
        }
        RpcError::Timeout { elapsed_ms } => {
            w.put_u8(2);
            w.put_u64(*elapsed_ms);
        }
        RpcError::ChannelUnavailable => w.put_u8(3),
    }
}

fn take_rpc_error(r: &mut Reader<'_>) -> Result<RpcError, WireError> {
    Ok(match r.take_u8()? {
        0 => RpcError::Malformed(take_wire_error(r)?),
        1 => RpcError::Server(take_server_error(r)?),
        2 => RpcError::Timeout {
            elapsed_ms: r.take_u64()?,
        },
        3 => RpcError::ChannelUnavailable,
        t => return Err(WireError::BadTag(t)),
    })
}

// --- envelope codecs ------------------------------------------------------

impl WireMessage for NetRequest {
    fn encode_body(&self, w: &mut Writer) {
        match self {
            NetRequest::Store { owner, body } => {
                w.put_u8(0);
                w.put_str(owner);
                w.put_bytes(body);
            }
            NetRequest::Compute {
                owner,
                auditor,
                body,
            } => {
                w.put_u8(1);
                w.put_str(owner);
                w.put_str(auditor);
                w.put_bytes(body);
            }
            NetRequest::Audit {
                owner,
                auditor,
                job_id,
                challenge,
                warrant,
                now,
            } => {
                w.put_u8(2);
                w.put_str(owner);
                w.put_str(auditor);
                w.put_u64(*job_id);
                w.put_bytes(challenge);
                w.put_bytes(warrant);
                w.put_u64(*now);
            }
            NetRequest::Retrieve { owner, position } => {
                w.put_u8(3);
                w.put_str(owner);
                w.put_u64(*position);
            }
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => NetRequest::Store {
                owner: r.take_str()?,
                body: r.take_bytes()?.to_vec(),
            },
            1 => NetRequest::Compute {
                owner: r.take_str()?,
                auditor: r.take_str()?,
                body: r.take_bytes()?.to_vec(),
            },
            2 => NetRequest::Audit {
                owner: r.take_str()?,
                auditor: r.take_str()?,
                job_id: r.take_u64()?,
                challenge: r.take_bytes()?.to_vec(),
                warrant: r.take_bytes()?.to_vec(),
                now: r.take_u64()?,
            },
            3 => NetRequest::Retrieve {
                owner: r.take_str()?,
                position: r.take_u64()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl WireMessage for NetResponse {
    fn encode_body(&self, w: &mut Writer) {
        match self {
            NetResponse::Stored(n) => {
                w.put_u8(0);
                w.put_u64(*n);
            }
            NetResponse::Computed { job_id, commitment } => {
                w.put_u8(1);
                w.put_u64(*job_id);
                w.put_bytes(commitment);
            }
            NetResponse::Audited(bytes) => {
                w.put_u8(2);
                w.put_bytes(bytes);
            }
            NetResponse::Retrieved(opt) => {
                w.put_u8(3);
                match opt {
                    Some(bytes) => {
                        w.put_u8(1);
                        w.put_bytes(bytes);
                    }
                    None => w.put_u8(0),
                }
            }
            NetResponse::Failed(e) => {
                w.put_u8(4);
                put_rpc_error(w, e);
            }
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => NetResponse::Stored(r.take_u64()?),
            1 => NetResponse::Computed {
                job_id: r.take_u64()?,
                commitment: r.take_bytes()?.to_vec(),
            },
            2 => NetResponse::Audited(r.take_bytes()?.to_vec()),
            3 => NetResponse::Retrieved(match r.take_u8()? {
                0 => None,
                1 => Some(r.take_bytes()?.to_vec()),
                t => return Err(WireError::BadTag(t)),
            }),
            4 => NetResponse::Failed(take_rpc_error(r)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rpc_errors() -> Vec<RpcError> {
        let wire = [
            WireError::Truncated,
            WireError::BadTag(7),
            WireError::BadElement,
            WireError::TrailingBytes,
            WireError::LengthOverflow,
            WireError::Timeout,
            WireError::ConnectionLost,
            WireError::FrameTooLarge,
            WireError::TruncatedFrame,
        ];
        let server = [
            ServerError::MissingBlock { position: 42 },
            ServerError::RejectedUpload { slot: 3 },
            ServerError::UnknownJob,
            ServerError::BadChallenge,
            ServerError::Warrant(WarrantError::Expired),
            ServerError::Warrant(WarrantError::WrongDelegatee),
            ServerError::Warrant(WarrantError::WrongRequest),
            ServerError::Warrant(WarrantError::NotDesignated),
            ServerError::Warrant(WarrantError::BadSignature),
            ServerError::EmptyRequest,
        ];
        let mut out: Vec<RpcError> = Vec::new();
        out.extend(wire.into_iter().map(RpcError::Malformed));
        out.extend(server.into_iter().map(RpcError::Server));
        out.push(RpcError::Timeout { elapsed_ms: 1234 });
        out.push(RpcError::ChannelUnavailable);
        out
    }

    #[test]
    fn every_request_round_trips() {
        let cases = [
            NetRequest::Store {
                owner: "alice".into(),
                body: vec![1, 2, 3],
            },
            NetRequest::Compute {
                owner: "alice".into(),
                auditor: "da".into(),
                body: vec![],
            },
            NetRequest::Audit {
                owner: "alice".into(),
                auditor: "da".into(),
                job_id: 9,
                challenge: vec![5; 40],
                warrant: vec![6; 17],
                now: 1_000,
            },
            NetRequest::Retrieve {
                owner: "bob".into(),
                position: u64::MAX,
            },
        ];
        for req in cases {
            assert_eq!(NetRequest::from_wire(&req.to_wire()).unwrap(), req);
        }
    }

    #[test]
    fn every_response_round_trips() {
        let mut cases = vec![
            NetResponse::Stored(12),
            NetResponse::Computed {
                job_id: 4,
                commitment: vec![9; 64],
            },
            NetResponse::Audited(vec![7; 100]),
            NetResponse::Retrieved(Some(vec![1])),
            NetResponse::Retrieved(None),
        ];
        cases.extend(all_rpc_errors().into_iter().map(NetResponse::Failed));
        for resp in cases {
            assert_eq!(NetResponse::from_wire(&resp.to_wire()).unwrap(), resp);
        }
    }

    #[test]
    fn transience_survives_the_hop() {
        // The whole point of typed errors on the wire: the client classifies
        // exactly what the server produced.
        for err in all_rpc_errors() {
            let before = err.is_transient();
            let decoded = match NetResponse::from_wire(&NetResponse::Failed(err).to_wire()) {
                Ok(NetResponse::Failed(e)) => e,
                other => panic!("unexpected decode {other:?}"),
            };
            assert_eq!(decoded.is_transient(), before);
        }
    }

    #[test]
    fn garbage_decodes_to_typed_errors_never_panics() {
        use seccloud_hash::HmacDrbg;
        let mut d = HmacDrbg::new(b"seccloud-net/proto-fuzz");
        for _ in 0..256 {
            let len = d.next_below(256) as usize;
            let bytes = d.next_bytes(len);
            let _ = NetRequest::from_wire(&bytes);
            let _ = NetResponse::from_wire(&bytes);
        }
    }
}
