//! Benches behind Fig. 5 / Table II's "ours" rows: batch vs individual
//! designated verification across batch sizes, serial vs parallel.

use seccloud_bench::Bench;
use seccloud_ibs::{designate, sign, BatchItem, BatchVerifier, MasterKey};

fn make_items(n: usize) -> (seccloud_ibs::VerifierKey, Vec<BatchItem>) {
    let sio = MasterKey::from_seed(b"bench-batch");
    let server = sio.extract_verifier("cs");
    let items = (0..n)
        .map(|i| {
            let user = sio.extract_user(&format!("user-{}", i % 4));
            let msg = format!("block-{i}").into_bytes();
            let sig = designate(&sign(&user, &msg, b"n"), server.public());
            BatchItem {
                signer: user.public().clone(),
                message: msg,
                signature: sig,
            }
        })
        .collect();
    (server, items)
}

fn bench_batch_vs_individual() {
    let mut g = Bench::group("batch_verify");
    for &n in &[1usize, 4, 16, 32] {
        let (server, items) = make_items(n);
        g.bench(&format!("individual/{n}"), || {
            assert!(seccloud_ibs::verify_individually(&items, &server).is_none());
        });
        g.bench(&format!("individual_parallel/{n}"), || {
            assert!(seccloud_ibs::verify_individually_parallel(&items, &server).is_none());
        });
        g.bench(&format!("batch/{n}"), || {
            let mut batch = BatchVerifier::new();
            for item in &items {
                batch.push_item(item);
            }
            assert!(batch.verify(&server));
        });
        // Ablation: aggregation (fold) cost alone, without the pairing.
        g.bench(&format!("fold_only/{n}"), || {
            let mut batch = BatchVerifier::new();
            for item in &items {
                batch.push_item(item);
            }
            batch.len()
        });
    }
}

fn main() {
    bench_batch_vs_individual();
}
