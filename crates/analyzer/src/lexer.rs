//! A lightweight, dependency-free Rust lexer.
//!
//! The lint rules only need *token-level* structure: identifiers, literals,
//! punctuation and — crucially — a faithful separation of comments and
//! string literals from code, so that `unwrap` inside a doc example or an
//! error message never trips a rule. This is deliberately not a parser
//! (no `syn`, per the workspace's zero-dependency rule); every rule is
//! written against the token stream plus a few structural scans
//! (brace matching, attribute recognition).
//!
//! Handled: line comments, nested block comments, string/byte-string
//! literals with escapes, raw strings `r#".."#` with any number of hashes,
//! raw identifiers `r#fn`, char and byte-char literals, lifetimes, numeric
//! literals, and joined multi-character operators (`==`, `!=`, `&&`, …).

/// The coarse classification of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `unsafe`, …).
    Ident,
    /// Numeric literal (`42`, `0xff`, `1.5e3`).
    Number,
    /// String, byte-string or raw-string literal.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`).
    Lifetime,
    /// Punctuation, with common multi-character operators joined.
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (for `Str`, the quotes are included).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// One comment (line or block) with its span and text.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// 1-based line on which the comment ends (differs for block comments).
    pub end_line: u32,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
}

/// Lexes `src` into (tokens, comments). Never fails: unexpected bytes are
/// emitted as single-character `Punct` tokens, and unterminated literals
/// simply run to end-of-file — for a linter, graceful degradation beats
/// rejection.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

/// Multi-character operators joined into single `Punct` tokens, longest
/// first so greedy matching is correct.
const JOINED: [&str; 25] = [
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "//",
];

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            toks: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == 'r' && self.raw_string_ahead(1) {
                let s = self.raw_string(1);
                self.push(TokKind::Str, s, line);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_string_ahead(2) {
                let s = self.raw_string(2);
                self.push(TokKind::Str, s, line);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                let s = self.string();
                self.push(TokKind::Str, format!("b{s}"), line);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                let s = self.char_literal();
                self.push(TokKind::Char, format!("b{s}"), line);
            } else if c == 'r' && self.peek(1) == Some('#') && self.ident_start_at(2) {
                // Raw identifier `r#fn`.
                self.bump();
                self.bump();
                let id = self.ident();
                self.push(TokKind::Ident, id, line);
            } else if c == '"' {
                let s = self.string();
                self.push(TokKind::Str, s, line);
            } else if c == '\'' {
                self.quote_token(line);
            } else if c.is_ascii_digit() {
                let n = self.number();
                self.push(TokKind::Number, n, line);
            } else if c == '_' || c.is_alphabetic() {
                let id = self.ident();
                self.push(TokKind::Ident, id, line);
            } else {
                self.punct(line);
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    /// Is `r` (at offset-1 hashes) the start of a raw string: `#*"`?
    fn raw_string_ahead(&self, mut at: usize) -> bool {
        while self.peek(at) == Some('#') {
            at += 1;
        }
        self.peek(at) == Some('"')
    }

    fn ident_start_at(&self, at: usize) -> bool {
        self.peek(at).is_some_and(|c| c == '_' || c.is_alphabetic())
    }

    /// Consumes `r#*"…"#*` (with `prefix` chars before the hashes: 1 for
    /// `r`, 2 for `br`) and returns the full text.
    fn raw_string(&mut self, prefix: usize) -> String {
        let mut text = String::new();
        for _ in 0..prefix {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if let Some(c) = self.bump() {
            text.push(c); // opening quote
        }
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        text.push('#');
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consumes a `"…"` string with escapes; returns text with quotes.
    fn string(&mut self) -> String {
        let mut text = String::new();
        if let Some(c) = self.bump() {
            text.push(c);
        }
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consumes a `'…'` char literal (opening quote still pending).
    fn char_literal(&mut self) -> String {
        let mut text = String::new();
        if let Some(c) = self.bump() {
            text.push(c); // opening quote
        }
        match self.bump() {
            None => return text,
            Some('\\') => {
                text.push('\\');
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            }
            Some(c) => text.push(c),
        }
        // Consume to the closing quote (handles multi-char escapes like
        // `'\u{1F600}'`).
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\'' {
                break;
            }
        }
        text
    }

    /// A `'` is a char literal or a lifetime; disambiguate by lookahead.
    fn quote_token(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // the quote
            let id = self.ident();
            self.push(TokKind::Lifetime, format!("'{id}"), line);
        } else {
            let s = self.char_literal();
            self.push(TokKind::Char, s, line);
        }
    }

    fn ident(&mut self) -> String {
        let mut id = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                id.push(c);
                self.bump();
            } else {
                break;
            }
        }
        id
    }

    fn number(&mut self) -> String {
        let mut n = String::new();
        while let Some(c) = self.peek(0) {
            // A `.` joins the number only as a decimal point (digit follows,
            // none seen yet) — `0..10` stays a number plus a range operator.
            let part_of_number = c == '_'
                || c.is_alphanumeric()
                || (c == '.'
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                    && !n.contains('.'));
            if !part_of_number {
                break;
            }
            n.push(c);
            self.bump();
        }
        n
    }

    fn punct(&mut self, line: u32) {
        for op in JOINED {
            let len = op.chars().count();
            if (0..len).all(|i| self.peek(i) == op.chars().nth(i)) {
                for _ in 0..len {
                    self.bump();
                }
                self.push(TokKind::Punct, op.to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).0.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let (toks, comments) = lex("let x = \"unwrap()\"; // a.unwrap() here\n/* panic! */ y");
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("unwrap"));
        assert!(comments[1].text.contains("panic"));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still comment */ token");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "token");
        assert!(comments[0].text.contains("still comment"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = texts(r####"let s = r#"has "quotes" and // slashes"# ;"####);
        assert!(toks.contains(&"s".to_string()));
        assert!(toks.iter().any(|t| t.contains("slashes")));
        assert_eq!(toks.last().map(String::as_str), Some(";"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let (toks, _) = lex(r###"f(b"bytes", br#"raw"#, b'x')"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'z'; let e = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn joined_operators() {
        let toks = texts("a == b != c && d || e :: f -> g => h .. i ..= j");
        for op in ["==", "!=", "&&", "||", "::", "->", "=>", "..", "..="] {
            assert!(toks.contains(&op.to_string()), "missing {op}");
        }
    }

    #[test]
    fn line_numbers_are_tracked() {
        let (toks, comments) = lex("a\nb /* x\ny */ c\n// tail\nd");
        let find = |s: &str| toks.iter().find(|t| t.text == s).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("c"), Some(3));
        assert_eq!(find("d"), Some(5));
        assert_eq!(comments[0].line, 2);
        assert_eq!(comments[0].end_line, 3);
        assert_eq!(comments[1].line, 4);
    }

    #[test]
    fn raw_identifiers() {
        let (toks, _) = lex("let r#fn = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "fn"));
    }

    #[test]
    fn numbers_including_floats_and_hex() {
        let (toks, _) = lex("0xff 1_000 1.5e3 0..10");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert!(nums.contains(&"0xff".to_string()));
        assert!(nums.contains(&"1_000".to_string()));
        assert!(nums.contains(&"1.5e3".to_string()));
        // `0..10` must lex as number, range op, number — not a float.
        assert!(toks.iter().any(|t| t.text == ".."));
    }
}
