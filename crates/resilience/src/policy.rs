//! Retry policy: attempt counts, exponential backoff and time budgets.

use seccloud_hash::HmacDrbg;

/// Governs how hard the resilience layer fights for one audit.
///
/// Two nested loops consume it: the transport retries *one RPC* up to
/// [`max_attempts`](RetryPolicy::max_attempts) times (tier 1, structural
/// damage), and the audit driver re-runs *whole challenge rounds* up to
/// [`max_rounds`](RetryPolicy::max_rounds) times (tier 2, semantic damage),
/// all under one `total_budget_ms` of virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per RPC call (including the first).
    pub max_attempts: u32,
    /// Challenge rounds per audit (including the first).
    pub max_rounds: u32,
    /// Backoff before retry `k` starts at `base_backoff_ms · 2^(k-1)`.
    pub base_backoff_ms: u64,
    /// Ceiling on the exponential backoff.
    pub max_backoff_ms: u64,
    /// Upper bound of the DRBG jitter added to every backoff (decorrelates
    /// retry storms across endpoints while staying replayable).
    pub jitter_ms: u64,
    /// Per-attempt deadline: an attempt whose modeled latency exceeds this
    /// is a timeout (transient).
    pub call_timeout_ms: u64,
    /// Total virtual-time budget for one audit, backoffs included.
    pub total_budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            max_rounds: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 2_000,
            jitter_ms: 5,
            call_timeout_ms: 1_000,
            total_budget_ms: 60_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry attempt `attempt` (1-based: the
    /// wait after the first failure is `backoff_ms(1, …)`), exponential
    /// with a cap plus DRBG jitter.
    pub fn backoff_ms(&self, attempt: u32, drbg: &mut HmacDrbg) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms);
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            drbg.next_below(self.jitter_ms + 1)
        };
        raw.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> RetryPolicy {
        RetryPolicy {
            jitter_ms: 0,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn backoff_grows_exponentially_until_the_cap() {
        let p = no_jitter();
        let mut drbg = HmacDrbg::new(b"bk");
        assert_eq!(p.backoff_ms(1, &mut drbg), 10);
        assert_eq!(p.backoff_ms(2, &mut drbg), 20);
        assert_eq!(p.backoff_ms(3, &mut drbg), 40);
        assert_eq!(p.backoff_ms(9, &mut drbg), 2_000, "capped at max_backoff");
        assert_eq!(p.backoff_ms(64, &mut drbg), 2_000, "shift exponent capped");
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let p = RetryPolicy {
            jitter_ms: 9,
            ..RetryPolicy::default()
        };
        let draw = |seed: &[u8]| {
            let mut drbg = HmacDrbg::new(seed);
            (1..30)
                .map(|a| p.backoff_ms(a, &mut drbg))
                .collect::<Vec<_>>()
        };
        let a = draw(b"j1");
        for (i, &b) in a.iter().enumerate() {
            let base = p
                .base_backoff_ms
                .saturating_mul(1 << (i as u32).min(32))
                .min(p.max_backoff_ms);
            assert!((base..=base + 9).contains(&b), "attempt {i}: {b}");
        }
        assert_eq!(a, draw(b"j1"));
    }
}
