//! Dynamic storage with freshness auditing — the extension the paper's
//! related-work section flags as missing from first-generation PDP schemes
//! ("they did not consider the dynamic data storage", re [8]).
//!
//! A document-management user inserts, updates and deletes blocks; a
//! rollback-attacking server keeps serving *old but correctly signed*
//! versions, which only the version ledger exposes.
//!
//! ```text
//! cargo run --release --example dynamic_storage
//! ```

use seccloud::core::dynstore::{audit_dynamic, DynAuditError, DynamicStore, OwnerLedger};
use seccloud::core::Sio;

fn main() {
    let sio = Sio::new(b"dynamic-storage-demo");
    let user = sio.register("docs@firm.example");
    let da = sio.register_verifier("da.audit.example");
    let mut ledger = OwnerLedger::new();
    let mut store = DynamicStore::new();

    // Day 1: three contracts uploaded.
    for (pos, text) in [(0u64, "draft A"), (1, "draft B"), (2, "draft C")] {
        store.put(user.dyn_insert(&mut ledger, pos, text.as_bytes().to_vec(), &[da.public()]));
    }
    println!("day 1: {} documents stored", store.len());
    assert!(audit_dynamic(da.key(), user.public(), &ledger, &store).is_empty());

    // Day 2: contract B revised twice, contract C withdrawn.
    store.put(user.dyn_update(&mut ledger, 1, b"final B rev1".to_vec(), &[da.public()]));
    store.put(user.dyn_update(&mut ledger, 1, b"final B rev2".to_vec(), &[da.public()]));
    user.dyn_delete(&mut ledger, 2);
    store.delete(2);
    println!(
        "day 2: document 1 at version {}, document 2 deleted",
        ledger.version_of(1).unwrap()
    );
    assert!(audit_dynamic(da.key(), user.public(), &ledger, &store).is_empty());

    // Day 3: the server is compromised and rolls document 1 back to the
    // version an adversary prefers. The old blob carries a VALID signature —
    // a static audit would accept it. The freshness audit does not.
    let stale = {
        let mut rollback_ledger = OwnerLedger::new();
        user.dyn_insert(
            &mut rollback_ledger,
            1,
            b"final B rev1".to_vec(),
            &[da.public()],
        );
        // Re-create the version-1 upload the attacker replayed.
        let mut l2 = OwnerLedger::new();
        user.dyn_insert(&mut l2, 1, b"draft B".to_vec(), &[da.public()]);
        user.dyn_update(&mut l2, 1, b"final B rev1".to_vec(), &[da.public()])
    };
    store.put(stale);
    let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
    println!("day 3 audit violations: {violations:?}");
    assert_eq!(
        violations,
        vec![(
            1,
            DynAuditError::StaleVersion {
                expected: 2,
                got: 1
            }
        )]
    );

    println!(
        "\nThe rollback was caught by the O(1)-per-block version ledger even \
         though every signature the server presented was genuine."
    );
}
