//! Per-server circuit breaker.
//!
//! The classic three-state machine over virtual time:
//!
//! ```text
//!            failures ≥ threshold              cooloff elapsed
//!   Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//!     ▲                              ▲                               │
//!     │ probe succeeds               │ probe fails (cooloff doubles) │
//!     └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! The breaker tracks *availability*, not honesty: only call-level
//! failures (exhausted retries, timeouts) feed it. Byzantine evidence is
//! accounted separately in the transport's suspicion score — a reachable
//! lying server must keep answering audits so it can be convicted, not be
//! fenced off as "down".

/// Tunables for one [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive call failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Initial Open hold time before a HalfOpen probe is allowed.
    pub cooloff_ms: u64,
    /// Ceiling on the doubling cooloff.
    pub max_cooloff_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooloff_ms: 1_000,
            max_cooloff_ms: 30_000,
        }
    }
}

/// The breaker's current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; counts consecutive failures.
    Closed {
        /// Consecutive call failures seen so far.
        failures: u32,
    },
    /// Fail fast until `until_ms`.
    Open {
        /// Virtual time at which a probe becomes allowed.
        until_ms: u64,
        /// The cooloff that produced `until_ms` (doubles on re-trip).
        cooloff_ms: u64,
    },
    /// One probe call is in flight; its outcome decides the next state.
    HalfOpen {
        /// The cooloff to double if the probe fails.
        cooloff_ms: u64,
    },
}

/// A per-server circuit breaker over virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with `config`.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker is currently refusing traffic at `now_ms`.
    pub fn is_open(&self, now_ms: u64) -> bool {
        matches!(self.state, BreakerState::Open { until_ms, .. } if now_ms < until_ms)
    }

    /// Gate for one call at `now_ms`: `true` lets the call proceed (and,
    /// when Open has cooled off, transitions to a HalfOpen probe); `false`
    /// means fail fast without touching the wire.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open {
                until_ms,
                cooloff_ms,
            } => {
                if now_ms >= until_ms {
                    self.state = BreakerState::HalfOpen { cooloff_ms };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the breaker and clears the streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// Records a failed call at `now_ms`: extends the failure streak, trips
    /// to Open at the threshold, and doubles the cooloff when a HalfOpen
    /// probe fails.
    pub fn on_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    self.trip(now_ms, self.config.cooloff_ms);
                } else {
                    self.state = BreakerState::Closed { failures };
                }
            }
            BreakerState::HalfOpen { cooloff_ms } => {
                let next = cooloff_ms.saturating_mul(2).min(self.config.max_cooloff_ms);
                self.trip(now_ms, next);
            }
            BreakerState::Open { .. } => {
                // A failure reported while Open (e.g. a queued result):
                // keep the current hold.
            }
        }
    }

    fn trip(&mut self, now_ms: u64, cooloff_ms: u64) {
        self.state = BreakerState::Open {
            until_ms: now_ms.saturating_add(cooloff_ms),
            cooloff_ms,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooloff_ms: 100,
            max_cooloff_ms: 400,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(0);
        assert!(b.allow(0), "still closed below the threshold");
        b.on_failure(0);
        assert!(b.is_open(0));
        assert!(!b.allow(50), "fail fast inside the cooloff");
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(0);
        b.on_success();
        b.on_failure(0);
        b.on_failure(0);
        assert!(b.allow(0), "streak restarted after the success");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(0);
        }
        assert!(!b.allow(99));
        assert!(b.allow(100), "cooloff elapsed: probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen { cooloff_ms: 100 });
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
    }

    #[test]
    fn failed_probe_doubles_the_cooloff_up_to_the_cap() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(0);
        }
        let mut now = 100;
        for expected in [200u64, 400, 400, 400] {
            assert!(b.allow(now), "probe at {now}");
            b.on_failure(now);
            match b.state() {
                BreakerState::Open {
                    until_ms,
                    cooloff_ms,
                } => {
                    assert_eq!(cooloff_ms, expected);
                    assert_eq!(until_ms, now + expected);
                    now = until_ms;
                }
                s => panic!("expected Open, got {s:?}"),
            }
        }
    }
}
