//! Short-Weierstrass curve arithmetic (Jacobian coordinates), generic over
//! the coordinate field so that the same formulas serve `G1` and `G2`.

use core::fmt;
use core::marker::PhantomData;

use seccloud_bigint::{ApInt, U256};

use crate::traits::FieldElement;

/// Static parameters of a curve `y² = x³ + b` (the `a = 0` family that all
/// BN curves and their twists belong to).
pub trait CurveParams: 'static + Copy + Clone + Send + Sync {
    /// Coordinate field.
    type Base: FieldElement;
    /// The constant `b`.
    fn coeff_b() -> Self::Base;
    /// Affine coordinates of the standard generator.
    fn generator() -> (Self::Base, Self::Base);
    /// Human-readable group name (for `Debug`).
    const NAME: &'static str;
}

/// wNAF window width shared by all scalar-multiplication entry points.
const WNAF_W: i64 = 4;
/// Odd-multiple table size for [`WNAF_W`]: `{1, 3, 5, 7}·P`.
const WNAF_TABLE: usize = 1 << (WNAF_W - 2);

/// Recodes a little-endian limb scalar into width-[`WNAF_W`] non-adjacent
/// form digits (LSB first): each digit is odd in `(−2^w, 2^w)` or zero, and
/// no two adjacent digits are both nonzero.
fn wnaf_digits(scalar: &[u64]) -> Vec<i64> {
    let mut digits: Vec<i64> = Vec::with_capacity(scalar.len() * 64 + 1);
    // Work on a mutable little-endian copy.
    let mut limbs = scalar.to_vec();
    limbs.push(0); // headroom for the final carry
    let is_zero = |l: &[u64]| l.iter().all(|&x| x == 0);
    while !is_zero(&limbs) {
        if limbs[0] & 1 == 1 {
            let modw = (limbs[0] & ((1 << WNAF_W) - 1)) as i64;
            let digit = if modw >= 1 << (WNAF_W - 1) {
                modw - (1 << WNAF_W)
            } else {
                modw
            };
            digits.push(digit);
            // limbs -= digit (digit may be negative → addition)
            if digit >= 0 {
                let mut borrow = digit as u64;
                for l in limbs.iter_mut() {
                    let (v, b) = l.overflowing_sub(borrow);
                    *l = v;
                    borrow = u64::from(b);
                    if borrow == 0 {
                        break;
                    }
                }
            } else {
                let mut carry = (-digit) as u64;
                for l in limbs.iter_mut() {
                    let (v, c) = l.overflowing_add(carry);
                    *l = v;
                    carry = u64::from(c);
                    if carry == 0 {
                        break;
                    }
                }
            }
        } else {
            digits.push(0);
        }
        // limbs >>= 1
        let mut carry = 0u64;
        for l in limbs.iter_mut().rev() {
            let next = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = next;
        }
    }
    digits
}

/// A point in Jacobian projective coordinates `(X : Y : Z)` with affine
/// `x = X/Z²`, `y = Y/Z³`; `Z = 0` encodes the identity.
pub struct Point<C: CurveParams> {
    x: C::Base,
    y: C::Base,
    z: C::Base,
    _curve: PhantomData<C>,
}

/// A point in affine coordinates, or the point at infinity.
pub struct Affine<C: CurveParams> {
    x: C::Base,
    y: C::Base,
    infinity: bool,
    _curve: PhantomData<C>,
}

// Manual impls: derive would wrongly require C: Clone etc. (C-STRUCT-BOUNDS).
impl<C: CurveParams> Clone for Point<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: CurveParams> Copy for Point<C> {}
impl<C: CurveParams> Clone for Affine<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: CurveParams> Copy for Affine<C> {}

impl<C: CurveParams> Point<C> {
    /// The identity element (point at infinity).
    pub fn identity() -> Self {
        Self {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
            _curve: PhantomData,
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator();
        Self {
            x,
            y,
            z: C::Base::one(),
            _curve: PhantomData,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`a = 0` Jacobian doubling).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        // dbl-2009-l formulas.
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = self.x.add(&b).square().sub(&a).sub(&c).double();
        let e = a.double().add(&a); // 3A
        let f = e.square();
        let x3 = f.sub(&d.double());
        let eight_c = c.double().double().double();
        let y3 = e.mul(&d.sub(&x3)).sub(&eight_c);
        let z3 = self.y.mul(&self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
            _curve: PhantomData,
        }
    }

    /// Point addition (general Jacobian addition with doubling fallback).
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        // add-2007-bl formulas.
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&rhs.z).mul(&z2z2);
        let s2 = rhs.y.mul(&self.z).mul(&z1z1);
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Self::identity()
            };
        }
        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Self {
            x: x3,
            y: y3,
            z: z3,
            _curve: PhantomData,
        }
    }

    /// Point negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: self.y.neg(),
            z: self.z,
            _curve: PhantomData,
        }
    }

    /// Subtraction `self − rhs`.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }

    /// Applies a curve endomorphism of the form `(x, y) ↦ (βx, y)`. In
    /// Jacobian coordinates the affine `x = X/Z²`, so scaling `X` by `β`
    /// scales the affine abscissa by `β` while leaving `y` and `Z` alone.
    pub(crate) fn endo_scale_x(&self, beta: &C::Base) -> Self {
        Self {
            x: self.x.mul(beta),
            y: self.y,
            z: self.z,
            _curve: PhantomData,
        }
    }

    /// Precomputes the odd multiples `{P, 3P, 5P, 7P}` used by every wNAF
    /// evaluation loop.
    fn odd_table(&self) -> [Self; WNAF_TABLE] {
        let mut table = [*self; WNAF_TABLE];
        let twice = self.double();
        for i in 1..WNAF_TABLE {
            table[i] = table[i - 1].add(&twice);
        }
        table
    }

    /// Adds the table entry selected by a signed wNAF digit (no-op for 0).
    #[inline]
    fn add_digit(acc: Self, table: &[Self; WNAF_TABLE], digit: i64) -> Self {
        match digit.cmp(&0) {
            core::cmp::Ordering::Greater => acc.add(&table[(digit as usize - 1) / 2]),
            core::cmp::Ordering::Less => acc.add(&table[((-digit) as usize - 1) / 2].neg()),
            core::cmp::Ordering::Equal => acc,
        }
    }

    /// Scalar multiplication using a width-4 signed sliding window (wNAF):
    /// precomputes `{±P, ±3P, ±5P, ±7P}` and processes ~4 bits per group
    /// addition. This is the single dispatched scalar-multiplication entry
    /// point — [`Point::mul_u256`], [`Point::mul_apint`] and the GLV
    /// half-scalars all route through the same recoding and tables.
    pub fn mul_limbs_wnaf(&self, scalar: &[u64]) -> Self {
        if self.is_identity() {
            return *self;
        }
        let digits = wnaf_digits(scalar);
        let table = self.odd_table();
        let mut acc = Self::identity();
        for &digit in digits.iter().rev() {
            acc = acc.double();
            acc = Self::add_digit(acc, &table, digit);
        }
        acc
    }

    /// Scalar multiplication by a 256-bit integer.
    pub fn mul_u256(&self, scalar: &U256) -> Self {
        self.mul_limbs_wnaf(scalar.limbs())
    }

    /// Scalar multiplication by an arbitrary-precision integer (used for
    /// cofactor clearing where the cofactor exceeds 256 bits).
    pub fn mul_apint(&self, scalar: &ApInt) -> Self {
        self.mul_limbs_wnaf(&scalar.to_le_limbs())
    }

    /// Simultaneous double-scalar multiplication `[a]P + [b]Q` via
    /// Strauss–Shamir interleaving of two width-4 wNAF expansions: one
    /// shared doubling chain, two odd-multiple tables — substantially
    /// cheaper than two separate multiplications.
    pub fn double_scalar_mul(p: &Self, a: &U256, q: &Self, b: &U256) -> Self {
        let da = wnaf_digits(a.limbs());
        let db = wnaf_digits(b.limbs());
        let tp = p.odd_table();
        let tq = q.odd_table();
        let mut acc = Self::identity();
        for i in (0..da.len().max(db.len())).rev() {
            acc = acc.double();
            if let Some(&d) = da.get(i) {
                if !p.is_identity() {
                    acc = Self::add_digit(acc, &tp, d);
                }
            }
            if let Some(&d) = db.get(i) {
                if !q.is_identity() {
                    acc = Self::add_digit(acc, &tq, d);
                }
            }
        }
        acc
    }

    /// Constant-time select: `a` when `choice == 0`, `b` when
    /// `choice == 1`, coordinate-wise. `choice` **must** be 0 or 1.
    pub fn ct_select(a: &Self, b: &Self, choice: u64) -> Self {
        Self {
            x: C::Base::ct_select(&a.x, &b.x, choice),
            y: C::Base::ct_select(&a.y, &b.y, choice),
            z: C::Base::ct_select(&a.z, &b.z, choice),
            _curve: PhantomData,
        }
    }

    /// Branchless doubling: the dbl-2009-l formulas evaluated
    /// unconditionally. The identity needs no special case — `Z = 0`
    /// forces `Z₃ = 2·Y·Z = 0`, so the result is again the identity
    /// whatever the other coordinates compute to.
    pub fn double_ct(&self) -> Self {
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = self.x.add(&b).square().sub(&a).sub(&c).double();
        let e = a.double().add(&a);
        let f = e.square();
        let x3 = f.sub(&d.double());
        let eight_c = c.double().double().double();
        let y3 = e.mul(&d.sub(&x3)).sub(&eight_c);
        let z3 = self.y.mul(&self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
            _curve: PhantomData,
        }
    }

    /// Branchless addition: evaluates the general add-2007-bl formulas
    /// unconditionally, then resolves every degenerate case (`P = Q`,
    /// `P = −Q`, either operand the identity) with masked selects instead
    /// of the early returns [`Point::add`] uses. Roughly one doubling
    /// more expensive than `add`; used by the constant-time scalar ladder
    /// where the operands derive from key material.
    pub fn add_ct(&self, rhs: &Self) -> Self {
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&rhs.z).mul(&z2z2);
        let s2 = rhs.y.mul(&self.z).mul(&z1z1);
        let h = u2.sub(&u1);
        let rr = s2.sub(&s1);
        // General chord addition; garbage when h = 0, discarded below.
        let i = h.double().square();
        let j = h.mul(&i);
        let r2 = rr.double();
        let v = u1.mul(&i);
        let x3 = r2.square().sub(&j).sub(&v.double());
        let y3 = r2.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        let general = Self {
            x: x3,
            y: y3,
            z: z3,
            _curve: PhantomData,
        };
        let h_zero = h.ct_is_zero();
        let r_zero = rr.ct_is_zero();
        // h = 0, s₁ = s₂ → tangent case (doubling); h = 0, s₁ ≠ s₂ →
        // inverse points, identity.
        let mut out = Self::ct_select(&general, &self.double_ct(), h_zero & r_zero);
        out = Self::ct_select(&out, &Self::identity(), h_zero & (r_zero ^ 1));
        // Identity operands pass the other side through unchanged (when
        // both are the identity the final select still yields it).
        out = Self::ct_select(&out, self, rhs.z.ct_is_zero());
        Self::ct_select(&out, rhs, self.z.ct_is_zero())
    }

    /// Constant-time scalar multiplication: a fixed 256-iteration
    /// double-and-always-add ladder over [`Point::double_ct`] /
    /// [`Point::add_ct`], with the addition folded in by masked select.
    /// Runs the identical instruction and memory-access sequence for
    /// every `(point, scalar)` pair — use this whenever the scalar is key
    /// material (extraction, per-signature nonces); the wNAF path
    /// ([`Point::mul_u256`]) stays several times faster for public
    /// scalars.
    pub fn mul_u256_ct(&self, scalar: &U256) -> Self {
        let limbs = scalar.limbs();
        let mut acc = Self::identity();
        for i in (0..256).rev() {
            acc = acc.double_ct();
            let sum = acc.add_ct(self);
            let bit = (limbs[i / 64] >> (i % 64)) & 1;
            acc = Self::ct_select(&acc, &sum, bit);
        }
        acc
    }

    /// Converts to affine coordinates.
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let z_inv = self.z.inverse().expect("nonzero z");
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2.mul(&z_inv);
        Affine {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv3),
            infinity: false,
            _curve: PhantomData,
        }
    }
}

impl<C: CurveParams> PartialEq for Point<C> {
    fn eq(&self, other: &Self) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                // Cross-multiplied comparison avoids inversions:
                // X1·Z2² = X2·Z1² and Y1·Z2³ = Y2·Z1³.
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x.mul(&z2z2) == other.x.mul(&z1z1)
                    && self.y.mul(&z2z2.mul(&other.z)) == other.y.mul(&z1z1.mul(&self.z))
            }
        }
    }
}

impl<C: CurveParams> Eq for Point<C> {}

impl<C: CurveParams> fmt::Debug for Point<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.to_affine();
        write!(f, "{}{:?}", C::NAME, (a.x(), a.y(), a.is_identity()))
    }
}

impl<C: CurveParams> From<Affine<C>> for Point<C> {
    fn from(a: Affine<C>) -> Self {
        if a.infinity {
            Self::identity()
        } else {
            Self {
                x: a.x,
                y: a.y,
                z: C::Base::one(),
                _curve: PhantomData,
            }
        }
    }
}

impl<C: CurveParams> Affine<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Self {
            x: C::Base::zero(),
            y: C::Base::zero(),
            infinity: true,
            _curve: PhantomData,
        }
    }

    /// Creates an affine point from coordinates, verifying the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns `None` if `(x, y)` does not satisfy `y² = x³ + b`.
    pub fn from_xy(x: C::Base, y: C::Base) -> Option<Self> {
        let p = Self {
            x,
            y,
            infinity: false,
            _curve: PhantomData,
        };
        p.is_on_curve().then_some(p)
    }

    /// Creates an affine point without checking the curve equation.
    ///
    /// Intended for internal construction from trusted computations; all
    /// public deserialization paths go through [`Affine::from_xy`].
    pub fn from_xy_unchecked(x: C::Base, y: C::Base) -> Self {
        Self {
            x,
            y,
            infinity: false,
            _curve: PhantomData,
        }
    }

    /// The affine `x` coordinate (zero for the identity).
    pub fn x(&self) -> C::Base {
        self.x
    }

    /// The affine `y` coordinate (zero for the identity).
    pub fn y(&self) -> C::Base {
        self.y
    }

    /// Whether this is the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Whether the coordinates satisfy `y² = x³ + b` (identity counts as on
    /// the curve).
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square().mul(&self.x).add(&C::coeff_b())
    }

    /// Point negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
            _curve: PhantomData,
        }
    }
}

impl<C: CurveParams> PartialEq for Affine<C> {
    fn eq(&self, other: &Self) -> bool {
        (self.infinity && other.infinity)
            || (!self.infinity && !other.infinity && self.x == other.x && self.y == other.y)
    }
}

impl<C: CurveParams> Eq for Affine<C> {}

impl<C: CurveParams> fmt::Debug for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}(infinity)", C::NAME)
        } else {
            write!(f, "{}({:?}, {:?})", C::NAME, self.x, self.y)
        }
    }
}
