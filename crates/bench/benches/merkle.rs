//! Criterion benches for the Merkle commitment layer (paper eq. 6, Fig. 3)
//! and the multi-proof-vs-independent-paths ablation from DESIGN.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seccloud_merkle::MerkleTree;

fn data(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("y{i}||p{i}").into_bytes()).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_build");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &n in &[64usize, 1024, 16_384] {
        let d = data(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| MerkleTree::from_data(d.iter().map(Vec::as_slice)))
        });
    }
    group.finish();
}

fn bench_prove_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_prove_verify");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 4096;
    let d = data(n);
    let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
    let root = tree.root();
    let proof = tree.prove(n / 2).unwrap();

    group.bench_function("prove_single", |b| b.iter(|| tree.prove(n / 2).unwrap()));
    group.bench_function("verify_single", |b| {
        b.iter(|| assert!(proof.verify(&root, &d[n / 2], n / 2)))
    });
    group.finish();
}

fn bench_multiproof_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: one multi-proof for t samples vs t single paths.
    let mut group = c.benchmark_group("merkle_multiproof");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 4096;
    let d = data(n);
    let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
    let root = tree.root();

    for &t in &[8usize, 33] {
        let indices: Vec<usize> = (0..t).map(|i| i * (n / t)).collect();
        group.bench_with_input(BenchmarkId::new("multi", t), &t, |b, _| {
            b.iter(|| tree.prove_multi(&indices).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("singles", t), &t, |b, _| {
            b.iter(|| {
                indices
                    .iter()
                    .map(|&i| tree.prove(i).unwrap())
                    .collect::<Vec<_>>()
            })
        });
        let multi = tree.prove_multi(&indices).unwrap();
        let claims: Vec<(usize, &[u8])> =
            indices.iter().map(|&i| (i, d[i].as_slice())).collect();
        group.bench_with_input(BenchmarkId::new("verify_multi", t), &t, |b, _| {
            b.iter(|| assert!(multi.verify(&root, &claims)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_prove_verify, bench_multiproof_ablation);
criterion_main!(benches);
