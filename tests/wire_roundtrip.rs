//! Property suite for the wire codecs (`seccloud_core::wire`).
//!
//! Two machine-checked properties over every [`WireMessage`] type:
//!
//! * **round trip** — `decode(encode(m)) == m` for generated messages;
//! * **decode totality** — decoding arbitrary or mutated bytes returns a
//!   typed [`WireError`], never panics and never over-allocates.
//!
//! Cases per property come from `SECCLOUD_TESTKIT_CASES` (default 200);
//! failures print the seed and minimal shrunk input to reproduce.

use seccloud::core::computation::{
    AuditChallenge, AuditResponse, Commitment, CompactAuditResponse, ComputationRequest,
    ComputeFunction,
};
use seccloud::core::storage::{DataBlock, SignedBlock};
use seccloud::core::warrant::Warrant;
use seccloud::core::wire::{WireError, WireMessage, Writer};
use seccloud::merkle::MerklePath;
use seccloud::testkit::{forall, gen, Tape};

fn round_trip<T>(name: &str, g: fn(&mut Tape) -> T)
where
    T: WireMessage + PartialEq + std::fmt::Debug,
{
    forall(name, g, |m| {
        let bytes = m.to_wire();
        let decoded =
            T::from_wire(&bytes).map_err(|e| format!("decoding a valid encoding failed: {e}"))?;
        if &decoded == m {
            Ok(())
        } else {
            Err("decode(encode(m)) != m".into())
        }
    });
}

#[test]
fn data_block_round_trips() {
    round_trip("round-trip/data-block", gen::data_block);
}

#[test]
fn signed_block_round_trips() {
    round_trip("round-trip/signed-block", gen::signed_block);
}

#[test]
fn compute_function_round_trips() {
    round_trip("round-trip/compute-function", gen::compute_function);
}

#[test]
fn computation_request_round_trips() {
    round_trip("round-trip/computation-request", gen::computation_request);
}

#[test]
fn commitment_round_trips() {
    round_trip("round-trip/commitment", gen::commitment);
}

#[test]
fn audit_challenge_round_trips() {
    round_trip("round-trip/audit-challenge", gen::audit_challenge);
}

#[test]
fn merkle_path_round_trips() {
    round_trip("round-trip/merkle-path", gen::merkle_path);
}

#[test]
fn audit_response_round_trips() {
    round_trip("round-trip/audit-response", gen::audit_response);
}

#[test]
fn compact_audit_response_round_trips() {
    round_trip(
        "round-trip/compact-audit-response",
        gen::compact_audit_response,
    );
}

#[test]
fn warrant_round_trips() {
    round_trip("round-trip/warrant", gen::warrant);
}

/// Every decoder must be total over arbitrary byte strings: any outcome is
/// fine as long as it is a typed `Result`, not a panic (the `forall`
/// runner converts panics into failures).
#[test]
fn decoding_arbitrary_bytes_is_total() {
    forall("decode-total/arbitrary", gen::raw_bytes, |bytes| {
        let _ = DataBlock::from_wire(bytes);
        let _ = SignedBlock::from_wire(bytes);
        let _ = ComputeFunction::from_wire(bytes);
        let _ = ComputationRequest::from_wire(bytes);
        let _ = Commitment::from_wire(bytes);
        let _ = AuditChallenge::from_wire(bytes);
        let _ = MerklePath::from_wire(bytes);
        let _ = AuditResponse::from_wire(bytes);
        let _ = CompactAuditResponse::from_wire(bytes);
        let _ = Warrant::from_wire(bytes);
        Ok(())
    });
}

/// Mutating one bit of a *valid* encoding reaches the deep decode paths
/// (structurally plausible prefixes) — still no panics allowed, and a
/// successful decode must differ from blind acceptance: re-encoding must
/// reproduce the mutated bytes (canonical encoding).
#[test]
fn decoding_mutated_audit_responses_is_total_and_canonical() {
    forall(
        "decode-total/mutated-response",
        |t| {
            let mut bytes = gen::audit_response(t).to_wire();
            let pos = t.next_below(bytes.len() as u64) as usize;
            let bit = t.next_below(8) as u8;
            bytes[pos] ^= 1 << bit;
            bytes
        },
        |bytes| {
            if let Ok(decoded) = AuditResponse::from_wire(bytes) {
                if decoded.to_wire() != *bytes {
                    return Err("accepted a non-canonical encoding".into());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn decoding_mutated_signed_blocks_is_total_and_canonical() {
    forall(
        "decode-total/mutated-block",
        |t| {
            let mut bytes = gen::signed_block(t).to_wire();
            let pos = t.next_below(bytes.len() as u64) as usize;
            let bit = t.next_below(8) as u8;
            bytes[pos] ^= 1 << bit;
            bytes
        },
        |bytes| {
            if let Ok(decoded) = SignedBlock::from_wire(bytes) {
                if decoded.to_wire() != *bytes {
                    return Err("accepted a non-canonical encoding".into());
                }
            }
            Ok(())
        },
    );
}

/// Direct regression tests for the length-cap hardening: a declared
/// collection length that cannot fit in the remaining input must be
/// rejected *before* any allocation, for every collection decoder.
#[test]
fn length_bombs_are_rejected_before_allocation() {
    // AuditResponse: huge item count right after the nonce.
    let mut w = Writer::new();
    w.put_u128(7); // nonce
    w.put_u64(1 << 20); // declared items, no data behind it
    assert_eq!(
        AuditResponse::from_wire(&w.finish()),
        Err(WireError::Truncated)
    );

    // Commitment: huge result count.
    let mut w = Writer::new();
    w.put_u64(1 << 20);
    assert_eq!(
        Commitment::from_wire(&w.finish()),
        Err(WireError::Truncated)
    );

    // AuditChallenge: huge index count.
    let mut w = Writer::new();
    w.put_u128(0); // nonce
    w.put_u64(1 << 20);
    assert_eq!(
        AuditChallenge::from_wire(&w.finish()),
        Err(WireError::Truncated)
    );

    // SignedBlock: huge designation count after a tiny block.
    let mut w = Writer::new();
    w.put_u64(0); // index
    w.put_bytes(&[1, 2, 3]); // data
    w.put_u64(1 << 20); // designations
    assert_eq!(
        SignedBlock::from_wire(&w.finish()),
        Err(WireError::Truncated)
    );

    // ComputationRequest: huge item count.
    let mut w = Writer::new();
    w.put_u64(1 << 20);
    assert_eq!(
        ComputationRequest::from_wire(&w.finish()),
        Err(WireError::Truncated)
    );

    // MerklePath: huge sibling count.
    let mut w = Writer::new();
    w.put_u64(4); // leaf count
    w.put_u64(1 << 20); // siblings
    assert_eq!(
        MerklePath::from_wire(&w.finish()),
        Err(WireError::Truncated)
    );

    // Lengths beyond the absolute sanity bound stay LengthOverflow.
    let mut w = Writer::new();
    w.put_u64(0);
    w.put_u64(u64::MAX); // data length
    assert_eq!(
        DataBlock::from_wire(&w.finish()),
        Err(WireError::LengthOverflow)
    );
}
