//! Quickstart: the whole SecCloud pipeline in one file.
//!
//! A user signs data blocks for the cloud, the server computes over them
//! and commits with a Merkle tree, and the designated agency audits the
//! result by probabilistic sampling.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use seccloud::cloudsim::{behavior::Behavior, CloudServer, DesignatedAgency};
use seccloud::core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud::core::storage::DataBlock;
use seccloud::core::Sio;

fn main() {
    // 1. System initialization: the SIO issues identity keys (eq. 4).
    let sio = Sio::new(b"quickstart-demo");
    let alice = sio.register("alice@example.com");
    let mut server = CloudServer::new(&sio, "cs-01.cloud.example", Behavior::Honest, b"server");
    let mut agency = DesignatedAgency::new(&sio, "da.audit.example", b"agency");
    println!(
        "registered: {}, {}, {}",
        alice.identity(),
        server.identity(),
        agency.identity()
    );

    // 2. Protocol II — secure storage: sign blocks so only the cloud server
    //    and the agency can authenticate them, then upload.
    let readings: Vec<DataBlock> = (0..16u64)
        .map(|i| DataBlock::from_values(i, &[20 + i % 7, 21 + i % 5, 19 + i % 3]))
        .collect();
    let signed = alice.sign_blocks(&readings, &[server.public(), agency.public()]);
    let accepted = server.store(&alice, signed);
    println!("uploaded {accepted} signed blocks (designated to CS + DA)");

    // 3. Protocol III — secure computation: ask the cloud for aggregates.
    let request = ComputationRequest::new(vec![
        RequestItem {
            function: ComputeFunction::Average,
            positions: (0..8).collect(),
        },
        RequestItem {
            function: ComputeFunction::Max,
            positions: (8..16).collect(),
        },
        RequestItem {
            function: ComputeFunction::Sum,
            positions: (0..16).collect(),
        },
    ]);
    let job = server
        .handle_computation(&alice.identity().to_string(), &request, agency.public())
        .expect("all positions stored");
    println!(
        "cloud computed {} results, committed under Merkle root {:02x?}…",
        job.commitment.results.len(),
        &job.commitment.root[..4]
    );

    // 4. Delegated audit: the agency samples sub-tasks, the server answers
    //    with data + signatures + Merkle paths, Algorithm 1 verifies.
    let verdict = agency
        .audit(&server, &job, &alice, 2, /* now = */ 0)
        .expect("warranted audit");
    println!(
        "audit: {} sub-tasks sampled, cheating detected = {}",
        verdict.challenge.len(),
        verdict.detected
    );
    assert!(!verdict.detected, "honest server must pass");
    println!("results accepted: {:?}", job.commitment.results);
}
