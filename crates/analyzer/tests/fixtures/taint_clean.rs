//! Clean fixture for the `taint` rule: the same shapes as `taint_bad.rs`
//! but only public, non-secret-derived values reach the sinks.
//! Never compiled — lexed by the analyzer self-tests only.

// lint: secret
pub struct UserKey {
    sk: u64,
    id: String,
}

impl Drop for UserKey {
    fn drop(&mut self) {}
}

struct Enc;

impl Enc {
    fn put_u64(&mut self, _v: u64) {}
}

fn trace(v: usize) -> String {
    format!("count {v}")
}

pub fn emit(w: &mut Enc, items: &[u64]) -> String {
    let n = items.len();
    w.put_u64(n as u64);
    trace(n)
}
