//! The SecCloud protocol (paper Sections V–VII).
//!
//! This crate assembles the substrates (`seccloud-pairing`, `seccloud-ibs`,
//! `seccloud-merkle`) into the paper's four-step scheme:
//!
//! 1. **System initialization** ([`Sio`]) — master-key setup and identity
//!    registration (Section V-A).
//! 2. **Secure cloud storage** ([`storage`]) — per-block designated
//!    signatures `{Uᵢ, Σᵢ, Σ'ᵢ}` and storage verification, eq. 5
//!    (Section V-B).
//! 3. **Secure cloud computation** ([`computation`]) — computation requests
//!    `{F, P}`, Merkle-hash-tree commitments with a signed root, and the
//!    probabilistic-sampling audit of Algorithm 1 (Sections V-C, V-D),
//!    delegated through expiring [`warrant::Warrant`]s.
//! 4. **Analysis** ([`analysis`]) — the uncheatability math: cheat-success
//!    probabilities (eq. 10/12/14), required sampling size (Fig. 4) and the
//!    cost-optimal sample size of Theorem 3 (eq. 17–18).
//!
//! # Examples
//!
//! ```
//! use seccloud_core::{Sio, storage::DataBlock};
//!
//! let sio = Sio::new(b"example");
//! let user = sio.register("alice");
//! let cs = sio.register_verifier("cs-01");
//! let da = sio.register_verifier("da");
//!
//! // Protocol II: sign blocks for upload, verifiable only by CS and DA.
//! let blocks = vec![DataBlock::new(0, vec![1, 2, 3])];
//! let signed = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
//! assert!(signed[0].verify(cs.key(), user.public()));
//! assert!(signed[0].verify(da.key(), user.public()));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod computation;
pub mod dynstore;
mod sio;
pub mod storage;
pub mod warrant;
pub mod wire;

pub use seccloud_ibs::SystemParams;
pub use sio::{CloudUser, Sio, VerifierCredential};
