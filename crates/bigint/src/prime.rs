//! Probabilistic primality testing (Miller–Rabin).

use crate::apint::ApInt;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Tests whether `n` is probably prime using trial division followed by
/// `rounds` iterations of Miller–Rabin.
///
/// `entropy` supplies raw 64-bit randomness for witness selection; a cheating
/// caller can only *increase* the false-positive probability, never produce
/// a false negative. The error probability is at most `4^-rounds` for random
/// witnesses.
///
/// # Examples
///
/// ```
/// use seccloud_bigint::{is_probable_prime, ApInt};
/// let mut ctr = 0u64;
/// let mut entropy = move || { ctr = ctr.wrapping_mul(6364136223846793005).wrapping_add(1); ctr };
/// // 2^61 - 1 is a Mersenne prime.
/// let m61 = ApInt::from_u64((1u64 << 61) - 1);
/// assert!(is_probable_prime(&m61, 20, &mut entropy));
/// assert!(!is_probable_prime(&ApInt::from_u64(561), 20, &mut entropy)); // Carmichael
/// ```
pub fn is_probable_prime(n: &ApInt, rounds: usize, entropy: &mut impl FnMut() -> u64) -> bool {
    if n.bits() <= 6 {
        let v = n.low_u64();
        return SMALL_PRIMES.contains(&v);
    }
    if !n.is_odd() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n.rem(&ApInt::from_u64(p)).is_zero() {
            return n.eq_u64(p);
        }
    }

    // n - 1 = d * 2^s with d odd
    let n_minus_1 = n.checked_sub(&ApInt::one()).expect("n > 1");
    let mut s = 0usize;
    let mut d = n_minus_1.clone();
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }

    let limbs = n.bits().div_ceil(64);
    'witness: for _ in 0..rounds {
        // Sample a in [2, n-2] by rejection.
        let a = loop {
            let raw: Vec<u64> = (0..limbs).map(|_| entropy()).collect();
            let cand = ApInt::from_limbs(&raw).rem(n);
            if cand.bits() >= 2 && cand < n_minus_1 {
                break cand;
            }
        };
        let mut x = a.modpow(&d, n);
        if x.eq_u64(1) || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.modmul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entropy() -> impl FnMut() -> u64 {
        let mut state = 0x9e3779b97f4a7c15u64;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn classifies_small_numbers() {
        let mut e = entropy();
        let primes = [2u64, 3, 5, 7, 97, 101, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 91, 561, 6601, 1_000_000_008, 65537 * 3];
        for p in primes {
            assert!(
                is_probable_prime(&ApInt::from_u64(p), 30, &mut e),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !is_probable_prime(&ApInt::from_u64(c), 30, &mut e),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn recognizes_large_known_prime() {
        // BN254 base field prime.
        let p = ApInt::from_dec(
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        )
        .unwrap();
        let mut e = entropy();
        assert!(is_probable_prime(&p, 16, &mut e));
        // p+2 is divisible by 5 (last digit), hence composite.
        let p2 = &p + &ApInt::from_u64(2);
        assert!(!is_probable_prime(&p2, 16, &mut e));
    }

    #[test]
    fn strong_pseudoprimes_are_caught() {
        // Carmichael numbers that fool Fermat but not Miller–Rabin.
        let mut e = entropy();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841] {
            assert!(!is_probable_prime(&ApInt::from_u64(c), 30, &mut e));
        }
    }
}
