//! Criterion benches for the Table-I primitives: point multiplication,
//! pairing, hash-to-curve, field arithmetic — plus the final-exponentiation
//! ablation called out in DESIGN.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use seccloud_pairing::{
    final_exponentiation, hash_to_g1, hash_to_g2, pairing, FieldElement, Fp, Fp12, Fp2, Fp6, Fr,
    G1, G2,
};

fn bench_table1_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let g1 = G1::generator();
    let g2 = G2::generator();
    let k = Fr::hash(b"bench");
    let p = hash_to_g1(b"p").to_affine();
    let q = hash_to_g2(b"q").to_affine();

    group.bench_function("g1_point_mul", |b| b.iter(|| g1.mul_fr(&k)));
    group.bench_function("g2_point_mul", |b| b.iter(|| g2.mul_fr(&k)));
    // Ablation: wNAF windowed multiplication vs plain double-and-add.
    let limbs = *k.to_u256().limbs();
    group.bench_function("g1_mul_double_and_add", |b| b.iter(|| g1.mul_limbs(&limbs)));
    group.bench_function("g1_mul_wnaf", |b| b.iter(|| g1.mul_limbs_wnaf(&limbs)));
    group.bench_function("pairing", |b| b.iter(|| pairing(&p, &q)));
    // Ablation: default optimal-ate backend vs the textbook Tate backend.
    group.bench_function("pairing_tate", |b| {
        b.iter(|| seccloud_pairing::pairing_tate(&p, &q))
    });
    group.bench_function("hash_to_g1", |b| b.iter(|| hash_to_g1(b"identity")));
    group.bench_function("hash_to_g2", |b| b.iter(|| hash_to_g2(b"identity")));
    group.finish();
}

fn bench_field_tower(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_tower");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let a = Fp::from_hash(b"fp", b"a");
    let b2 = Fp::from_hash(b"fp", b"b");
    group.bench_function("fp_mul", |b| b.iter(|| a.mul(&b2)));
    group.bench_function("fp_inverse", |b| b.iter(|| a.inverse()));

    let x2 = Fp2::from_hash(b"fp2", b"x");
    let y2 = Fp2::from_hash(b"fp2", b"y");
    group.bench_function("fp2_mul", |b| b.iter(|| x2.mul(&y2)));

    let x12 = Fp12::new(
        Fp6::new(x2, y2, x2.mul(&y2)),
        Fp6::new(y2, x2, x2.add(&y2)),
    );
    let y12 = x12.square();
    group.bench_function("fp12_mul", |b| b.iter(|| x12.mul(&y12)));
    group.bench_function("fp12_square", |b| b.iter(|| x12.square()));
    group.bench_function("fp12_inverse", |b| b.iter(|| x12.inverse()));
    group.finish();
}

fn bench_final_exp_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: how much of the pairing is the Miller loop vs the
    // final exponentiation (whose hard part we run as a plain power).
    let mut group = c.benchmark_group("final_exp_ablation");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let p = hash_to_g1(b"ablation-p").to_affine();
    let q = hash_to_g2(b"ablation-q").to_affine();
    let miller_value = *pairing(&p, &q).as_fp12(); // any unit works as input

    group.bench_function("full_pairing", |b| b.iter(|| pairing(&p, &q)));
    group.bench_function("final_exponentiation_only", |b| {
        b.iter(|| final_exponentiation(&miller_value))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_ops,
    bench_field_tower,
    bench_final_exp_ablation
);
criterion_main!(benches);
