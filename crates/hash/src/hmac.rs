//! RFC 2104 HMAC over SHA-256.

use crate::sha256::{Digest, Sha256};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are pre-hashed, per RFC 2104.
///
/// # Examples
///
/// ```
/// use seccloud_hash::hmac_sha256;
/// // RFC 4231 test case 2.
/// let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     tag[..4],
///     [0x5b, 0xdc, 0xc1, 0x46],
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut block_key = [0u8; 64];
    if key.len() > 64 {
        block_key[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= block_key[i];
        opad[i] ^= block_key[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
