//! Arbitrary-precision unsigned integers.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Sub};

use crate::limb::{adc, mac, sbb};
use crate::uint::Uint;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs,
/// normalized so the most significant limb is nonzero).
///
/// `ApInt` backs the RSA baseline (keygen, modexp) and the runtime
/// derivation of pairing constants (final-exponent, cofactors). It favours
/// clarity over peak speed: multiplication is schoolbook and division is
/// Knuth Algorithm D — plenty for ≤ 4096-bit operands.
///
/// # Examples
///
/// ```
/// use seccloud_bigint::ApInt;
/// let n = ApInt::from_u64(91);
/// let e = ApInt::from_u64(5);
/// let m = ApInt::from_u64(42);
/// let c = m.modpow(&e, &n);        // 42^5 mod 91
/// assert_eq!(c, ApInt::from_u64(35));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct ApInt {
    limbs: Vec<u64>, // little-endian, no trailing zero limbs
}

impl ApInt {
    /// The value `0`.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Creates a value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut s = Self { limbs: vec![v] };
        s.normalize();
        s
    }

    /// Creates a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut s = Self {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        s.normalize();
        s
    }

    /// Creates a value from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut s = Self {
            limbs: limbs.to_vec(),
        };
        s.normalize();
        s
    }

    /// Converts a fixed-width [`Uint`] into an `ApInt`.
    pub fn from_uint<const N: usize>(v: &Uint<N>) -> Self {
        Self::from_limbs(v.limbs())
    }

    /// Converts to a fixed-width [`Uint`], or `None` if it does not fit.
    pub fn to_uint<const N: usize>(&self) -> Option<Uint<N>> {
        if self.limbs.len() > N {
            return None;
        }
        let mut limbs = [0u64; N];
        limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        Some(Uint::from_limbs(limbs))
    }

    /// Parses a big-endian hexadecimal string (`_` separators allowed).
    ///
    /// Returns `None` on an empty string or invalid digit.
    pub fn from_hex(s: &str) -> Option<Self> {
        let digits: Vec<u64> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| c.to_digit(16).map(u64::from))
            .collect::<Option<_>>()?;
        if digits.is_empty() {
            return None;
        }
        let mut limbs = vec![0u64; digits.len().div_ceil(16)];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= d << (4 * (i % 16));
        }
        let mut v = Self { limbs };
        v.normalize();
        Some(v)
    }

    /// Parses a base-10 string.
    ///
    /// Returns `None` on an empty string or invalid digit.
    pub fn from_dec(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let ten = ApInt::from_u64(10);
        let mut acc = ApInt::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10)?;
            acc = &(&acc * &ten) + &ApInt::from_u64(d as u64);
        }
        Some(acc)
    }

    /// Formats as a base-10 string.
    pub fn to_dec(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let ten = ApInt::from_u64(10);
        let mut v = self.clone();
        let mut digits = Vec::new();
        while !v.is_zero() {
            let (q, r) = v.divrem(&ten).expect("ten is nonzero");
            digits.push(char::from(b'0' + r.low_u64() as u8));
            v = q;
        }
        digits.iter().rev().collect()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Returns `true` if the value equals the `u64`.
    pub fn eq_u64(&self, v: u64) -> bool {
        match (self.limbs.len(), v) {
            (0, 0) => true,
            (1, _) => self.limbs[0] == v,
            _ => false,
        }
    }

    /// The low 64 bits (0 for zero).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Minimal bit length (`0` for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        limb < self.limbs.len() && (self.limbs[limb] >> off) & 1 == 1
    }

    /// Returns the little-endian limbs (empty for zero).
    pub fn to_le_limbs(&self) -> Vec<u64> {
        self.limbs.clone()
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(8 * self.limbs.len());
        for i in (0..self.limbs.len()).rev() {
            out.extend_from_slice(&self.limbs[i].to_be_bytes());
        }
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.split_off(first)
    }

    /// Deserializes from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = vec![0u64; bytes.len().div_ceil(8)];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        let mut v = Self { limbs };
        v.normalize();
        v
    }

    /// Checked subtraction; `None` when `rhs > self`.
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        if self < rhs {
            return None;
        }
        let mut out = self.limbs.clone();
        let mut borrow = 0;
        for (i, limb) in out.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (l, b) = sbb(*limb, r, borrow);
            *limb = l;
            borrow = b;
        }
        debug_assert_eq!(borrow, 0);
        let mut v = Self { limbs: out };
        v.normalize();
        Some(v)
    }

    /// Shifts left by `k` bits.
    pub fn shl(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let (limb_shift, bit_shift) = (k / 64, k % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut v = Self { limbs: out };
        v.normalize();
        v
    }

    /// Shifts right by `k` bits.
    pub fn shr(&self, k: usize) -> Self {
        let (limb_shift, bit_shift) = (k / 64, k % 64);
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() - limb_shift];
        for (i, slot) in out.iter_mut().enumerate() {
            let src = i + limb_shift;
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < self.limbs.len() {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            *slot = v;
        }
        let mut v = Self { limbs: out };
        v.normalize();
        v
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// Uses Knuth Algorithm D with 64-bit limbs.
    ///
    /// # Errors
    ///
    /// Returns `None` when `divisor` is zero.
    pub fn divrem(&self, divisor: &Self) -> Option<(Self, Self)> {
        if divisor.is_zero() {
            return None;
        }
        if self < divisor {
            return Some((Self::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem: u64 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = (cur % d as u128) as u64;
            }
            let mut qv = Self { limbs: q };
            qv.normalize();
            return Some((qv, Self::from_u64(rem)));
        }

        // Knuth Algorithm D. Normalize so the divisor's top limb has its
        // high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let u = self.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 digits
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two dividend limbs.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = top / vn[n - 1] as u128;
            let mut r_hat = top % vn[n - 1] as u128;
            while q_hat >> 64 != 0
                || q_hat * vn[n - 2] as u128 > ((r_hat << 64) | un[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += vn[n - 1] as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= q_hat * vn
            let mut borrow: u64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let (prod_lo, prod_hi) = mac(0, q_hat as u64, vn[i], carry);
                carry = prod_hi;
                let (d, b) = sbb(un[j + i], prod_lo, borrow);
                un[j + i] = d;
                borrow = b;
            }
            let (d, b) = sbb(un[j + n], carry, borrow);
            un[j + n] = d;

            q[j] = q_hat as u64;
            if b != 0 {
                // q_hat was one too large: add the divisor back.
                q[j] -= 1;
                let mut c = 0;
                for i in 0..n {
                    let (s, c2) = adc(un[j + i], vn[i], c);
                    un[j + i] = s;
                    c = c2;
                }
                un[j + n] = un[j + n].wrapping_add(c);
            }
        }

        let mut quotient = Self { limbs: q };
        quotient.normalize();
        let mut rem = Self {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        Some((quotient, rem.shr(shift)))
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Self) -> Self {
        self.divrem(m).expect("modulus must be nonzero").1
    }

    /// Modular multiplication `self · rhs mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modmul(&self, rhs: &Self, m: &Self) -> Self {
        (self * rhs).rem(m)
    }

    /// Modular exponentiation `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        if m.eq_u64(1) {
            return Self::zero();
        }
        let mut base = self.rem(m);
        let mut acc = Self::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = acc.modmul(&base, m);
            }
            if i + 1 < exp.bits() {
                base = base.modmul(&base, m);
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse `self⁻¹ mod m` via the extended Euclidean algorithm.
    ///
    /// Returns `None` if `gcd(self, m) ≠ 1` or `m < 2`.
    pub fn modinv(&self, m: &Self) -> Option<Self> {
        if m.bits() < 2 {
            return None;
        }
        // Track Bezout coefficient of `self` as (sign, magnitude).
        let (mut r0, mut r1) = (m.clone(), self.rem(m));
        let (mut t0, mut t1) = ((false, Self::zero()), (false, Self::one()));
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1).expect("r1 nonzero");
            // t2 = t0 - q*t1 with signs
            let qt1 = &q * &t1.1;
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.eq_u64(1) {
            return None;
        }
        // Normalize t0 into [0, m)
        let (neg, mag) = t0;
        let mag = mag.rem(m);
        if neg && !mag.is_zero() {
            Some(m.checked_sub(&mag).expect("mag < m"))
        } else {
            Some(mag)
        }
    }
}

/// Computes `a - b` on sign-magnitude pairs.
fn signed_sub(a: (bool, ApInt), b: (bool, ApInt)) -> (bool, ApInt) {
    match (a.0, b.0) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (false, &a.1 + &b.1),
        (true, false) => (true, &a.1 + &b.1),
        // same sign: compare magnitudes
        (sa, _) => {
            if a.1 >= b.1 {
                (sa, a.1.checked_sub(&b.1).expect("a >= b"))
            } else {
                (!sa, b.1.checked_sub(&a.1).expect("b > a"))
            }
        }
    }
}

impl Add for &ApInt {
    type Output = ApInt;

    fn add(self, rhs: &ApInt) -> ApInt {
        let (longer, shorter) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = longer.limbs.clone();
        let mut carry = 0;
        for (i, limb) in out.iter_mut().enumerate() {
            let r = shorter.limbs.get(i).copied().unwrap_or(0);
            let (l, c) = adc(*limb, r, carry);
            *limb = l;
            carry = c;
            if carry == 0 && i >= shorter.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut v = ApInt { limbs: out };
        v.normalize();
        v
    }
}

impl Sub for &ApInt {
    type Output = ApInt;

    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`ApInt::checked_sub`] to handle that case.
    fn sub(self, rhs: &ApInt) -> ApInt {
        self.checked_sub(rhs)
            .expect("ApInt subtraction underflowed")
    }
}

impl Mul for &ApInt {
    type Output = ApInt;

    fn mul(self, rhs: &ApInt) -> ApInt {
        if self.is_zero() || rhs.is_zero() {
            return ApInt::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let (l, c) = mac(out[i + j], a, b, carry);
                out[i + j] = l;
                carry = c;
            }
            out[i + rhs.limbs.len()] = carry;
        }
        let mut v = ApInt { limbs: out };
        v.normalize();
        v
    }
}

impl Add<&ApInt> for ApInt {
    type Output = ApInt;
    fn add(self, rhs: &ApInt) -> ApInt {
        &self + rhs
    }
}

impl Ord for ApInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for ApInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x{:x}", self.limbs.last().unwrap())?;
        for i in (0..self.limbs.len() - 1).rev() {
            write!(f, "{:016x}", self.limbs[i])?;
        }
        Ok(())
    }
}

impl fmt::Display for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec())
    }
}

impl From<u64> for ApInt {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrand::SplitMix64;

    fn apint(rng: &mut SplitMix64, max_limbs: usize) -> ApInt {
        ApInt::from_limbs(&rng.limb_vec(max_limbs))
    }

    #[test]
    fn dec_hex_round_trip() {
        let p = ApInt::from_dec(
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        )
        .unwrap();
        let h = ApInt::from_hex("30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47")
            .unwrap();
        assert_eq!(p, h);
        assert_eq!(ApInt::from_dec(&p.to_dec()), Some(p));
    }

    #[test]
    fn small_arithmetic_sanity() {
        let a = ApInt::from_u64(1234);
        let b = ApInt::from_u64(5678);
        assert_eq!((&a * &b).to_dec(), "7006652");
        assert_eq!((&a + &b).to_dec(), "6912");
        assert_eq!((&b - &a).to_dec(), "4444");
        assert!(a.checked_sub(&b).is_none());
    }

    #[test]
    fn divrem_by_zero_is_none() {
        assert!(ApInt::from_u64(5).divrem(&ApInt::zero()).is_none());
    }

    #[test]
    fn modinv_known_values() {
        // 3 * 4 = 12 ≡ 1 mod 11
        let inv = ApInt::from_u64(3).modinv(&ApInt::from_u64(11)).unwrap();
        assert_eq!(inv, ApInt::from_u64(4));
        // gcd != 1
        assert!(ApInt::from_u64(6).modinv(&ApInt::from_u64(9)).is_none());
        assert!(ApInt::from_u64(6).modinv(&ApInt::one()).is_none());
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        let p = ApInt::from_u64(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            let a = ApInt::from_u64(a);
            let e = ApInt::from_u64(1_000_000_006);
            assert_eq!(a.modpow(&e, &p), ApInt::one());
        }
    }

    #[test]
    fn to_be_bytes_minimal() {
        assert!(ApInt::zero().to_be_bytes().is_empty());
        assert_eq!(ApInt::from_u64(0x01ff).to_be_bytes(), vec![0x01, 0xff]);
        let v = ApInt::from_hex("deadbeefcafebabe0123").unwrap();
        assert_eq!(ApInt::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn division_reconstructs() {
        let mut rng = SplitMix64(0xA001);
        let mut cases = 0;
        while cases < 64 {
            let n = apint(&mut rng, 8);
            let d = apint(&mut rng, 4);
            if d.is_zero() {
                continue;
            }
            cases += 1;
            let (q, r) = n.divrem(&d).unwrap();
            assert!(r < d);
            assert_eq!(&(&q * &d) + &r, n);
        }
    }

    #[test]
    fn add_sub_round_trip() {
        let mut rng = SplitMix64(0xA002);
        for _ in 0..64 {
            let a = apint(&mut rng, 6);
            let b = apint(&mut rng, 6);
            let s = &a + &b;
            assert_eq!(s.checked_sub(&b).unwrap(), a);
        }
    }

    #[test]
    fn mul_commutes_and_assoc() {
        let mut rng = SplitMix64(0xA003);
        for _ in 0..64 {
            let a = apint(&mut rng, 3);
            let b = apint(&mut rng, 3);
            let c = apint(&mut rng, 3);
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        }
    }

    #[test]
    fn shl_shr_round_trip() {
        let mut rng = SplitMix64(0xA004);
        for _ in 0..64 {
            let a = apint(&mut rng, 4);
            let k = rng.below(200) as usize;
            assert_eq!(a.shl(k).shr(k), a);
        }
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let mut rng = SplitMix64(0xA005);
        for _ in 0..64 {
            let a = apint(&mut rng, 4);
            let k = rng.below(100) as usize;
            let pow = ApInt::one().shl(k);
            assert_eq!(a.shl(k), &a * &pow);
        }
    }

    #[test]
    fn modpow_mul_law() {
        let mut rng = SplitMix64(0xA006);
        let mut cases = 0;
        while cases < 64 {
            let a = apint(&mut rng, 2);
            let e1 = rng.below(64);
            let e2 = rng.below(64);
            let m = apint(&mut rng, 2);
            if m.bits() < 2 {
                continue;
            }
            cases += 1;
            // a^(e1+e2) = a^e1 * a^e2 (mod m)
            let lhs = a.modpow(&ApInt::from_u64(e1 + e2), &m);
            let rhs = a
                .modpow(&ApInt::from_u64(e1), &m)
                .modmul(&a.modpow(&ApInt::from_u64(e2), &m), &m);
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn modinv_is_inverse() {
        let mut rng = SplitMix64(0xA007);
        let mut cases = 0;
        while cases < 64 {
            let a = apint(&mut rng, 3);
            let m = apint(&mut rng, 3);
            if m.bits() < 2 {
                continue;
            }
            cases += 1;
            if let Some(inv) = a.modinv(&m) {
                assert_eq!(a.modmul(&inv, &m), ApInt::one());
                assert!(inv < m);
            }
        }
    }

    #[test]
    fn gcd_divides_both() {
        let mut rng = SplitMix64(0xA008);
        let mut cases = 0;
        while cases < 64 {
            let a = apint(&mut rng, 3);
            let b = apint(&mut rng, 3);
            if a.is_zero() || b.is_zero() {
                continue;
            }
            cases += 1;
            let g = a.gcd(&b);
            assert!(a.rem(&g).is_zero());
            assert!(b.rem(&g).is_zero());
        }
    }

    #[test]
    fn dec_round_trip() {
        let mut rng = SplitMix64(0xA009);
        for _ in 0..64 {
            let a = apint(&mut rng, 3);
            assert_eq!(ApInt::from_dec(&a.to_dec()).unwrap(), a);
        }
    }
}
