//! Fixture: the `deadline_bad.rs` shape made total — both timeouts are
//! set on the stream before any I/O, so the direct write and the stream
//! handed into the generic helper are covered.

use std::io::Read;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn read_header<R: Read>(s: &mut R) -> Option<[u8; 8]> {
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf).ok()?;
    Some(buf)
}

pub fn fetch(addr: &str) -> Option<[u8; 8]> {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return None;
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    stream.write_all(b"hello").ok()?;
    read_header(&mut stream)
}
