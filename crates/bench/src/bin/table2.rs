//! **Table II** — comparison of signature schemes: individual vs batch
//! verification for a batch of size `n`.
//!
//! Paper rows:
//!
//! | scheme | individual | batch |
//! |---|---|---|
//! | RSA    | `n·T_RSA`   | n/a |
//! | ECDSA  | `n·T_ECDSA` | n/a |
//! | BGLS   | `2n·T_pair` | `(n+1)·T_pair` |
//! | ours   | `2n·T_pair` | `2·T_pair` |
//!
//! All four schemes are implemented in this workspace, so every cell is
//! measured, not quoted.
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin table2
//! ```
#![forbid(unsafe_code)]

use seccloud_baselines::bgls::{aggregate, verify_aggregate, BlsKeyPair, BlsPublicKey};
use seccloud_baselines::ecdsa::EcdsaKeyPair;
use seccloud_baselines::rsa::RsaKeyPair;
use seccloud_bench::{fmt_ms, measure_ms, row};
use seccloud_ibs::{designate, sign, BatchItem, BatchVerifier, MasterKey};

const N: usize = 20;

fn main() {
    println!("# Table II — signature scheme verification costs (batch size n = {N})\n");

    // RSA (1024-bit modulus).
    let rsa = RsaKeyPair::generate(512, b"table2-rsa");
    let rsa_msgs: Vec<Vec<u8>> = (0..N).map(|i| format!("m{i}").into_bytes()).collect();
    let rsa_sigs: Vec<_> = rsa_msgs.iter().map(|m| rsa.sign(m)).collect();
    let rsa_ms = measure_ms(1, 3, || {
        rsa_msgs
            .iter()
            .zip(&rsa_sigs)
            .all(|(m, s)| rsa.public().verify(m, s))
    });

    // ECDSA over BN254-G1.
    let ecdsa = EcdsaKeyPair::generate(b"table2-ecdsa");
    let ec_sigs: Vec<_> = rsa_msgs.iter().map(|m| ecdsa.sign(m)).collect();
    let ecdsa_ms = measure_ms(1, 3, || {
        rsa_msgs
            .iter()
            .zip(&ec_sigs)
            .all(|(m, s)| ecdsa.public().verify(m, s))
    });

    // BGLS.
    let bls_keys: Vec<BlsKeyPair> = (0..N)
        .map(|i| BlsKeyPair::generate(format!("table2-bls-{i}").as_bytes()))
        .collect();
    let bls_sigs: Vec<_> = bls_keys
        .iter()
        .zip(&rsa_msgs)
        .map(|(k, m)| k.sign(m))
        .collect();
    let bgls_individual_ms = measure_ms(1, 3, || {
        bls_keys
            .iter()
            .zip(&rsa_msgs)
            .zip(&bls_sigs)
            .all(|((k, m), s)| k.public().verify(m, s))
    });
    let agg = aggregate(&bls_sigs);
    let pairs: Vec<(&BlsPublicKey, &[u8])> = bls_keys
        .iter()
        .zip(&rsa_msgs)
        .map(|(k, m)| (k.public(), m.as_slice()))
        .collect();
    let bgls_batch_ms = measure_ms(1, 3, || verify_aggregate(&pairs, &agg));

    // Ours (designated-verifier batch).
    let sio = MasterKey::from_seed(b"table2-ours");
    let server = sio.extract_verifier("cs");
    let items: Vec<BatchItem> = (0..N)
        .map(|i| {
            let user = sio.extract_user(&format!("user-{}", i % 4));
            let msg = rsa_msgs[i].clone();
            let s = designate(&sign(&user, &msg, b"n"), server.public());
            BatchItem {
                signer: user.public().clone(),
                message: msg,
                signature: s,
            }
        })
        .collect();
    let ours_individual_ms = measure_ms(1, 3, || {
        assert!(seccloud_ibs::verify_individually(&items, &server).is_none());
    });
    let ours_batch_ms = measure_ms(1, 3, || {
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(b.verify(&server));
    });

    println!(
        "{}",
        row(&[
            "scheme".into(),
            "individual formula".into(),
            "individual measured".into(),
            "batch formula".into(),
            "batch measured".into(),
        ])
    );
    println!(
        "{}",
        row(&[
            "---".into(),
            "---".into(),
            "---".into(),
            "---".into(),
            "---".into()
        ])
    );
    println!(
        "{}",
        row(&[
            "RSA-1024".into(),
            "n·T_RSA".into(),
            fmt_ms(rsa_ms),
            "n/a".into(),
            "—".into(),
        ])
    );
    println!(
        "{}",
        row(&[
            "ECDSA (BN254-G1)".into(),
            "n·T_ECDSA".into(),
            fmt_ms(ecdsa_ms),
            "n/a".into(),
            "—".into(),
        ])
    );
    println!(
        "{}",
        row(&[
            "BGLS".into(),
            "2n·T_pair".into(),
            fmt_ms(bgls_individual_ms),
            "(n+1)·T_pair".into(),
            fmt_ms(bgls_batch_ms),
        ])
    );
    println!(
        "{}",
        row(&[
            "SecCloud (ours)".into(),
            "2n·T_pair".into(),
            fmt_ms(ours_individual_ms),
            "2·T_pair".into(),
            fmt_ms(ours_batch_ms),
        ])
    );

    println!("\n## Shape checks\n");
    println!(
        "- ours batch / ours individual  = {:.2} (expect ≈ 1/n = {:.2})",
        ours_batch_ms / ours_individual_ms,
        1.0 / N as f64
    );
    println!(
        "- bgls batch / bgls individual  = {:.2} (expect ≈ (n+1)/2n = {:.2})",
        bgls_batch_ms / bgls_individual_ms,
        (N as f64 + 1.0) / (2.0 * N as f64)
    );
    println!(
        "- ours batch / bgls batch       = {:.2} (expect ≈ 2/(n+1) = {:.2})",
        ours_batch_ms / bgls_batch_ms,
        2.0 / (N as f64 + 1.0)
    );
}
