//! Fixed-argument pairing precomputation.
//!
//! Every Miller-loop step of the optimal ate pairing ([`crate::ate`])
//! computes a line through twist points derived *only from Q* — slope and
//! intercept do not depend on the `G1` argument. When the same `Q` is
//! paired against many `P` (SecCloud's designated-verifier transforms and
//! batch checks all pair against a verifier key fixed for its lifetime),
//! those coefficients can be computed once and replayed.
//!
//! [`G2Prepared`] caches one `(−λ, λ·x_T − y_T)` coefficient pair per
//! doubling/addition step (the sparse line is
//! `l(P) = y_P + w·(−λ·x_P + (λ·x_T − y_T)·v)`, so evaluation at `P` costs
//! one `Fp2`-by-`Fp` scale instead of a full affine step with an `Fp2`
//! inversion). [`multi_miller_loop`] shares both the accumulator squarings
//! and the single final exponentiation across many `(P, Q)` pairs.
//!
//! Because every field operation returns the canonical (fully reduced)
//! representative, the prepared evaluation is **bit-identical** to the
//! from-scratch [`crate::pairing()`] — asserted by tests here and in
//! `tests/prepared.rs`.

use crate::ate::{loop_count, twist_frobenius, twist_frobenius_sq};
use crate::fp::Fp;
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::g1::G1Affine;
use crate::g2::G2Affine;
use crate::pairing::{final_exponentiation, Gt};
use crate::traits::FieldElement;

/// One cached Miller-loop step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineStep {
    /// A real tangent/chord line: `(−λ, λ·x_T − y_T)`.
    Line { neg_lambda: Fp2, c1: Fp2 },
    /// A vertical line or a step on a spent accumulator — contributes the
    /// multiplicative identity (killed by the final exponentiation).
    One,
}

impl LineStep {
    /// Evaluates the cached line at `P = (x_P, y_P)` to the sparse triple
    /// consumed by [`Fp12::mul_by_014`], or `None` for a unit contribution.
    #[inline]
    fn eval(&self, x_p: &Fp, y_p: &Fp) -> Option<(Fp2, Fp2, Fp2)> {
        match self {
            LineStep::Line { neg_lambda, c1 } => {
                Some((Fp2::from_fp(*y_p), neg_lambda.scale(x_p), *c1))
            }
            LineStep::One => None,
        }
    }
}

/// Records the same affine twist-point walk as `ate::TwistMiller`, but
/// stores the `P`-independent line coefficients instead of evaluating.
struct Recorder {
    t: Option<(Fp2, Fp2)>,
    steps: Vec<LineStep>,
}

impl Recorder {
    fn double_step(&mut self) {
        let Some((x, y)) = self.t else {
            self.steps.push(LineStep::One);
            return;
        };
        if y.is_zero() {
            self.t = None;
            self.steps.push(LineStep::One); // vertical
            return;
        }
        let lambda = x
            .square()
            .scale(&Fp::from_u64(3))
            .mul(&y.double().inverse_vartime().expect("y ≠ 0"));
        self.steps.push(LineStep::Line {
            neg_lambda: lambda.neg(),
            c1: lambda.mul(&x).sub(&y),
        });
        let x3 = lambda.square().sub(&x.double());
        let y3 = lambda.mul(&x.sub(&x3)).sub(&y);
        self.t = Some((x3, y3));
    }

    fn add_step(&mut self, r: (Fp2, Fp2)) {
        let Some((x1, y1)) = self.t else {
            self.t = Some(r);
            self.steps.push(LineStep::One);
            return;
        };
        let (x2, y2) = r;
        if x1 == x2 {
            if y1 == y2 {
                self.double_step();
                return;
            }
            self.t = None;
            self.steps.push(LineStep::One); // vertical
            return;
        }
        let lambda = y2
            .sub(&y1)
            .mul(&x2.sub(&x1).inverse_vartime().expect("x₂ ≠ x₁"));
        self.steps.push(LineStep::Line {
            neg_lambda: lambda.neg(),
            c1: lambda.mul(&x1).sub(&y1),
        });
        let x3 = lambda.square().sub(&x1).sub(&x2);
        let y3 = lambda.mul(&x1.sub(&x3)).sub(&y1);
        self.t = Some((x3, y3));
    }

    // The `_ct` twins below repeat the step formulas with the Fermat
    // inverse instead of `inverse_vartime`. They are deliberately
    // *separate functions* rather than an `if ct` inside the fast steps:
    // the `vartime` dataflow rule is path-insensitive, so only disjoint
    // call graphs let it prove that `G2Prepared::from_ct` never reaches a
    // variable-time inversion while `From<&G2Affine>` still does.

    fn double_step_ct(&mut self) {
        let Some((x, y)) = self.t else {
            self.steps.push(LineStep::One);
            return;
        };
        if y.is_zero() {
            self.t = None;
            self.steps.push(LineStep::One); // vertical
            return;
        }
        let lambda = x
            .square()
            .scale(&Fp::from_u64(3))
            .mul(&y.double().inverse().expect("y ≠ 0"));
        self.steps.push(LineStep::Line {
            neg_lambda: lambda.neg(),
            c1: lambda.mul(&x).sub(&y),
        });
        let x3 = lambda.square().sub(&x.double());
        let y3 = lambda.mul(&x.sub(&x3)).sub(&y);
        self.t = Some((x3, y3));
    }

    fn add_step_ct(&mut self, r: (Fp2, Fp2)) {
        let Some((x1, y1)) = self.t else {
            self.t = Some(r);
            self.steps.push(LineStep::One);
            return;
        };
        let (x2, y2) = r;
        if x1 == x2 {
            if y1 == y2 {
                self.double_step_ct();
                return;
            }
            self.t = None;
            self.steps.push(LineStep::One); // vertical
            return;
        }
        let lambda = y2.sub(&y1).mul(&x2.sub(&x1).inverse().expect("x₂ ≠ x₁"));
        self.steps.push(LineStep::Line {
            neg_lambda: lambda.neg(),
            c1: lambda.mul(&x1).sub(&y1),
        });
        let x3 = lambda.square().sub(&x1).sub(&x2);
        let y3 = lambda.mul(&x1.sub(&x3)).sub(&y1);
        self.t = Some((x3, y3));
    }
}

/// A `G2` point with its Miller-loop line coefficients precomputed.
///
/// Preparing costs roughly one unprepared Miller loop; every subsequent
/// [`pairing_prepared`]/[`multi_miller_loop`] against it skips the twist
/// arithmetic (including ~65 `Fp2` inversions) entirely.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{hash_to_g1, hash_to_g2, pairing, pairing_prepared, G2Prepared};
///
/// let p = hash_to_g1(b"P").to_affine();
/// let q = hash_to_g2(b"Q").to_affine();
/// let prep = G2Prepared::from(&q);
/// assert_eq!(pairing_prepared(&p, &prep), pairing(&p, &q));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct G2Prepared {
    steps: Vec<LineStep>,
    infinity: bool,
}

impl G2Prepared {
    /// Whether the prepared point is the identity (pairs to `Gt::one()`).
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Constant-time preparation for *secret* points — designated-verifier
    /// private keys whose line slopes are key-derived. Identical walk and
    /// output to `From<&G2Affine>`, but every slope denominator goes
    /// through the fixed-sequence Fermat inverse instead of the
    /// variable-time binary Euclid, so preparation time does not depend on
    /// the coordinate values. Costs ~65 Fermat ladders more than `from`;
    /// preparation of a long-lived key is a one-time cost.
    pub fn from_ct(q: &G2Affine) -> Self {
        if q.is_identity() {
            return Self {
                steps: Vec::new(),
                infinity: true,
            };
        }
        let q_aff = (q.x(), q.y());
        let s = loop_count();
        let bits = s.bits();
        let mut rec = Recorder {
            t: Some(q_aff),
            steps: Vec::with_capacity(
                bits + s
                    .to_le_limbs()
                    .iter()
                    .map(|l| l.count_ones() as usize)
                    .sum::<usize>()
                    + 2,
            ),
        };
        for i in (0..bits - 1).rev() {
            rec.double_step_ct();
            if s.bit(i) {
                rec.add_step_ct(q_aff);
            }
        }
        let q1 = twist_frobenius(q_aff);
        let q2 = twist_frobenius_sq(q_aff);
        rec.add_step_ct(q1);
        rec.add_step_ct((q2.0, q2.1.neg()));
        Self {
            steps: rec.steps,
            infinity: false,
        }
    }

    /// Overwrites every cached line coefficient with the unit
    /// contribution. [`Drop`] delegates here; it is a separate method so
    /// tests can observe the wiped state in place (after a real drop the
    /// memory is already released).
    fn wipe_steps(&mut self) {
        for step in &mut self.steps {
            seccloud_hash::wipe_copy(step, LineStep::One);
        }
    }
}

impl Drop for G2Prepared {
    /// Preparations of *secret* points (designated-verifier private keys)
    /// carry secret-derived line coefficients, and preparations flow
    /// through caches whose eviction paths cannot tell secret from
    /// public. Wiping unconditionally on drop means eviction, `clear()`
    /// and shrink paths zeroize rather than merely free — at a cost that
    /// is noise next to the preparation itself.
    fn drop(&mut self) {
        self.wipe_steps();
    }
}

impl From<&G2Affine> for G2Prepared {
    fn from(q: &G2Affine) -> Self {
        if q.is_identity() {
            return Self {
                steps: Vec::new(),
                infinity: true,
            };
        }
        let q_aff = (q.x(), q.y());
        let s = loop_count();
        let bits = s.bits();
        let mut rec = Recorder {
            t: Some(q_aff),
            steps: Vec::with_capacity(
                bits + s
                    .to_le_limbs()
                    .iter()
                    .map(|l| l.count_ones() as usize)
                    .sum::<usize>()
                    + 2,
            ),
        };
        for i in (0..bits - 1).rev() {
            rec.double_step();
            if s.bit(i) {
                rec.add_step(q_aff);
            }
        }
        // Correction steps with π(Q) and −π²(Q).
        let q1 = twist_frobenius(q_aff);
        let q2 = twist_frobenius_sq(q_aff);
        rec.add_step(q1);
        rec.add_step((q2.0, q2.1.neg()));
        Self {
            steps: rec.steps,
            infinity: false,
        }
    }
}

impl From<G2Affine> for G2Prepared {
    fn from(q: G2Affine) -> Self {
        Self::from(&q)
    }
}

/// The product `Π ê(P_i, Q_i)` over prepared pairs, sharing the
/// accumulator squarings of one Miller loop and a single final
/// exponentiation.
///
/// Pairs with an identity on either side contribute `1` and are skipped —
/// matching [`crate::multi_pairing`]'s semantics bit for bit.
pub fn multi_miller_loop(pairs: &[(&G1Affine, &G2Prepared)]) -> Gt {
    let live: Vec<(Fp, Fp, &[LineStep])> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.infinity)
        .map(|(p, q)| (p.x(), p.y(), q.steps.as_slice()))
        .collect();
    if live.is_empty() {
        return Gt::one();
    }
    let s = loop_count();
    let bits = s.bits();
    let mut f = Fp12::one();
    let mut cursor = 0usize;
    let absorb = |f: &mut Fp12, cursor: &mut usize| {
        for (x_p, y_p, steps) in &live {
            if let Some((a, b, c)) = steps[*cursor].eval(x_p, y_p) {
                *f = f.mul_by_014(&a, &b, &c);
            }
        }
        *cursor += 1;
    };
    for i in (0..bits - 1).rev() {
        f = f.square();
        absorb(&mut f, &mut cursor);
        if s.bit(i) {
            absorb(&mut f, &mut cursor);
        }
    }
    absorb(&mut f, &mut cursor);
    absorb(&mut f, &mut cursor);
    debug_assert!(live.iter().all(|(_, _, steps)| steps.len() == cursor));
    Gt::from_unchecked_fp12(final_exponentiation(&f))
}

/// The reduced optimal ate pairing against a prepared `G2` argument —
/// bit-identical to [`crate::pairing()`] on the same inputs.
pub fn pairing_prepared(p: &G1Affine, q: &G2Prepared) -> Gt {
    multi_miller_loop(&[(p, q)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_preparation_is_bit_identical_to_vartime() {
        for name in [&b"ct-prep-a"[..], b"ct-prep-b", b"ct-prep-c"] {
            let q = crate::hash_to_g2(name).to_affine();
            assert_eq!(G2Prepared::from_ct(&q), G2Prepared::from(&q));
        }
        assert!(G2Prepared::from_ct(&G2Affine::identity()).is_identity());
    }
    use crate::fr::Fr;
    use crate::g1::{hash_to_g1, G1};
    use crate::g2::{hash_to_g2, G2};
    use crate::pairing::{multi_pairing, pairing};

    #[test]
    fn prepared_equals_unprepared_on_random_points() {
        for i in 0..6u32 {
            let p = hash_to_g1(format!("prep-p-{i}").as_bytes()).to_affine();
            let q = hash_to_g2(format!("prep-q-{i}").as_bytes()).to_affine();
            let prep = G2Prepared::from(&q);
            assert_eq!(pairing_prepared(&p, &prep), pairing(&p, &q), "sample {i}");
        }
    }

    #[test]
    fn prepared_identity_semantics() {
        let p = hash_to_g1(b"prep-id-p").to_affine();
        let q = hash_to_g2(b"prep-id-q").to_affine();
        let inf = G2Prepared::from(&G2Affine::identity());
        assert!(inf.is_identity());
        assert!(pairing_prepared(&p, &inf).is_one());
        let prep = G2Prepared::from(&q);
        assert!(pairing_prepared(&G1Affine::identity(), &prep).is_one());
    }

    #[test]
    fn multi_miller_loop_matches_multi_pairing() {
        let pairs: Vec<(G1Affine, G2Affine)> = (0..4u32)
            .map(|i| {
                (
                    hash_to_g1(format!("mml-p-{i}").as_bytes()).to_affine(),
                    hash_to_g2(format!("mml-q-{i}").as_bytes()).to_affine(),
                )
            })
            .collect();
        let preps: Vec<G2Prepared> = pairs.iter().map(|(_, q)| G2Prepared::from(q)).collect();
        let refs: Vec<(&G1Affine, &G2Prepared)> =
            pairs.iter().zip(&preps).map(|((p, _), q)| (p, q)).collect();
        assert_eq!(multi_miller_loop(&refs), multi_pairing(&pairs));
    }

    #[test]
    fn multi_miller_loop_matches_product_of_single_pairings() {
        let pairs: Vec<(G1Affine, G2Affine)> = (0..3u32)
            .map(|i| {
                (
                    hash_to_g1(format!("prod-p-{i}").as_bytes()).to_affine(),
                    hash_to_g2(format!("prod-q-{i}").as_bytes()).to_affine(),
                )
            })
            .collect();
        let product = pairs
            .iter()
            .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing(p, q)));
        let preps: Vec<G2Prepared> = pairs.iter().map(|(_, q)| G2Prepared::from(q)).collect();
        let refs: Vec<(&G1Affine, &G2Prepared)> =
            pairs.iter().zip(&preps).map(|((p, _), q)| (p, q)).collect();
        assert_eq!(multi_miller_loop(&refs), product);
    }

    #[test]
    fn multi_miller_loop_skips_identity_pairs() {
        let p = hash_to_g1(b"skip-p").to_affine();
        let q = hash_to_g2(b"skip-q").to_affine();
        let prep = G2Prepared::from(&q);
        let inf_prep = G2Prepared::from(&G2Affine::identity());
        let inf_p = G1Affine::identity();
        // Identity pairs drop out of the product.
        let mixed = multi_miller_loop(&[(&p, &prep), (&inf_p, &prep), (&p, &inf_prep)]);
        assert_eq!(mixed, pairing(&p, &q));
        // All-identity product is one.
        assert!(multi_miller_loop(&[(&inf_p, &prep)]).is_one());
        assert!(multi_miller_loop(&[]).is_one());
    }

    #[test]
    fn prepared_respects_bilinearity() {
        let p = hash_to_g1(b"bilin-p");
        let q = hash_to_g2(b"bilin-q");
        let a = Fr::hash(b"bilin-a");
        let prep = G2Prepared::from(&q.to_affine());
        let base = pairing_prepared(&p.to_affine(), &prep);
        assert_eq!(
            pairing_prepared(&p.mul_fr(&a).to_affine(), &prep),
            base.pow(&a)
        );
        let prep_aq = G2Prepared::from(&q.mul_fr(&a).to_affine());
        assert_eq!(pairing_prepared(&p.to_affine(), &prep_aq), base.pow(&a));
    }

    #[test]
    fn wipe_on_drop_clears_every_line_coefficient() {
        let q = hash_to_g2(b"wipe-on-drop").to_affine();
        let mut prep = G2Prepared::from(&q);
        assert!(
            prep.steps
                .iter()
                .any(|s| matches!(s, LineStep::Line { .. })),
            "a real preparation carries live coefficients"
        );
        // `Drop` delegates to `wipe_steps`; run it directly so the wiped
        // state is still observable.
        prep.wipe_steps();
        assert!(
            prep.steps.iter().all(|s| matches!(s, LineStep::One)),
            "every cached line must be wiped to the unit contribution"
        );
    }

    #[test]
    fn generator_preparation_is_reusable() {
        // One preparation, many pairings — the intended usage pattern.
        let prep = G2Prepared::from(&G2::generator().to_affine());
        for i in 0..4u64 {
            let p = G1::generator().mul_fr(&Fr::from_u64(i + 1)).to_affine();
            assert_eq!(
                pairing_prepared(&p, &prep),
                pairing(&p, &G2::generator().to_affine()),
                "k = {}",
                i + 1
            );
        }
    }
}
