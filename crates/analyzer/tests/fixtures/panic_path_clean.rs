//! Clean fixture for the `panic_path` rule: the same chain shape as
//! `panic_path_bad.rs`, but every fallible step propagates its error.
//! Never compiled — lexed by the analyzer self-tests only.

fn inner(v: Option<u64>) -> Result<u64, String> {
    v.ok_or_else(|| "missing".to_string())
}

fn middle(v: Option<u64>) -> Result<u64, String> {
    inner(v)
}

pub fn verify_response(v: Option<u64>) -> Result<u64, String> {
    middle(v)
}
