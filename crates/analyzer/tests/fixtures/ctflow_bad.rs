//! Fixture: secret-influenced values reaching timing sinks (rule `ctflow`).

// lint: secret
pub struct UserKey {
    sk: u64,
}

impl Drop for UserKey {
    fn drop(&mut self) {}
}

/// Interprocedural hop: the scalar keeps its taint through a helper.
fn low_bits(k: &UserKey) -> u64 {
    k.sk & 0xff
}

/// A branch whose condition compares key material: the comparison is the
/// timing sink.
pub fn branch_on_key(k: &UserKey) -> u64 {
    if low_bits(k) == 0 {
        3
    } else {
        4
    }
}

/// A match scrutinee carrying key material.
pub fn match_on_key(k: &UserKey) -> u64 {
    match k.sk & 1 {
        0 => 10,
        _ => 20,
    }
}

/// A loop bound derived from key material.
pub fn loop_on_key(k: &UserKey) -> u64 {
    let mut acc = 0;
    for _ in 0..low_bits(k) {
        acc += 1;
    }
    acc
}
