//! The Tate pairing `ê : G1 × G2 → GT` with denominator elimination.
//!
//! The implementation favours transparency over peak speed: a textbook
//! Miller loop over the (affine) first argument with line evaluations in
//! `Fp12`, followed by a Frobenius-assisted final exponentiation. Verticals
//! are dropped — valid because the untwisted `Q` has its `x`-coordinate in
//! `Fp6`, which the final exponentiation annihilates.

use seccloud_bigint::U256;

use crate::fp::Fp;
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::fr::Fr;
use crate::g1::G1Affine;
use crate::g2::G2Affine;
use crate::params;
use crate::traits::FieldElement;

/// An element of the pairing target group `GT ⊂ Fp12*` (the `μ_r` subgroup
/// of `r`-th roots of unity).
///
/// `GT` values compare canonically: two `Gt`s are equal iff the pairings
/// they came from are equal, because final exponentiation maps each coset to
/// a unique representative.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{pairing, Fr, G1, G2};
/// let p = G1::generator().to_affine();
/// let q = G2::generator().to_affine();
/// let e = pairing(&p, &q);
/// // Bilinearity: e([2]P, Q) = e(P, Q)².
/// let p2 = G1::generator().double().to_affine();
/// assert_eq!(pairing(&p2, &q), e.mul(&e));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(Fp12);

impl Gt {
    /// The identity of `GT`.
    pub fn one() -> Self {
        Gt(Fp12::one())
    }

    /// Whether this is the identity.
    pub fn is_one(&self) -> bool {
        self.0 == Fp12::one()
    }

    /// Group operation (multiplication in `Fp12`).
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        Gt(self.0.mul(&rhs.0))
    }

    /// Group inverse — for unitary `GT` elements this is conjugation, which
    /// is far cheaper than a field inversion.
    #[must_use]
    pub fn invert(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by an `Fr` scalar.
    #[must_use]
    pub fn pow(&self, k: &Fr) -> Self {
        Gt(self.0.pow_limbs(k.to_u256().limbs()))
    }

    /// Constant-time equality: compares all 12 `Fp` components through a
    /// masked zero-fold with no early exit. Designated verification
    /// compares a pairing computed *from the verifier's secret key*
    /// against an adversary-supplied `Σ` — a short-circuiting `==` there
    /// is a byte-position timing oracle on the expected tag, exactly the
    /// MAC-verification leak `seccloud_hash::ct_eq` exists for.
    #[must_use]
    pub fn ct_eq(&self, rhs: &Self) -> bool {
        use crate::traits::FieldElement;
        self.0.sub(&rhs.0).ct_is_zero() == 1
    }

    /// The underlying `Fp12` representative.
    pub fn as_fp12(&self) -> &Fp12 {
        &self.0
    }

    /// Wraps a final-exponentiated value (crate-internal constructor for
    /// the alternative Miller-loop backends).
    pub(crate) fn from_unchecked_fp12(v: Fp12) -> Self {
        Gt(v)
    }

    /// Deserializes a `GT` element from the 384-byte encoding of
    /// [`Gt::to_bytes`], checking that every coefficient is canonical.
    ///
    /// Subgroup membership is *not* checked (it would cost an `r`-power);
    /// a non-subgroup value is harmless here because `Gt` is only ever
    /// compared against freshly computed pairings during verification.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 384 {
            return None;
        }
        let mut coeffs = [Fp::zero(); 12];
        for (i, chunk) in bytes.chunks_exact(32).enumerate() {
            coeffs[i] = Fp::from_be_bytes(chunk.try_into().expect("32 bytes"))?;
        }
        let fp6 = |c: &[Fp]| {
            Fp6::new(
                Fp2::new(c[0], c[1]),
                Fp2::new(c[2], c[3]),
                Fp2::new(c[4], c[5]),
            )
        };
        Some(Gt(Fp12::new(fp6(&coeffs[..6]), fp6(&coeffs[6..]))))
    }

    /// Serializes the canonical representative (384 bytes: the twelve `Fp`
    /// coefficients, big-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(384);
        for c6 in [&self.0.c0, &self.0.c1] {
            for c2 in [&c6.c0, &c6.c1, &c6.c2] {
                out.extend_from_slice(&c2.c0.to_be_bytes());
                out.extend_from_slice(&c2.c1.to_be_bytes());
            }
        }
        out
    }
}

/// Lifts a twist point `(x', y') ∈ E'(Fp2)` to `E(Fp12)` through the
/// untwisting isomorphism `ψ(x', y') = (x'·v, y'·v·w)`.
///
/// Returns `(x_Q, y_Q)` as full `Fp12` elements; note `x_Q ∈ Fp6`, the fact
/// that licenses denominator elimination.
fn untwist(q: &G2Affine) -> (Fp12, Fp12) {
    let x = Fp12::new(Fp6::new(Fp2::zero(), q.x(), Fp2::zero()), Fp6::zero());
    let y = Fp12::new(Fp6::zero(), Fp6::new(Fp2::zero(), q.y(), Fp2::zero()));
    (x, y)
}

/// Evaluates the line through `a` and `b` (tangent when `a == b`) at the
/// untwisted point `(x_q, y_q)`, omitting vertical factors.
///
/// For a non-vertical line with slope `λ` through `(x₁, y₁)`:
/// `l(Q) = y_Q − y₁ − λ(x_Q − x₁)`.
/// For a vertical line (`a = −b`), returns `x_Q − x₁`, an `Fp6` element the
/// final exponentiation kills; included for robustness at the loop tail.
struct MillerState {
    /// Current accumulator point `T` in affine `Fp` coordinates (`None` = ∞).
    t: Option<(Fp, Fp)>,
}

impl MillerState {
    /// Tangent line at `T` evaluated at `Q`; advances `T ← 2T`.
    fn double_step(&mut self, x_q: &Fp12, y_q: &Fp12) -> Fp12 {
        let Some((x, y)) = self.t else {
            return Fp12::one();
        };
        if y.is_zero() {
            // 2T = ∞; vertical tangent.
            self.t = None;
            return x_q.sub(&Fp12::from_fp6(Fp6::from_fp2(Fp2::from_fp(x))));
        }
        // λ = 3x² / 2y
        let lambda = x
            .square()
            .mul(&Fp::from_u64(3))
            .mul(&y.double().inverse().expect("y ≠ 0"));
        let c = y.sub(&lambda.mul(&x)); // line: Y − λX − c
        let line = y_q
            .sub(&x_q.scale_fp(&lambda))
            .sub(&Fp12::from_fp6(Fp6::from_fp2(Fp2::from_fp(c))));
        // T ← 2T in affine coordinates.
        let x3 = lambda.square().sub(&x.double());
        let y3 = lambda.mul(&x.sub(&x3)).sub(&y);
        self.t = Some((x3, y3));
        line
    }

    /// Chord line through `T` and `p` evaluated at `Q`; advances `T ← T + p`.
    fn add_step(&mut self, p: (Fp, Fp), x_q: &Fp12, y_q: &Fp12) -> Fp12 {
        let Some((x1, y1)) = self.t else {
            self.t = Some(p);
            return Fp12::one();
        };
        let (x2, y2) = p;
        if x1 == x2 {
            if y1 == y2 {
                return self.double_step(x_q, y_q);
            }
            // T + p = ∞; vertical chord.
            self.t = None;
            return x_q.sub(&Fp12::from_fp6(Fp6::from_fp2(Fp2::from_fp(x1))));
        }
        let lambda = y2.sub(&y1).mul(&x2.sub(&x1).inverse().expect("x₂ ≠ x₁"));
        let c = y1.sub(&lambda.mul(&x1));
        let line = y_q
            .sub(&x_q.scale_fp(&lambda))
            .sub(&Fp12::from_fp6(Fp6::from_fp2(Fp2::from_fp(c))));
        let x3 = lambda.square().sub(&x1).sub(&x2);
        let y3 = lambda.mul(&x1.sub(&x3)).sub(&y1);
        self.t = Some((x3, y3));
        line
    }
}

/// The Miller function `f_{r,P}(ψ(Q))` (no final exponentiation).
fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fp12 {
    let (x_q, y_q) = untwist(q);
    let p_aff = (p.x(), p.y());
    let r: U256 = Fr::modulus();
    let bits = r.bits();

    let mut f = Fp12::one();
    let mut state = MillerState { t: Some(p_aff) };
    for i in (0..bits - 1).rev() {
        f = f.square();
        let l = state.double_step(&x_q, &y_q);
        f = f.mul(&l);
        if r.bit(i) {
            let l = state.add_step(p_aff, &x_q, &y_q);
            f = f.mul(&l);
        }
    }
    f
}

/// The hard part `f ↦ f^((p⁴−p²+1)/r)` for `f` in the cyclotomic subgroup,
/// via the Devegili–Scott–Dominguez Frobenius addition chain: three
/// `x`-power chains (64-bit exponents) plus a handful of Frobenius maps and
/// conjugations replace one dense 762-bit exponentiation. Conjugation is a
/// free inversion here because cyclotomic elements are unitary.
///
/// Equality with the plain exponentiation by the derived exponent is
/// asserted in `hard_part_chain_matches_derived_exponent`.
fn final_exp_hard_part_chain(f: &Fp12) -> Fp12 {
    let x = seccloud_bigint::ApInt::from_u64(params::BN_X);
    let fx = f.cyclotomic_pow(&x);
    let fx2 = fx.cyclotomic_pow(&x);
    let fx3 = fx2.cyclotomic_pow(&x);
    let fp = f.frobenius_p();
    let fp2 = f.frobenius_p2();
    let fp3 = fp2.frobenius_p();

    let y0 = fp.mul(&fp2).mul(&fp3);
    let y1 = f.conjugate();
    let y2 = fx2.frobenius_p2();
    let y3 = fx.frobenius_p().conjugate();
    let y4 = fx.mul(&fx2.frobenius_p()).conjugate();
    let y5 = fx2.conjugate();
    let y6 = fx3.mul(&fx3.frobenius_p()).conjugate();

    let mut t0 = y6.cyclotomic_square().mul(&y4).mul(&y5);
    let mut t1 = y3.mul(&y5).mul(&t0);
    t0 = t0.mul(&y2);
    t1 = t1.cyclotomic_square().mul(&t0).cyclotomic_square();
    let t2 = t1.mul(&y1);
    t1 = t1.mul(&y0);
    t2.cyclotomic_square().mul(&t1)
}

/// The final exponentiation `f ↦ f^((p¹²−1)/r)`.
///
/// Easy part via Frobenius (`(p⁶−1)(p²+1)`), hard part by the
/// Frobenius-assisted addition chain of [`final_exp_hard_part_chain`].
pub fn final_exponentiation(f: &Fp12) -> Fp12 {
    // f^(p⁶ − 1) = conj(f) · f⁻¹
    let f = f
        .conjugate()
        .mul(&f.inverse().expect("Miller value is nonzero"));
    // f^(p² + 1) = frob²(f) · f
    let f = f.frobenius_p2().mul(&f);
    // Hard part: f is now in the cyclotomic subgroup, so Granger–Scott
    // squarings and unitary inversion apply.
    final_exp_hard_part_chain(&f)
}

/// Computes the workspace's default reduced pairing `ê(P, Q)` — the optimal
/// ate pairing (shortest Miller loop); see [`crate::pairing_ate`].
///
/// Returns the identity when either input is the point at infinity, matching
/// the bilinear extension `ê(O, ·) = ê(·, O) = 1`.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{pairing, Fr, G1, G2};
/// let e = pairing(
///     &G1::generator().to_affine(),
///     &G2::generator().to_affine(),
/// );
/// assert!(!e.is_one(), "pairing of generators is non-degenerate");
/// ```
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    crate::ate::pairing_ate(p, q)
}

/// Computes `∏ᵢ ê(Pᵢ, Qᵢ)` with the default (optimal ate) pairing, sharing
/// one final exponentiation across all Miller loops.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    crate::ate::multi_pairing_ate(pairs)
}

/// Computes the reduced **Tate** pairing `ê(P, Q)` — the slower, textbook
/// backend kept as an independent implementation for cross-checking the
/// default ate pairing (see `benches/crypto_ops.rs` for the ablation).
pub fn pairing_tate(p: &G1Affine, q: &G2Affine) -> Gt {
    if p.is_identity() || q.is_identity() {
        return Gt::one();
    }
    Gt(final_exponentiation(&miller_loop(p, q)))
}

/// Computes `∏ᵢ ê(Pᵢ, Qᵢ)` with the Tate backend.
pub fn multi_pairing_tate(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    let mut acc = Fp12::one();
    let mut any = false;
    for (p, q) in pairs {
        if p.is_identity() || q.is_identity() {
            continue;
        }
        acc = acc.mul(&miller_loop(p, q));
        any = true;
    }
    if !any {
        return Gt::one();
    }
    Gt(final_exponentiation(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::{hash_to_g1, G1};
    use crate::g2::{hash_to_g2, G2};

    #[test]
    fn gt_ct_eq_agrees_with_eq() {
        let a = pairing(
            &hash_to_g1(b"ct-eq-p").to_affine(),
            &hash_to_g2(b"ct-eq-q").to_affine(),
        );
        let b = pairing(
            &hash_to_g1(b"ct-eq-p2").to_affine(),
            &hash_to_g2(b"ct-eq-q2").to_affine(),
        );
        assert!(a.ct_eq(&a));
        assert!(!a.ct_eq(&b));
        assert!(Gt::one().ct_eq(&Gt::one()));
        assert_eq!(a.ct_eq(&b), a == b);
    }

    #[test]
    fn hard_part_chain_matches_derived_exponent() {
        // The addition chain must equal plain exponentiation by the derived
        // (p⁴−p²+1)/r on cyclotomic inputs (easy-part outputs).
        for i in 0..3u32 {
            let raw = Fp12::new(
                Fp6::new(
                    Fp2::from_hash(b"hp-a", &i.to_be_bytes()),
                    Fp2::from_hash(b"hp-b", &i.to_be_bytes()),
                    Fp2::from_hash(b"hp-c", &i.to_be_bytes()),
                ),
                Fp6::new(
                    Fp2::from_hash(b"hp-d", &i.to_be_bytes()),
                    Fp2::from_hash(b"hp-e", &i.to_be_bytes()),
                    Fp2::from_hash(b"hp-f", &i.to_be_bytes()),
                ),
            );
            let easy = raw.conjugate().mul(&raw.inverse().expect("nonzero"));
            let cyc = easy.frobenius_p2().mul(&easy);
            assert_eq!(
                final_exp_hard_part_chain(&cyc),
                cyc.cyclotomic_pow(params::final_exp_hard_part()),
                "sample {i}"
            );
        }
    }

    #[test]
    fn non_degenerate_on_generators() {
        let e = pairing(&G1::generator().to_affine(), &G2::generator().to_affine());
        assert!(!e.is_one());
        // e has order dividing r: e^r = 1.
        let r_minus_1 = Fr::zero().sub(&Fr::one());
        assert_eq!(e.pow(&r_minus_1).mul(&e), Gt::one());
    }

    #[test]
    fn bilinear_in_first_argument() {
        let q = G2::generator().to_affine();
        let a = Fr::from_u64(5);
        let pa = G1::generator().mul_fr(&a).to_affine();
        let e1 = pairing(&pa, &q);
        let e2 = pairing(&G1::generator().to_affine(), &q).pow(&a);
        assert_eq!(e1, e2);
    }

    #[test]
    fn bilinear_in_second_argument() {
        let p = G1::generator().to_affine();
        let b = Fr::from_u64(11);
        let qb = G2::generator().mul_fr(&b).to_affine();
        let e1 = pairing(&p, &qb);
        let e2 = pairing(&p, &G2::generator().to_affine()).pow(&b);
        assert_eq!(e1, e2);
    }

    #[test]
    fn full_bilinearity_with_random_points() {
        let p = hash_to_g1(b"bilinear-p");
        let q = hash_to_g2(b"bilinear-q");
        let a = Fr::hash(b"scalar-a");
        let b = Fr::hash(b"scalar-b");
        let lhs = pairing(&p.mul_fr(&a).to_affine(), &q.mul_fr(&b).to_affine());
        let rhs = pairing(&p.to_affine(), &q.to_affine()).pow(&a.mul(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_with_identity_is_one() {
        let p = G1::generator().to_affine();
        let q = G2::generator().to_affine();
        assert!(pairing(&crate::g1::G1Affine::identity(), &q).is_one());
        assert!(pairing(&p, &crate::g2::G2Affine::identity()).is_one());
    }

    #[test]
    fn pairing_of_negated_point_is_inverse() {
        let p = hash_to_g1(b"inv-p");
        let q = hash_to_g2(b"inv-q");
        let e = pairing(&p.to_affine(), &q.to_affine());
        let e_neg = pairing(&p.neg().to_affine(), &q.to_affine());
        assert_eq!(e.mul(&e_neg), Gt::one());
        assert_eq!(e_neg, e.invert());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let pairs: Vec<_> = (0..3u32)
            .map(|i| {
                let p = hash_to_g1(format!("mp-p-{i}").as_bytes()).to_affine();
                let q = hash_to_g2(format!("mp-q-{i}").as_bytes()).to_affine();
                (p, q)
            })
            .collect();
        let product = pairs
            .iter()
            .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing(p, q)));
        assert_eq!(multi_pairing(&pairs), product);
    }

    #[test]
    fn additivity_identity() {
        // e(P1 + P2, Q) = e(P1, Q) · e(P2, Q)
        let p1 = hash_to_g1(b"add-1");
        let p2 = hash_to_g1(b"add-2");
        let q = hash_to_g2(b"add-q").to_affine();
        let lhs = pairing(&p1.add(&p2).to_affine(), &q);
        let rhs = pairing(&p1.to_affine(), &q).mul(&pairing(&p2.to_affine(), &q));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn gt_serialization_is_injective_on_samples() {
        let e1 = pairing(
            &hash_to_g1(b"ser-1").to_affine(),
            &hash_to_g2(b"ser-q").to_affine(),
        );
        let e2 = pairing(
            &hash_to_g1(b"ser-2").to_affine(),
            &hash_to_g2(b"ser-q").to_affine(),
        );
        assert_eq!(e1.to_bytes().len(), 384);
        assert_ne!(e1.to_bytes(), e2.to_bytes());
        assert_eq!(e1.to_bytes(), e1.to_bytes());
    }
}
