//! GLV endomorphism-accelerated scalar multiplication on `G1`.
//!
//! BN curves have `j = 0`, so `E : y² = x³ + 3` carries the automorphism
//! `φ : (x, y) ↦ (βx, y)` where `β` is a primitive cube root of unity in
//! `Fp`. On the order-`r` subgroup `φ` acts as multiplication by `λ`, a
//! cube root of unity in `Fr`. Gallant–Lambert–Vanstone turn this into a
//! speedup: split `k ≡ k₁ + λ·k₂ (mod r)` with `|k₁|, |k₂| ≈ √r` (half
//! length), then compute `[k]P = [k₁]P + [k₂]φ(P)` with one Strauss–Shamir
//! interleaved ladder — halving the doubling chain relative to a full-width
//! wNAF multiplication.
//!
//! In keeping with the crate's "derive, don't transcribe" policy, nothing
//! here is hard-coded: `β` and `λ` are found at first use by exponentiation
//! (`b^((m−1)/3)` for the first non-cube base `b`), matched against the
//! actual endomorphism on the generator, and the short lattice basis is
//! produced by Gauss reduction of `{(r, 0), (−λ, 1)}`. Tests cross-check
//! every derived constant.

use std::sync::OnceLock;

use seccloud_bigint::ApInt;

use crate::fp::Fp;
use crate::fr::Fr;
use crate::g1::G1;
use crate::params;

/// A sign-magnitude arbitrary-precision integer. `ApInt` is unsigned; the
/// lattice work below needs subtraction that can go negative.
#[derive(Clone, Debug)]
struct SInt {
    neg: bool,
    mag: ApInt,
}

impl SInt {
    fn zero() -> Self {
        Self {
            neg: false,
            mag: ApInt::zero(),
        }
    }

    fn from_apint(mag: ApInt) -> Self {
        Self { neg: false, mag }
    }

    fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Negation (zero stays canonically non-negative).
    fn neg(&self) -> Self {
        Self {
            neg: !self.neg && !self.mag.is_zero(),
            mag: self.mag.clone(),
        }
    }

    fn add(&self, rhs: &Self) -> Self {
        if self.neg == rhs.neg {
            return Self {
                neg: self.neg,
                mag: &self.mag + &rhs.mag,
            };
        }
        // Opposite signs: the larger magnitude decides the sign.
        if self.mag >= rhs.mag {
            let mag = self.mag.checked_sub(&rhs.mag).expect("|a| ≥ |b|");
            Self {
                neg: self.neg && !mag.is_zero(),
                mag,
            }
        } else {
            let mag = rhs.mag.checked_sub(&self.mag).expect("|b| > |a|");
            Self { neg: rhs.neg, mag }
        }
    }

    fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mag = &self.mag * &rhs.mag;
        Self {
            neg: (self.neg != rhs.neg) && !mag.is_zero(),
            mag,
        }
    }
}

/// Floor division of a signed numerator by a positive denominator.
fn floor_div(a: &SInt, b: &ApInt) -> SInt {
    let (q, rem) = a.mag.divrem(b).expect("positive denominator");
    if a.neg && !rem.is_zero() {
        // floor(−m/b) = −(⌊m/b⌋ + 1) when b ∤ m.
        SInt {
            neg: true,
            mag: &q + &ApInt::one(),
        }
    } else {
        SInt {
            neg: a.neg && !q.is_zero(),
            mag: q,
        }
    }
}

/// Round-to-nearest signed division `round(a / b)` for positive `b`,
/// computed purely with integers as `⌊(2a + b) / 2b⌋`. Floating point is
/// banned here: a 254-bit numerator does not fit an `f64` mantissa and the
/// rounding error would silently produce wrong (though still congruent)
/// decompositions of some scalars.
fn iround(a: &SInt, b: &ApInt) -> SInt {
    let two = ApInt::from_u64(2);
    let num = SInt {
        neg: a.neg,
        mag: &a.mag * &two,
    }
    .add(&SInt::from_apint(b.clone()));
    floor_div(&num, &(b * &two))
}

/// A lattice vector `(a, b)` representing `a + b·λ ≡ 0 (mod r)`.
type Vec2 = (SInt, SInt);

fn dot(u: &Vec2, v: &Vec2) -> SInt {
    u.0.mul(&v.0).add(&u.1.mul(&v.1))
}

/// Squared Euclidean norm (always non-negative, so plain `ApInt`).
fn norm2(v: &Vec2) -> ApInt {
    dot(v, v).mag
}

/// Lagrange–Gauss reduction of a rank-2 lattice basis: the 2-dimensional
/// analogue of Euclid's gcd. Returns a basis of the same lattice whose
/// vectors are (up to sign) the two successive minima — for the GLV lattice
/// this means all four entries come out near `√r` (≈ 127 bits).
fn gauss_reduce(mut u: Vec2, mut v: Vec2) -> (Vec2, Vec2) {
    loop {
        if norm2(&u) < norm2(&v) {
            std::mem::swap(&mut u, &mut v);
        }
        let m = iround(&dot(&u, &v), &norm2(&v));
        if m.is_zero() {
            return (v, u);
        }
        u = (u.0.sub(&m.mul(&v.0)), u.1.sub(&m.mul(&v.1)));
    }
}

/// Finds a primitive cube root of unity mod `m` (requires `3 | m − 1`):
/// `b^((m−1)/3)` for the first base `b` that is not a cube.
fn cube_root_of_unity(m: &ApInt) -> ApInt {
    let m_minus_1 = m.checked_sub(&ApInt::one()).expect("m > 1");
    let (e, rem) = m_minus_1.divrem(&ApInt::from_u64(3)).expect("3 ≠ 0");
    assert!(rem.is_zero(), "m ≢ 1 (mod 3): no cube roots of unity");
    for base in 2u64..64 {
        let w = ApInt::from_u64(base).modpow(&e, m);
        if !w.eq_u64(1) {
            return w;
        }
    }
    unreachable!("non-cubes have density 2/3; 62 misses is impossible")
}

/// The derived GLV constants, computed once at first use.
struct Glv {
    /// `φ(x, y) = (βx, y)` — a primitive cube root of unity in `Fp`.
    beta: Fp,
    /// The eigenvalue: `φ(P) = [λ]P` on the `r`-torsion.
    lambda: ApInt,
    /// Short basis of `{(z₁, z₂) : z₁ + z₂·λ ≡ 0 (mod r)}`.
    v1: Vec2,
    v2: Vec2,
}

fn glv() -> &'static Glv {
    static GLV: OnceLock<Glv> = OnceLock::new();
    GLV.get_or_init(|| {
        let r = params::r_apint();
        let p = params::p_apint();
        let lam0 = cube_root_of_unity(r);
        let beta0 = cube_root_of_unity(p);
        // Each field has two primitive cube roots (ω and ω²); only one of
        // the four (β, λ) pairings satisfies φ(P) = [λ]P. Match against the
        // generator rather than trusting any transcribed convention.
        let lambdas = [lam0.clone(), lam0.modmul(&lam0, r)];
        let betas = [beta0.clone(), beta0.modmul(&beta0, p)];
        let g = G1::generator();
        for beta_ap in &betas {
            let beta = Fp::from_u256(&beta_ap.to_uint().expect("β < p < 2²⁵⁶"));
            let phi_g = g.endo_scale_x(&beta);
            for lambda in &lambdas {
                if g.mul_apint(lambda) == phi_g {
                    let u = (SInt::from_apint(r.clone()), SInt::zero());
                    let v = (
                        SInt::from_apint(lambda.clone()).neg(),
                        SInt::from_apint(ApInt::one()),
                    );
                    let (v1, v2) = gauss_reduce(u, v);
                    return Glv {
                        beta,
                        lambda: lambda.clone(),
                        v1,
                        v2,
                    };
                }
            }
        }
        unreachable!("one (β, λ) pairing must realize the endomorphism")
    })
}

/// Splits `k` into `(k₁, k₂)` with `k ≡ k₁ + λ·k₂ (mod r)` and both halves
/// bounded by the reduced basis (≈ 127 bits): express `(k, 0)` in the basis
/// `{v₁, v₂}`, round the (rational) coordinates to integers `c₁, c₂`, and
/// take the residual `(k, 0) − c₁v₁ − c₂v₂`, which lies in the fundamental
/// parallelepiped.
fn decompose(k: &ApInt, g: &Glv) -> (SInt, SInt) {
    let k = SInt::from_apint(k.clone());
    // (c₁, c₂) = (k, 0)·B⁻¹ with B⁻¹ = adj(B)/det(B); det(B) = ±r.
    let det = g.v1.0.mul(&g.v2.1).sub(&g.v1.1.mul(&g.v2.0));
    let mut n1 = k.mul(&g.v2.1);
    let mut n2 = k.mul(&g.v1.1).neg();
    if det.neg {
        n1 = n1.neg();
        n2 = n2.neg();
    }
    let c1 = iround(&n1, &det.mag);
    let c2 = iround(&n2, &det.mag);
    let k1 = k.sub(&c1.mul(&g.v1.0)).sub(&c2.mul(&g.v2.0));
    let k2 = SInt::zero().sub(&c1.mul(&g.v1.1)).sub(&c2.mul(&g.v2.1));
    debug_assert!(
        k1.add(&k2.mul(&SInt::from_apint(g.lambda.clone())))
            .sub(&k)
            .mag
            .rem(params::r_apint())
            .is_zero(),
        "GLV split must recombine to k mod r"
    );
    (k1, k2)
}

/// GLV scalar multiplication `[k]P` on `G1`: decompose `k = k₁ + λ·k₂`,
/// fold the signs into the points, and evaluate `[|k₁|]P′ + [|k₂|]φ(P)′`
/// with the shared-doubling Strauss–Shamir ladder. Half the doublings of a
/// full-width wNAF walk.
pub(crate) fn mul_glv(p: &G1, k: &Fr) -> G1 {
    let g = glv();
    let (k1, k2) = decompose(&ApInt::from_uint(&k.to_u256()), g);
    let p1 = if k1.neg { p.neg() } else { *p };
    let phi = p.endo_scale_x(&g.beta);
    let p2 = if k2.neg { phi.neg() } else { phi };
    let half1 = k1.mag.to_uint().expect("|k₁| ≈ √r fits in 256 bits");
    let half2 = k2.mag.to_uint().expect("|k₂| ≈ √r fits in 256 bits");
    G1::double_scalar_mul(&p1, &half1, &p2, &half2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_hash::HmacDrbg;

    #[test]
    fn derived_constants_are_cube_roots() {
        let g = glv();
        let r = params::r_apint();
        let p = params::p_apint();
        // λ³ ≡ 1 (mod r), λ ≠ 1.
        let l3 = g.lambda.modmul(&g.lambda, r).modmul(&g.lambda, r);
        assert!(l3.eq_u64(1));
        assert!(!g.lambda.eq_u64(1));
        // β³ ≡ 1 (mod p), β ≠ 1.
        let b = ApInt::from_uint(&g.beta.to_u256());
        let b3 = b.modmul(&b, p).modmul(&b, p);
        assert!(b3.eq_u64(1));
        assert!(!b.eq_u64(1));
    }

    #[test]
    fn basis_vectors_are_short_lattice_members() {
        let g = glv();
        let r = params::r_apint();
        for v in [&g.v1, &g.v2] {
            // Membership: a + b·λ ≡ 0 (mod r), evaluated in sign-magnitude.
            let lb = v.1.mul(&SInt::from_apint(g.lambda.clone()));
            let s = v.0.add(&lb);
            assert!(s.mag.rem(r).is_zero(), "basis vector not in the lattice");
            // Shortness: every entry near √r (127 bits), not full width.
            assert!(v.0.mag.bits() <= 128, "|a| too long: {}", v.0.mag.bits());
            assert!(v.1.mag.bits() <= 128, "|b| too long: {}", v.1.mag.bits());
        }
    }

    #[test]
    fn decomposition_recombines_and_is_short() {
        let r = params::r_apint();
        let g = glv();
        let mut d = HmacDrbg::new(b"glv-decompose");
        let check = |k: ApInt| {
            let (k1, k2) = decompose(&k, g);
            assert!(k1.mag.bits() <= 128, "k1 bits {}", k1.mag.bits());
            assert!(k2.mag.bits() <= 128, "k2 bits {}", k2.mag.bits());
            // k1 + λ·k2 ≡ k (mod r), in sign-magnitude arithmetic.
            let lhs = k1.add(&k2.mul(&SInt::from_apint(g.lambda.clone())));
            let diff = lhs.sub(&SInt::from_apint(k.clone()));
            assert!(diff.mag.rem(r).is_zero(), "decomposition incongruent");
        };
        check(ApInt::zero());
        check(ApInt::one());
        check(r.checked_sub(&ApInt::one()).unwrap());
        for _ in 0..32 {
            let k = ApInt::from_uint(&Fr::random_nonzero(&mut d).to_u256());
            check(k);
        }
    }

    #[test]
    fn glv_matches_wnaf_on_random_and_edge_scalars() {
        let mut d = HmacDrbg::new(b"glv-vs-wnaf");
        let g1 = G1::generator();
        let p = crate::hash_to_g1(b"glv-base");
        for k in [
            Fr::zero(),
            Fr::one(),
            Fr::zero().sub(&Fr::one()), // r − 1
            Fr::from_u64(2),
        ] {
            let expect = p.mul_limbs_wnaf(k.to_u256().limbs());
            assert_eq!(mul_glv(&p, &k), expect, "edge scalar {k:?}");
        }
        for _ in 0..24 {
            let k = Fr::random_nonzero(&mut d);
            let expect = p.mul_limbs_wnaf(k.to_u256().limbs());
            assert_eq!(mul_glv(&p, &k), expect);
            assert_eq!(mul_glv(&g1, &k), g1.mul_limbs_wnaf(k.to_u256().limbs()));
        }
        // Identity base point.
        assert!(mul_glv(&G1::identity(), &Fr::from_u64(42)).is_identity());
    }
}
