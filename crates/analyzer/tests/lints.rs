//! Fixture-driven integration tests for `seccloud-lint`.
//!
//! Each bad fixture in `tests/fixtures/` must trip exactly its rule, both
//! through the library API and through the compiled binary (nonzero exit).
//! The clean fixture must be silent, and so must the real workspace tree.

use std::path::{Path, PathBuf};
use std::process::Command;

use analyzer::{lint_single_file, render_json, Report};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Report {
    lint_single_file(&fixture_path(name)).expect("fixture readable")
}

fn rules_hit(report: &Report) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

fn run_binary(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_seccloud-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn panic_fixture_trips_panic_rule() {
    let report = lint_fixture("panic.rs");
    assert_eq!(rules_hit(&report), ["panic"]);
    // unwrap + expect + panic! + unreachable!
    assert_eq!(report.findings.len(), 4);
}

#[test]
fn index_fixture_trips_index_rule() {
    let report = lint_fixture("index.rs");
    assert_eq!(rules_hit(&report), ["index"]);
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn secret_fixture_trips_secret_rule() {
    let report = lint_fixture("secret.rs");
    assert_eq!(rules_hit(&report), ["secret"]);
    // Debug derive + missing Drop + format-site leak.
    assert!(
        report.findings.len() >= 3,
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn ct_fixture_trips_ct_rule() {
    let report = lint_fixture("ct.rs");
    assert_eq!(rules_hit(&report), ["ct"]);
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn unsafe_fixture_trips_unsafe_rule() {
    let report = lint_fixture("unsafe.rs");
    assert_eq!(rules_hit(&report), ["unsafe"]);
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn transport_fixture_trips_transport_rule() {
    let report = lint_fixture("transport.rs");
    assert_eq!(rules_hit(&report), ["transport"]);
    // `WireTransport` bound + `WireServer` construction.
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn clean_fixture_is_silent_and_reports_allowance() {
    let report = lint_fixture("clean.rs");
    assert!(
        report.findings.is_empty(),
        "findings: {:?}",
        report.findings
    );
    // The one `lint: allow(panic, ...)` escape hatch must be surfaced.
    assert_eq!(report.allowances.len(), 1);
    assert_eq!(report.allowances[0].rule, "panic");
    assert!(report.allowances[0].reason.contains("escape hatch"));
}

#[test]
fn binary_fails_on_each_bad_fixture() {
    for name in [
        "panic.rs",
        "index.rs",
        "secret.rs",
        "ct.rs",
        "unsafe.rs",
        "transport.rs",
    ] {
        let path = fixture_path(name);
        let out = run_binary(&[path.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} should exit 1: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_passes_on_clean_fixture() {
    let path = fixture_path("clean.rs");
    let out = run_binary(&[path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean.rs should exit 0: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_baseline_emits_json() {
    let path = fixture_path("ct.rs");
    let out = run_binary(&["--baseline", path.to_str().unwrap()]);
    // Baseline mode always exits 0 — it reports, it does not gate.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"ct\""), "stdout: {stdout}");
    assert!(stdout.contains("\"line\""), "stdout: {stdout}");
}

#[test]
fn binary_rejects_bad_usage() {
    let out = run_binary(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyzer::lint_workspace(&root).expect("workspace readable");
    assert!(
        report.findings.is_empty(),
        "workspace findings:\n{}",
        render_json(&report)
    );
    // Every allowance in the tree must carry a reason.
    for a in &report.allowances {
        assert!(!a.reason.is_empty(), "allowance without reason: {a:?}");
    }
}
