//! `seccloud-lint`: in-house static analysis for the SecCloud workspace.
//!
//! SecCloud's audit pipeline is only as trustworthy as its implementation:
//! a panicking decoder is a remote denial-of-service, a `Debug`-printed
//! master secret breaks the designated-verifier property, and a
//! short-circuiting digest comparison is a timing oracle on the very tags
//! the auditor relies on. This crate machine-checks those invariants with
//! a dependency-free token-level analysis (no `syn`, matching the
//! workspace's zero-dependency rule) and a `seccloud-lint` binary that
//! `ci.sh` runs as a hard gate.
//!
//! See [`rules`] for the rule set and the annotation grammar, and
//! `DESIGN.md` §9 for the paper property each rule protects.
//!
//! # Examples
//!
//! ```
//! use analyzer::{lint_files, RULE_PANIC};
//! let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }".to_string();
//! let report = lint_files(&[("crates/core/src/f.rs".into(), src)], false);
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, RULE_PANIC);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod astrules;
mod atomics;
mod blocking;
pub mod callgraph;
mod ctflow;
pub mod lexer;
mod locks;
pub mod rules;
pub mod sarif;
mod taint;

pub use rules::{
    lint_files, Allowance, Finding, Report, ALL_RULES, RULE_ANNOTATION, RULE_ARITH, RULE_ATOMICS,
    RULE_BLOCKING, RULE_CT, RULE_CTFLOW, RULE_DEADLINE, RULE_DISPATCH, RULE_INDEX, RULE_LOCKS,
    RULE_PANIC, RULE_PANIC_PATH, RULE_SECRET, RULE_TAINT, RULE_UNSAFE, RULE_VARTIME,
};
pub use sarif::render_sarif;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root` (skipping `target/`, `.git/` and
/// test `fixtures/`), returning `(workspace-relative path, source)` pairs
/// sorted by path for deterministic reports.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = fs::read_to_string(root.join(&rel))?;
        out.push((rel.replace('\\', "/"), src));
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().into_owned());
            }
        }
    }
    Ok(())
}

/// Lints a whole workspace rooted at `root` with path-scoped rules.
///
/// # Errors
///
/// Propagates I/O errors from the file walk.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = collect_files(root)?;
    Ok(lint_files(&files, false))
}

/// Lints one file with **all** rules enabled (fixture / spot-check mode).
///
/// # Errors
///
/// Propagates the read error if `path` is unreadable.
pub fn lint_single_file(path: &Path) -> io::Result<Report> {
    let src = fs::read_to_string(path)?;
    let rel: PathBuf = path.to_path_buf();
    Ok(lint_files(
        &[(rel.to_string_lossy().into_owned(), src)],
        true,
    ))
}

/// Renders the findings as machine-readable JSON: a sorted array of
/// `{"rule", "file", "line", "message"}` objects that future PRs can diff.
#[must_use]
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("[\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 == report.findings.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}{sep}\n",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders the full `--baseline` document: the findings array (same shape
/// as [`render_json`]) plus every allowance with its reason. CI diffs this
/// against the committed baseline in `crates/baselines/`, so a new
/// allowance (or a dropped one) fails the gate until committed
/// deliberately.
#[must_use]
pub fn render_baseline_json(report: &Report) -> String {
    let mut out = String::from("{\n\"findings\": ");
    out.push_str(render_json(report).trim_end());
    out.push_str(",\n\"allowances\": [\n");
    for (i, a) in report.allowances.iter().enumerate() {
        let sep = if i + 1 == report.allowances.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"reason\":\"{}\"}}{sep}\n",
            json_escape(&a.rule),
            json_escape(&a.file),
            a.line,
            json_escape(&a.reason),
        ));
    }
    out.push_str("]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed_and_escaped() {
        let report = Report {
            findings: vec![Finding {
                rule: RULE_PANIC,
                file: "a \"b\"\\c.rs".to_string(),
                line: 3,
                message: "line1\nline2".to_string(),
            }],
            allowances: Vec::new(),
            files: 1,
        };
        let json = render_json(&report);
        assert!(json.contains(r#""rule":"panic""#));
        assert!(json.contains(r#"a \"b\"\\c.rs"#));
        assert!(json.contains(r"line1\nline2"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_report_renders_empty_array() {
        assert_eq!(render_json(&Report::default()).trim(), "[\n]".trim());
    }
}
