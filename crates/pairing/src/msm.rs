//! Weighted multi-term folding for small-exponent batch verification.
//!
//! Randomized (Bellare–Garay–Rabin style) batch verification checks
//!
//! ```text
//! ê(Σᵢ rᵢ·uᵢ, sk_V)  =  Πᵢ σᵢ^{rᵢ}
//! ```
//!
//! for verifier-drawn random weights `rᵢ`, instead of the unweighted
//! `ê(Σᵢ uᵢ, sk_V) = Πᵢ σᵢ` — the weights stop coordinated per-item
//! corruptions whose error terms multiply to one from cancelling inside
//! the aggregate. Weights are 64-bit (the classic small-exponent
//! parameter: a cheating batch survives with probability ≤ 2⁻⁶⁴ per
//! verification attempt), which keeps the weighted fold far cheaper than
//! the pairings it guards.
//!
//! [`weighted_fold`] computes both sides' aggregation —
//! `Σᵢ rᵢ·uᵢ ∈ G1` and `Πᵢ σᵢ^{rᵢ} ∈ GT` — with a shared-window bucket
//! method (Pippenger), so the marginal cost per term is a handful of
//! group operations rather than a full 64-bit scalar multiplication and
//! exponentiation each: ~25 µs/term at 10k-term batches against ~270 µs
//! naively. The window width adapts to the batch size.
//!
//! `GT` squarings deliberately use the generic group multiplication, not
//! the cyclotomic shortcut: `σ` values arrive from the wire and an
//! adversarial non-subgroup element must be folded with the same
//! arithmetic the comparison side uses, never with arithmetic that is
//! only valid on the cyclotomic subgroup.

use crate::g1::G1;
use crate::pairing::Gt;

/// Number of bits in the batch-verification weights.
pub const WEIGHT_BITS: u32 = 64;

/// Bucket-window width for a batch of `n` terms (wider windows amortize
/// bucket-aggregation overhead only once `n` is large enough to fill
/// them).
fn window_bits(n: usize) -> u32 {
    match n {
        0..=1 => 1,
        2..=7 => 2,
        8..=31 => 4,
        32..=255 => 6,
        _ => 8,
    }
}

/// The weighted fold `(Σᵢ rᵢ·uᵢ, Πᵢ σᵢ^{rᵢ})` over `terms = [(uᵢ, σᵢ)]`
/// and `weights = [rᵢ]` (extra entries on either side are ignored; the
/// caller supplies one weight per term).
///
/// A zero weight erases its term from both sides — batch-verification
/// callers must draw weights from `[1, 2⁶⁴)`.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{hash_to_g1, hash_to_g2, pairing, weighted_fold, Fr};
///
/// let u = hash_to_g1(b"u");
/// let sigma = pairing(&hash_to_g1(b"p").to_affine(), &hash_to_g2(b"q").to_affine());
/// let (wu, wsigma) = weighted_fold(&[(u, sigma)], &[3]);
/// assert_eq!(wu, u.mul_fr(&Fr::from_u64(3)));
/// assert_eq!(wsigma, sigma.pow(&Fr::from_u64(3)));
/// ```
pub fn weighted_fold(terms: &[(G1, Gt)], weights: &[u64]) -> (G1, Gt) {
    let n = terms.len().min(weights.len());
    if n == 0 {
        return (G1::identity(), Gt::one());
    }
    let c = window_bits(n);
    let windows = 64u32.div_ceil(c);
    let mask = (1u64 << c) - 1;
    let bucket_count = (1usize << c) - 1;

    let mut g1_acc = G1::identity();
    let mut gt_acc = Gt::one();
    let mut g1_buckets = vec![G1::identity(); bucket_count];
    let mut gt_buckets = vec![Gt::one(); bucket_count];
    for w in (0..windows).rev() {
        for _ in 0..c {
            g1_acc = g1_acc.double();
            gt_acc = gt_acc.mul(&gt_acc);
        }
        for b in g1_buckets.iter_mut() {
            *b = G1::identity();
        }
        for b in gt_buckets.iter_mut() {
            *b = Gt::one();
        }
        let shift = w * c;
        for ((u, sigma), r) in terms.iter().zip(weights) {
            let digit = ((r >> shift) & mask) as usize;
            if digit == 0 {
                continue;
            }
            if let (Some(gb), Some(tb)) =
                (g1_buckets.get_mut(digit - 1), gt_buckets.get_mut(digit - 1))
            {
                *gb = gb.add(u);
                *tb = tb.mul(sigma);
            }
        }
        // Running-sum aggregation: Σⱼ j·Bⱼ (resp. Π Bⱼʲ) in 2·(2ᶜ−1) ops.
        let mut g1_running = G1::identity();
        let mut gt_running = Gt::one();
        for (gb, tb) in g1_buckets.iter().zip(&gt_buckets).rev() {
            g1_running = g1_running.add(gb);
            gt_running = gt_running.mul(tb);
            g1_acc = g1_acc.add(&g1_running);
            gt_acc = gt_acc.mul(&gt_running);
        }
    }
    (g1_acc, gt_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fr::Fr;
    use crate::g1::hash_to_g1;
    use crate::g2::hash_to_g2;
    use crate::pairing::pairing;

    fn sample_terms(n: usize) -> Vec<(G1, Gt)> {
        (0..n)
            .map(|i| {
                let u = hash_to_g1(format!("msm-u-{i}").as_bytes());
                let sigma = pairing(
                    &hash_to_g1(format!("msm-p-{i}").as_bytes()).to_affine(),
                    &hash_to_g2(format!("msm-q-{i}").as_bytes()).to_affine(),
                );
                (u, sigma)
            })
            .collect()
    }

    fn naive(terms: &[(G1, Gt)], weights: &[u64]) -> (G1, Gt) {
        terms
            .iter()
            .zip(weights)
            .fold((G1::identity(), Gt::one()), |(gu, gs), ((u, sigma), &r)| {
                let k = Fr::from_u64(r);
                (gu.add(&u.mul_fr(&k)), gs.mul(&sigma.pow(&k)))
            })
    }

    #[test]
    fn matches_naive_across_window_regimes() {
        // One n per window_bits branch, weights exercising high/low bits.
        for n in [1usize, 2, 5, 9, 40] {
            let terms = sample_terms(n);
            let weights: Vec<u64> = (0..n)
                .map(|i| {
                    u64::MAX
                        .wrapping_mul(i as u64 + 3)
                        .rotate_left(i as u32)
                        .max(1)
                })
                .collect();
            assert_eq!(
                weighted_fold(&terms, &weights),
                naive(&terms, &weights),
                "n = {n}"
            );
        }
    }

    #[test]
    fn empty_and_zero_weight_edges() {
        assert_eq!(weighted_fold(&[], &[]), (G1::identity(), Gt::one()));
        let terms = sample_terms(3);
        // A zero weight erases the term; extra weights are ignored.
        let (u, s) = weighted_fold(&terms, &[0, 7, 0, 99]);
        let (nu, ns) = naive(&terms, &[0, 7, 0]);
        assert_eq!((u, s), (nu, ns));
        // Missing weights truncate the fold.
        assert_eq!(
            weighted_fold(&terms, &[5]),
            naive(&terms[..1], &[5]),
            "terms beyond the weight list are ignored"
        );
    }

    #[test]
    fn weight_one_is_the_plain_fold() {
        let terms = sample_terms(4);
        let weights = [1u64; 4];
        let plain = terms
            .iter()
            .fold((G1::identity(), Gt::one()), |(gu, gs), (u, sigma)| {
                (gu.add(u), gs.mul(sigma))
            });
        assert_eq!(weighted_fold(&terms, &weights), plain);
    }

    #[test]
    fn weighted_fold_preserves_the_pairing_relation() {
        // Honest designated terms: σᵢ = ê(uᵢ, Q). The weighted fold must
        // keep ê(Σ rᵢ·uᵢ, Q) = Π σᵢ^{rᵢ} for any weights.
        let q = hash_to_g2(b"msm-relation-q").to_affine();
        let terms: Vec<(G1, Gt)> = (0..6)
            .map(|i| {
                let u = hash_to_g1(format!("msm-rel-{i}").as_bytes());
                (u, pairing(&u.to_affine(), &q))
            })
            .collect();
        let weights: Vec<u64> = (1..=6).map(|i| 0x9E37_79B9_7F4A_7C15u64 ^ i).collect();
        let (wu, wsigma) = weighted_fold(&terms, &weights);
        assert_eq!(pairing(&wu.to_affine(), &q), wsigma);
    }
}
