//! The binary hash tree and single-leaf authentication paths.

use seccloud_hash::Sha256;

/// A 32-byte tree node value.
pub type Node = [u8; 32];

/// Hashes a leaf's committed bytes with the leaf domain prefix.
pub fn leaf_hash(data: &[u8]) -> Node {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes two children into their parent (paper eq. 6:
/// `Ω(V) = H(Ω(V_left) ‖ Ω(V_right))`, with an interior domain prefix).
pub fn node_hash(left: &Node, right: &Node) -> Node {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A complete Merkle hash tree storing every level.
///
/// Odd nodes at any level are *promoted* unchanged to the next level (no
/// phantom duplication), so trees over any leaf count are well defined and
/// proofs stay minimal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Node>>,
}

/// An authentication path from one leaf to the root — the "sibling set" the
/// cloud server returns during the audit response step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerklePath {
    /// Sibling hash at each level climbing toward the root, with the side
    /// the *sibling* sits on (`true` = sibling is on the left). Levels where
    /// the climbing node was promoted without a sibling are omitted.
    siblings: Vec<(Node, bool)>,
    /// Number of leaves in the tree the path was generated from (needed to
    /// recompute promotion structure during verification).
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds a tree from pre-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty — an empty commitment has no root.
    pub fn from_leaves(leaves: Vec<Node>) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves];
        loop {
            let next = {
                let Some(prev) = levels.last() else { break };
                if prev.len() <= 1 {
                    break;
                }
                let mut next = Vec::with_capacity(prev.len().div_ceil(2));
                for pair in prev.chunks(2) {
                    match (pair.first(), pair.get(1)) {
                        (Some(l), Some(r)) => next.push(node_hash(l, r)),
                        (Some(one), None) => next.push(*one), // promote
                        (None, _) => {}
                    }
                }
                next
            };
            levels.push(next);
        }
        Self { levels }
    }

    /// Builds a tree by leaf-hashing each datum.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn from_data<'a, I>(data: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        Self::from_leaves(data.into_iter().map(leaf_hash).collect())
    }

    /// Parallel variant of [`MerkleTree::from_data`]: leaf hashing and the
    /// wide interior levels fan out over [`seccloud_parallel::num_threads`]
    /// workers. Bit-identical output to the serial build for any worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_data_parallel(data: &[&[u8]]) -> Self {
        assert!(!data.is_empty(), "Merkle tree needs at least one leaf");
        Self::from_leaves_parallel(seccloud_parallel::parallel_map(data, |_, d| leaf_hash(d)))
    }

    /// Parallel variant of [`MerkleTree::from_leaves`]. Levels narrower than
    /// a threshold are built serially — near the root the hash count is too
    /// small to amortize thread spawn.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn from_leaves_parallel(leaves: Vec<Node>) -> Self {
        /// Parent count below which a level is hashed on the calling thread.
        const PARALLEL_THRESHOLD: usize = 512;
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let threads = seccloud_parallel::num_threads();
        let parent = |level: &[Node], i: usize| match (level.get(2 * i), level.get(2 * i + 1)) {
            (Some(l), Some(r)) => node_hash(l, r),
            (Some(l), None) => *l, // promote
            (None, _) => [0; 32],  // out of range: `i` is always < parent count
        };
        let mut levels = vec![leaves];
        loop {
            let next = {
                let Some(prev) = levels.last() else { break };
                if prev.len() <= 1 {
                    break;
                }
                let parents = prev.len().div_ceil(2);
                if threads > 1 && parents >= PARALLEL_THRESHOLD {
                    seccloud_parallel::parallel_ranges(parents, threads, |range| {
                        range.map(|i| parent(prev, i)).collect::<Vec<Node>>()
                    })
                    .concat()
                } else {
                    (0..parents).map(|i| parent(prev, i)).collect()
                }
            };
            levels.push(next);
        }
        Self { levels }
    }

    /// The committed root `R`.
    pub fn root(&self) -> Node {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or([0; 32])
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The leaf hash at `index`, if in range.
    pub fn leaf(&self, index: usize) -> Option<Node> {
        self.levels[0].get(index).copied()
    }

    /// Produces the authentication path for leaf `index`.
    ///
    /// Returns `None` if `index` is out of range.
    pub fn prove(&self, index: usize) -> Option<MerklePath> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut pos = index;
        let (_, inner) = self.levels.split_last()?;
        for level in inner {
            let sibling_pos = pos ^ 1;
            if let Some(sib) = level.get(sibling_pos) {
                siblings.push((*sib, sibling_pos < pos));
            }
            // Promoted nodes contribute no sibling at this level.
            pos /= 2;
        }
        Some(MerklePath {
            siblings,
            leaf_count: self.leaf_count(),
        })
    }

    /// Convenience: prove several leaves with one shared-structure proof.
    ///
    /// Returns `None` if any index is out of range or the list is empty.
    pub fn prove_multi(&self, indices: &[usize]) -> Option<crate::MultiProof> {
        crate::MultiProof::generate(self, indices)
    }

    /// Direct access to a whole level (level 0 = leaves). Used by tests and
    /// the multi-proof generator.
    pub(crate) fn level(&self, i: usize) -> &[Node] {
        self.levels.get(i).map_or(&[][..], Vec::as_slice)
    }

    /// Number of levels including the root level.
    pub(crate) fn height(&self) -> usize {
        self.levels.len()
    }
}

impl MerklePath {
    /// Verifies that `data` (unhashed) at `index` is committed under `root`.
    ///
    /// Mirrors the paper's Algorithm 1 step "reconstruct the root value
    /// R(τ)": recompute the leaf hash, fold in siblings, and compare.
    pub fn verify(&self, root: &Node, data: &[u8], index: usize) -> bool {
        self.verify_leaf_hash(root, &leaf_hash(data), index)
    }

    /// Verifies a pre-hashed leaf (used when the caller already holds the
    /// leaf hash).
    pub fn verify_leaf_hash(&self, root: &Node, leaf: &Node, index: usize) -> bool {
        if index >= self.leaf_count {
            return false;
        }
        let mut node = *leaf;
        let mut pos = index;
        let mut width = self.leaf_count;
        let mut sib_iter = self.siblings.iter();
        while width > 1 {
            let has_sibling = (pos ^ 1) < width;
            if has_sibling {
                let Some((sib, sib_left)) = sib_iter.next() else {
                    return false;
                };
                // The sibling's claimed side must match the index structure.
                if *sib_left != (pos % 2 == 1) {
                    return false;
                }
                node = if *sib_left {
                    node_hash(sib, &node)
                } else {
                    node_hash(&node, sib)
                };
            }
            pos /= 2;
            width = width.div_ceil(2);
        }
        sib_iter.next().is_none() && seccloud_hash::ct_eq(&node, root)
    }

    /// The number of sibling hashes carried by this path.
    pub fn len(&self) -> usize {
        self.siblings.len()
    }

    /// Whether the path is empty (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }

    /// Serialized size in bytes (for the cost accounting in the bench
    /// harness).
    pub fn byte_len(&self) -> usize {
        self.siblings.len() * 33 + 8
    }

    /// Raw access for tamper-injection tests.
    #[doc(hidden)]
    pub fn siblings_mut(&mut self) -> &mut Vec<(Node, bool)> {
        &mut self.siblings
    }

    /// Decomposes into `(siblings, leaf_count)` for serialization.
    pub fn into_parts(self) -> (Vec<(Node, bool)>, usize) {
        (self.siblings, self.leaf_count)
    }

    /// Borrowing view of the sibling list.
    pub fn siblings(&self) -> &[(Node, bool)] {
        &self.siblings
    }

    /// The leaf count the path was generated against.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Rebuilds a path from its serialized parts. Validity is established
    /// by verification, not construction.
    pub fn from_parts(siblings: Vec<(Node, bool)>, leaf_count: usize) -> Self {
        Self {
            siblings,
            leaf_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("block-{i}").into_bytes()).collect()
    }

    #[test]
    fn paper_figure_3_shape_eight_leaves() {
        // Fig. 3: 8 leaves → 4 levels, root combines two 4-leaf subtrees.
        let d = data(8);
        let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
        assert_eq!(tree.height(), 4);
        assert_eq!(tree.level(1).len(), 4);
        assert_eq!(tree.level(2).len(), 2);
        let manual_root = node_hash(&tree.level(2)[0], &tree.level(2)[1]);
        assert_eq!(tree.root(), manual_root);
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_data([b"only".as_slice()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let p = tree.prove(0).unwrap();
        assert!(p.is_empty());
        assert!(p.verify(&tree.root(), b"only", 0));
        assert!(!p.verify(&tree.root(), b"other", 0));
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
            let d = data(n);
            let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
            for (i, leaf) in d.iter().enumerate() {
                let p = tree.prove(i).unwrap();
                assert!(p.verify(&tree.root(), leaf, i), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_data_index_or_root_fails() {
        let d = data(10);
        let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
        let p = tree.prove(3).unwrap();
        let root = tree.root();
        assert!(p.verify(&root, &d[3], 3));
        assert!(!p.verify(&root, &d[4], 3), "wrong data");
        assert!(!p.verify(&root, &d[3], 4), "wrong index");
        assert!(!p.verify(&[0u8; 32], &d[3], 3), "wrong root");
        assert!(!p.verify(&root, &d[3], 100), "out of range");
    }

    #[test]
    fn tampered_sibling_fails() {
        let d = data(8);
        let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
        let mut p = tree.prove(2).unwrap();
        p.siblings_mut()[1].0[0] ^= 1;
        assert!(!p.verify(&tree.root(), &d[2], 2));
    }

    #[test]
    fn flipped_sibling_side_fails() {
        let d = data(8);
        let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
        let mut p = tree.prove(2).unwrap();
        let side = p.siblings_mut()[0].1;
        p.siblings_mut()[0].1 = !side;
        assert!(!p.verify(&tree.root(), &d[2], 2));
    }

    #[test]
    fn any_leaf_change_changes_root() {
        let d = data(16);
        let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
        for i in 0..16 {
            let mut d2 = d.clone();
            d2[i][0] ^= 0xff;
            let tree2 = MerkleTree::from_data(d2.iter().map(Vec::as_slice));
            assert_ne!(tree.root(), tree2.root(), "leaf {i}");
        }
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A 2-leaf tree's root must differ from the leaf hash of the
        // concatenated children (the classic CVE-2012-2459 shape).
        let l = leaf_hash(b"a");
        let r = leaf_hash(b"b");
        let root = node_hash(&l, &r);
        let mut concat = Vec::new();
        concat.extend_from_slice(&l);
        concat.extend_from_slice(&r);
        assert_ne!(root, leaf_hash(&concat));
    }

    #[test]
    fn prove_out_of_range_is_none() {
        let d = data(4);
        let tree = MerkleTree::from_data(d.iter().map(Vec::as_slice));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::from_leaves(Vec::new());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Sizes straddling the per-level parallel threshold, plus odd
        // counts exercising promotion.
        for n in [1usize, 2, 3, 7, 33, 511, 512, 513, 1025, 2048] {
            let d = data(n);
            let serial = MerkleTree::from_data(d.iter().map(Vec::as_slice));
            let slices: Vec<&[u8]> = d.iter().map(Vec::as_slice).collect();
            let parallel = MerkleTree::from_data_parallel(&slices);
            assert_eq!(serial, parallel, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_parallel_tree_panics() {
        let _ = MerkleTree::from_data_parallel(&[]);
    }

    #[test]
    fn proof_from_smaller_tree_rejected_on_larger_claim() {
        // Path length mismatch must be caught.
        let d4 = data(4);
        let t4 = MerkleTree::from_data(d4.iter().map(Vec::as_slice));
        let d8 = data(8);
        let t8 = MerkleTree::from_data(d8.iter().map(Vec::as_slice));
        let p4 = t4.prove(0).unwrap();
        assert!(!p4.verify(&t8.root(), &d8[0], 0));
    }
}
