//! The resilient audit runtime: retries, deadlines, failover and adaptive
//! challenge escalation for the SecCloud wire protocol.
//!
//! The paper's DA "is expected to have enough computational and storage
//! capability to perform the auditing operations" (Section III-B), but the
//! raw wire drivers treat any channel hiccup as terminal: one truncated
//! frame aborts the whole audit. This crate gives the DA a production-grade
//! recovery layer with a hard rule at its core — **transient transport loss
//! and authenticated evidence of cheating must never be conflated**:
//!
//! * decode failures, truncation and timeouts are *transient*: the channel
//!   damaged an unauthenticated byte stream, so the call is retried under a
//!   [`RetryPolicy`] (exponential backoff with DRBG jitter, per-call
//!   deadlines, a total audit budget on a deterministic [`VirtualClock`]);
//! * a response that *authenticates* — `Sig(R)` verifies, the nonce echoes,
//!   the claimed results are bound into the signed root — and is still
//!   wrong is *byzantine* evidence. It is never retried; it feeds a
//!   per-endpoint suspicion score and ends the audit with `Detected`.
//!
//! Between the two sits adaptive escalation: after a transient-fault burst
//! or nonzero suspicion the DA re-draws a *larger* challenge before issuing
//! a verdict — `t' = min(2ˢ·t, n)` squares the paper's `Pr[FCS] = base^t`
//! escape bound per step (Section VII), capped at a full audit.
//!
//! Layered on top, [`ResilientPool`] runs `audit_many` over a pool of
//! [`ResilientTransport`] endpoints with a per-server [`CircuitBreaker`]:
//! when a breaker opens the job fails over to replica servers and the batch
//! reports per-job `Degraded` / `Unreachable` verdicts instead of
//! poisoning every other job.
//!
//! Everything is deterministic: backoff jitter, latency models and
//! challenge sampling all draw from seeded [`seccloud_hash::HmacDrbg`]
//! streams, so a failing recovery schedule replays exactly from its seed.
#![forbid(unsafe_code)]

pub mod breaker;
pub mod clock;
pub mod driver;
pub mod escalation;
pub mod policy;
pub mod pool;
pub mod sharded;
pub mod transport;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use clock::{LatencyModel, VirtualClock};
pub use driver::{
    commitment_binds_results, run_job_resilient, storage_audit_resilient, AuditResolution,
    RecoveryStats, StorageResolution,
};
pub use escalation::escalate_sample_size;
pub use policy::RetryPolicy;
pub use pool::{PoolJob, PoolVerdict, ResilientPool};
pub use sharded::{audit_shards, fold_status, ShardLane, ShardOutcome, ShardStatus};
pub use transport::{Op, OpStats, ResilientTransport};
