//! Fixture: blocking / expensive work performed while a lock is held.
//!
//! Two shapes the `blocking` rule must catch: a pairing entry point called
//! under a bound guard, and a sleep inside a closure running on a
//! guard-extending temporary (`self.inner.lock().map(|g| ...)` keeps the
//! guard alive for the whole chain, so the sleep happens inside the
//! critical section even though no guard binding is visible).

use std::sync::Mutex;
use std::time::Duration;

pub struct State {
    inner: Mutex<u64>,
}

fn miller_loop(x: u64) -> u64 {
    x.wrapping_mul(3)
}

impl State {
    pub fn pair_under_lock(&self) -> u64 {
        let Ok(g) = self.inner.lock() else { return 0 };
        miller_loop(*g)
    }

    pub fn sleep_on_temporary(&self) -> u64 {
        self.inner
            .lock()
            .map(|g| {
                std::thread::sleep(Duration::from_millis(1));
                *g
            })
            .unwrap_or(0)
    }
}
