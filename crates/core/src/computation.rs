//! Protocol III — secure cloud computation (paper Sections V-C and V-D).
//!
//! The cloud user submits a request `{F, P}` (functions + position vectors);
//! the cloud server computes `yᵢ = fᵢ(x_{pᵢ})`, commits to the batch with a
//! Merkle hash tree over leaves `H(yᵢ ‖ pᵢ)` (eq. 6, Fig. 3) and signs the
//! root. The DA then audits by probabilistic sampling (Algorithm 1):
//!
//! 1. **Audit challenge** — a random subset `S = {c₁, …, c_t}` of item
//!    indices.
//! 2. **Audit response** — for each `cᵢ`: the input blocks with their
//!    designated signatures, the claimed result, and the Merkle sibling set.
//! 3. **Response verify** — `IsSignatureWrong` (position correctness),
//!    `IsComputingWrong` (recompute `fᵢ`), `IsRootWrong` (reconstruct `R`).

use seccloud_hash::{HmacDrbg, Sha256};
use seccloud_ibs::{
    designate, sign, BatchVerifier, DesignatedSignature, UserKey, UserPublic, VerifierKey,
    VerifierPublic,
};
use seccloud_merkle::{MerklePath, MerkleTree, Node};

use crate::storage::SignedBlock;

/// A basic cloud computation `fᵢ` (paper: "data sum, data average, data
/// maximum, or other complicated computations based on these functions").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ComputeFunction {
    /// Sum of all readings (wrapping into 128 bits).
    Sum,
    /// Integer mean of the readings (0 for an empty input).
    Average,
    /// Maximum reading (0 for an empty input).
    Max,
    /// Minimum reading (0 for an empty input).
    Min,
    /// Number of readings.
    Count,
    /// Dot product with cyclically repeated weights.
    WeightedSum(Vec<u64>),
    /// `Σᵢ poly(xᵢ)` with the given coefficients (low order first),
    /// evaluated in wrapping 128-bit arithmetic.
    Polynomial(Vec<u64>),
    /// Sum of squared deviations from the integer mean — a variance-style
    /// aggregate exercising a two-pass computation.
    SumSquaredDeviation,
}

impl ComputeFunction {
    /// Evaluates the function over the readings gathered from the input
    /// blocks (in position order).
    pub fn eval(&self, values: &[u64]) -> u128 {
        match self {
            ComputeFunction::Sum => values.iter().fold(0u128, |a, &v| a.wrapping_add(v as u128)),
            ComputeFunction::Average => {
                if values.is_empty() {
                    0
                } else {
                    ComputeFunction::Sum.eval(values) / values.len() as u128
                }
            }
            ComputeFunction::Max => values.iter().copied().max().unwrap_or(0) as u128,
            ComputeFunction::Min => values.iter().copied().min().unwrap_or(0) as u128,
            ComputeFunction::Count => values.len() as u128,
            ComputeFunction::WeightedSum(w) => {
                if w.is_empty() {
                    return 0;
                }
                values
                    .iter()
                    .zip(w.iter().cycle())
                    .fold(0u128, |a, (&v, &wi)| {
                        a.wrapping_add((v as u128).wrapping_mul(wi as u128))
                    })
            }
            ComputeFunction::Polynomial(coeffs) => values.iter().fold(0u128, |acc, &x| {
                let mut term = 0u128;
                let mut x_pow = 1u128;
                for &c in coeffs {
                    term = term.wrapping_add((c as u128).wrapping_mul(x_pow));
                    x_pow = x_pow.wrapping_mul(x as u128);
                }
                acc.wrapping_add(term)
            }),
            ComputeFunction::SumSquaredDeviation => {
                if values.is_empty() {
                    return 0;
                }
                let mean = ComputeFunction::Average.eval(values);
                values.iter().fold(0u128, |acc, &v| {
                    let d = (v as u128).abs_diff(mean);
                    acc.wrapping_add(d.wrapping_mul(d))
                })
            }
        }
    }

    /// A stable byte encoding for hashing into request digests.
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ComputeFunction::Sum => out.push(0),
            ComputeFunction::Average => out.push(1),
            ComputeFunction::Max => out.push(2),
            ComputeFunction::Min => out.push(3),
            ComputeFunction::Count => out.push(4),
            ComputeFunction::WeightedSum(w) => {
                out.push(5);
                out.extend_from_slice(&(w.len() as u64).to_be_bytes());
                for v in w {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            ComputeFunction::Polynomial(c) => {
                out.push(6);
                out.extend_from_slice(&(c.len() as u64).to_be_bytes());
                for v in c {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            ComputeFunction::SumSquaredDeviation => out.push(7),
        }
    }
}

/// One requested sub-task: a function over the data at a position vector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RequestItem {
    /// The function `fᵢ`.
    pub function: ComputeFunction,
    /// The block positions `pᵢ` whose readings form the input.
    pub positions: Vec<u64>,
}

/// A computation service request `{F, P}` (paper Section V-C-1).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ComputationRequest {
    /// The sub-tasks `f₁ … f_n`.
    pub items: Vec<RequestItem>,
}

impl ComputationRequest {
    /// Creates a request from sub-tasks.
    pub fn new(items: Vec<RequestItem>) -> Self {
        Self { items }
    }

    /// Number of sub-tasks `n`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the request is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A collision-resistant digest binding warrants and root signatures to
    /// this exact request.
    pub fn digest(&self) -> [u8; 32] {
        let mut enc = Vec::new();
        enc.extend_from_slice(b"seccloud/request");
        enc.extend_from_slice(&(self.items.len() as u64).to_be_bytes());
        for item in &self.items {
            item.function.encode(&mut enc);
            enc.extend_from_slice(&(item.positions.len() as u64).to_be_bytes());
            for p in &item.positions {
                enc.extend_from_slice(&p.to_be_bytes());
            }
        }
        Sha256::digest(&enc)
    }
}

/// The Merkle leaf bytes for item `i`: `yᵢ ‖ pᵢ` (paper `vᵢ = H(yᵢ‖pᵢ)`;
/// the item index is folded in to make leaves position-unique).
pub fn leaf_bytes(item_index: usize, positions: &[u64], y: u128) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + positions.len() * 8);
    out.extend_from_slice(&y.to_be_bytes());
    out.extend_from_slice(&(item_index as u64).to_be_bytes());
    for p in positions {
        out.extend_from_slice(&p.to_be_bytes());
    }
    out
}

/// Errors produced while building a commitment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// A requested position has no stored block.
    MissingBlock {
        /// The absent position.
        position: u64,
    },
    /// The request contains no items.
    EmptyRequest,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::MissingBlock { position } => {
                write!(f, "no stored block at position {position}")
            }
            CommitError::EmptyRequest => write!(f, "computation request is empty"),
        }
    }
}

impl std::error::Error for CommitError {}

/// The public commitment the server returns: results `Y`, root `R`, and the
/// server's designated signature on `R` (paper Section V-C-2: "the cloud
/// server signs the root R … returns the results Y as well as Sig(R)").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Commitment {
    /// Claimed results `Y = {yᵢ}`.
    pub results: Vec<u128>,
    /// The Merkle root `R`.
    pub root: Node,
    /// `Sig(R)`, designated to the auditor.
    pub root_sig: DesignatedSignature,
    /// Identity of the committing server (its signing identity).
    pub server_identity: String,
}

/// The message bytes the server signs for `Sig(R)` — bound to the request
/// digest so a root cannot be replayed across requests.
pub fn root_signature_message(root: &Node, request_digest: &[u8; 32]) -> Vec<u8> {
    let mut m = Vec::with_capacity(80);
    m.extend_from_slice(b"seccloud/root");
    m.extend_from_slice(root);
    m.extend_from_slice(request_digest);
    m
}

/// Server-side state kept between commitment and audit response: the tree,
/// the inputs and the results.
#[derive(Clone, Debug)]
pub struct CommitmentSession {
    request: ComputationRequest,
    inputs: Vec<Vec<SignedBlock>>,
    results: Vec<u128>,
    tree: MerkleTree,
}

impl CommitmentSession {
    /// Honest commitment generation: looks up each requested block, computes
    /// every `yᵢ = fᵢ(x_{pᵢ})`, builds the Merkle tree and signs the root.
    ///
    /// `lookup` resolves a position to the stored [`SignedBlock`].
    ///
    /// # Errors
    ///
    /// [`CommitError::MissingBlock`] when storage lacks a requested
    /// position; [`CommitError::EmptyRequest`] for an empty request.
    pub fn commit<'a, F>(
        request: &ComputationRequest,
        mut lookup: F,
        server_signer: &UserKey,
        auditor: &VerifierPublic,
    ) -> Result<(Commitment, Self), CommitError>
    where
        F: FnMut(u64) -> Option<&'a SignedBlock>,
    {
        if request.is_empty() {
            return Err(CommitError::EmptyRequest);
        }
        let mut inputs = Vec::with_capacity(request.len());
        let mut results = Vec::with_capacity(request.len());
        for item in &request.items {
            let mut blocks = Vec::with_capacity(item.positions.len());
            let mut values = Vec::new();
            for &pos in &item.positions {
                let block = lookup(pos).ok_or(CommitError::MissingBlock { position: pos })?;
                values.extend(block.block().values());
                blocks.push(block.clone());
            }
            results.push(item.function.eval(&values));
            inputs.push(blocks);
        }
        let session = Self::from_results(request.clone(), inputs, results);
        let commitment = session.sign_root(server_signer, auditor);
        Ok((commitment, session))
    }

    /// Builds a session from externally computed results (the hook cheating
    /// simulators use to commit to *wrong* values).
    pub fn from_results(
        request: ComputationRequest,
        inputs: Vec<Vec<SignedBlock>>,
        results: Vec<u128>,
    ) -> Self {
        let leaves: Vec<Vec<u8>> = results
            .iter()
            .zip(&request.items)
            .enumerate()
            .map(|(i, (&y, item))| leaf_bytes(i, &item.positions, y))
            .collect();
        let tree = MerkleTree::from_data(leaves.iter().map(Vec::as_slice));
        Self {
            request,
            inputs,
            results,
            tree,
        }
    }

    /// Signs this session's root for `auditor`, producing the public
    /// [`Commitment`].
    pub fn sign_root(&self, server_signer: &UserKey, auditor: &VerifierPublic) -> Commitment {
        let msg = root_signature_message(&self.tree.root(), &self.request.digest());
        let raw = sign(server_signer, &msg, b"root");
        Commitment {
            results: self.results.clone(),
            root: self.tree.root(),
            root_sig: designate(&raw, auditor),
            server_identity: server_signer.identity().to_owned(),
        }
    }

    /// The claimed results.
    pub fn results(&self) -> &[u128] {
        &self.results
    }

    /// The Merkle root.
    pub fn root(&self) -> Node {
        self.tree.root()
    }

    /// Answers an audit challenge with per-item data, signatures and
    /// authentication paths (paper Section V-D step 2).
    ///
    /// Returns `None` if a challenged index is out of range.
    pub fn respond(&self, challenge: &AuditChallenge) -> Option<AuditResponse> {
        let items = challenge
            .indices
            .iter()
            .map(|&i| {
                let path = self.tree.prove(i)?;
                Some(AuditItemResponse {
                    item_index: i,
                    inputs: self.inputs.get(i)?.clone(),
                    claimed_y: *self.results.get(i)?,
                    path,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(AuditResponse {
            nonce: challenge.nonce,
            items,
        })
    }
}

/// The DA's sampling challenge: a subset `S` of sub-task indices plus a
/// fresh nonce binding the response to *this* challenge instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditChallenge {
    /// The sampled item indices `c₁ … c_t` (sorted, distinct).
    pub indices: Vec<usize>,
    /// Freshness nonce echoed by the response; a replayed response for an
    /// earlier challenge (even one with identical indices) carries the old
    /// nonce and is rejected.
    pub nonce: u128,
}

impl AuditChallenge {
    /// Samples `t` distinct indices out of `n` sub-tasks using the DA's
    /// DRBG (paper: "picks a random subset S from the domain [1, n]"),
    /// together with a fresh replay-protection nonce.
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    pub fn sample(drbg: &mut HmacDrbg, n: usize, t: usize) -> Self {
        let indices = drbg
            .sample_distinct(n as u64, t as u64)
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let nonce = u128::from(drbg.next_u64()) << 64 | u128::from(drbg.next_u64());
        Self { indices, nonce }
    }

    /// A challenge over explicit indices (nonce 0 — deterministic tests and
    /// callers that manage freshness themselves).
    pub fn from_indices(indices: Vec<usize>) -> Self {
        Self { indices, nonce: 0 }
    }

    /// The sampling size `t`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether no index is challenged.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Per-item audit response data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditItemResponse {
    /// Which sub-task this answers.
    pub item_index: usize,
    /// The input blocks at the requested positions, with their designated
    /// signatures (the paper's "the data x₄, its signature σ₄").
    pub inputs: Vec<SignedBlock>,
    /// The claimed result `y_cᵢ`.
    pub claimed_y: u128,
    /// The sibling set reconstructing the root (`{v₃, A, F}` in Fig. 3).
    pub path: MerklePath,
}

/// The server's full answer to an audit challenge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditResponse {
    /// Echo of the challenge nonce, binding this response to one challenge
    /// instance (replay protection).
    pub nonce: u128,
    /// One entry per challenged index, in challenge order.
    pub items: Vec<AuditItemResponse>,
}

/// A bandwidth-optimized audit response: identical per-item data but one
/// shared [`MultiProof`] instead of `t` independent sibling paths. For
/// adjacent samples this cuts the Merkle portion of the response roughly in
/// half (see `bin/optimal_t`'s transmission-cost table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactAuditResponse {
    /// Echo of the challenge nonce (replay protection).
    pub nonce: u128,
    /// Per-item data in challenge order (without per-item paths).
    pub items: Vec<CompactAuditItem>,
    /// One multi-proof covering every challenged leaf.
    pub proof: seccloud_merkle::MultiProof,
}

/// One item of a [`CompactAuditResponse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactAuditItem {
    /// Which sub-task this answers.
    pub item_index: usize,
    /// The input blocks with designated signatures.
    pub inputs: Vec<SignedBlock>,
    /// The claimed result.
    pub claimed_y: u128,
}

impl CommitmentSession {
    /// Answers a challenge with a [`CompactAuditResponse`] (one shared
    /// multi-proof). Returns `None` if any index is out of range.
    pub fn respond_compact(&self, challenge: &AuditChallenge) -> Option<CompactAuditResponse> {
        let proof = self.tree().prove_multi(&challenge.indices)?;
        let items = challenge
            .indices
            .iter()
            .map(|&i| {
                Some(CompactAuditItem {
                    item_index: i,
                    inputs: self.inputs.get(i)?.clone(),
                    claimed_y: *self.results.get(i)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(CompactAuditResponse {
            nonce: challenge.nonce,
            items,
            proof,
        })
    }

    /// The Merkle tree (crate-internal; used by the compact responder).
    fn tree(&self) -> &MerkleTree {
        &self.tree
    }
}

/// Verifies a [`CompactAuditResponse`]: the same three Algorithm-1
/// predicates as [`verify_response`], with the root reconstruction done
/// once over the shared multi-proof.
pub fn verify_response_compact(
    auditor: &VerifierKey,
    owner: &UserPublic,
    server_signer: &UserPublic,
    request: &ComputationRequest,
    challenge: &AuditChallenge,
    commitment: &Commitment,
    response: &CompactAuditResponse,
) -> AuditOutcome {
    let root_msg = root_signature_message(&commitment.root, &request.digest());
    let root_sig_ok = commitment.server_identity == server_signer.identity()
        && commitment
            .root_sig
            .verify(auditor, server_signer, &root_msg);
    let nonce_ok = response.nonce == challenge.nonce;

    let mut failures = Vec::new();
    let mut leaves: Vec<(usize, Vec<u8>)> = Vec::with_capacity(challenge.indices.len());
    for (slot, &index) in challenge.indices.iter().enumerate() {
        let item = response.items.get(slot);
        match check_compact_item(auditor, owner, request, index, item, commitment) {
            Ok(leaf) => leaves.push((index, leaf)),
            Err(f) => failures.push((index, f)),
        }
    }
    // One multi-proof check over all structurally valid items; if any item
    // already failed, the proof cannot match the claim set and the whole
    // path check fails for the missing leaves too.
    if failures.is_empty() {
        let claims: Vec<(usize, &[u8])> = leaves.iter().map(|(i, l)| (*i, l.as_slice())).collect();
        if !response.proof.verify(&commitment.root, &claims) {
            for &index in &challenge.indices {
                failures.push((index, AuditFailure::BadPath));
            }
        }
    }
    AuditOutcome {
        root_sig_ok,
        nonce_ok,
        failures,
        checked: challenge.indices.len(),
    }
}

fn check_compact_item(
    auditor: &VerifierKey,
    owner: &UserPublic,
    request: &ComputationRequest,
    index: usize,
    item: Option<&CompactAuditItem>,
    commitment: &Commitment,
) -> Result<Vec<u8>, AuditFailure> {
    let Some(item) = item else {
        return Err(AuditFailure::Missing);
    };
    if item.item_index != index {
        return Err(AuditFailure::Missing);
    }
    let Some(req_item) = request.items.get(index) else {
        return Err(AuditFailure::Missing);
    };
    if item.inputs.len() != req_item.positions.len()
        || item
            .inputs
            .iter()
            .zip(&req_item.positions)
            .any(|(b, &p)| b.block().index() != p)
    {
        return Err(AuditFailure::WrongPositions);
    }
    for block in &item.inputs {
        if !block.verify(auditor, owner) {
            return Err(AuditFailure::BadSignature);
        }
    }
    let values: Vec<u64> = item
        .inputs
        .iter()
        .flat_map(|b| b.block().values())
        .collect();
    let expected = req_item.function.eval(&values);
    if expected != item.claimed_y {
        return Err(AuditFailure::WrongResult {
            expected,
            claimed: item.claimed_y,
        });
    }
    // The audited item must agree with the commitment's published Y.
    if commitment.results.get(index) != Some(&item.claimed_y) {
        return Err(AuditFailure::CommitmentMismatch);
    }
    Ok(leaf_bytes(index, &req_item.positions, item.claimed_y))
}

/// Why one audited item failed (Algorithm 1's three predicates plus
/// structural checks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditFailure {
    /// The response does not cover this challenged index.
    Missing,
    /// Input blocks do not match the requested position vector.
    WrongPositions,
    /// A block's designated signature failed (`IsSignatureWrong`).
    BadSignature,
    /// Recomputing `fᵢ` disagrees with the claimed result
    /// (`IsComputingWrong`).
    WrongResult {
        /// What the verifier computed from the authenticated inputs.
        expected: u128,
        /// What the server claimed.
        claimed: u128,
    },
    /// Root reconstruction failed (`IsRootWrong`).
    BadPath,
    /// The audited item disagrees with the published commitment results
    /// (the delivered commitment and response cannot both be genuine).
    CommitmentMismatch,
}

/// The outcome of verifying an audit response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Whether `Sig(R)` verified, matched the commitment root, and the
    /// commitment names the expected server identity.
    pub root_sig_ok: bool,
    /// Whether the response echoed this challenge's nonce (replay check).
    pub nonce_ok: bool,
    /// Per-item failures, `(challenged index, reason)`.
    pub failures: Vec<(usize, AuditFailure)>,
    /// Number of items checked.
    pub checked: usize,
}

impl AuditOutcome {
    /// Algorithm 1's return value: `valid` iff no check failed.
    pub fn is_valid(&self) -> bool {
        self.root_sig_ok && self.nonce_ok && self.failures.is_empty()
    }
}

/// The DA's response verification (paper Algorithm 1).
///
/// * `auditor` — the DA's verification key (all designated signatures and
///   `Sig(R)` must be designated to it).
/// * `owner` — the data owner whose block signatures are checked.
/// * `server_signer` — the CS identity that signed the root.
pub fn verify_response(
    auditor: &VerifierKey,
    owner: &UserPublic,
    server_signer: &UserPublic,
    request: &ComputationRequest,
    challenge: &AuditChallenge,
    commitment: &Commitment,
    response: &AuditResponse,
) -> AuditOutcome {
    let root_msg = root_signature_message(&commitment.root, &request.digest());
    let root_sig_ok = commitment.server_identity == server_signer.identity()
        && commitment
            .root_sig
            .verify(auditor, server_signer, &root_msg);
    let nonce_ok = response.nonce == challenge.nonce;

    let mut failures = Vec::new();
    for (slot, &index) in challenge.indices.iter().enumerate() {
        match check_item(
            auditor,
            owner,
            request,
            index,
            response.items.get(slot),
            commitment,
        ) {
            Ok(()) => {}
            Err(f) => failures.push((index, f)),
        }
    }
    AuditOutcome {
        root_sig_ok,
        nonce_ok,
        failures,
        checked: challenge.indices.len(),
    }
}

/// Parallel variant of [`verify_response`]: the per-item checks (each one
/// pairing per input block) fan out over
/// [`seccloud_parallel::num_threads`] workers. Produces exactly the same
/// [`AuditOutcome`] as the serial version for any worker count — each
/// item's verdict is independent and results keep challenge order.
pub fn verify_response_parallel(
    auditor: &VerifierKey,
    owner: &UserPublic,
    server_signer: &UserPublic,
    request: &ComputationRequest,
    challenge: &AuditChallenge,
    commitment: &Commitment,
    response: &AuditResponse,
) -> AuditOutcome {
    let root_msg = root_signature_message(&commitment.root, &request.digest());
    let root_sig_ok = commitment.server_identity == server_signer.identity()
        && commitment
            .root_sig
            .verify(auditor, server_signer, &root_msg);
    let nonce_ok = response.nonce == challenge.nonce;

    let verdicts = seccloud_parallel::parallel_map(&challenge.indices, |slot, &index| {
        check_item(
            auditor,
            owner,
            request,
            index,
            response.items.get(slot),
            commitment,
        )
        .err()
        .map(|f| (index, f))
    });
    AuditOutcome {
        root_sig_ok,
        nonce_ok,
        failures: verdicts.into_iter().flatten().collect(),
        checked: challenge.indices.len(),
    }
}

fn check_item(
    auditor: &VerifierKey,
    owner: &UserPublic,
    request: &ComputationRequest,
    index: usize,
    item: Option<&AuditItemResponse>,
    commitment: &Commitment,
) -> Result<(), AuditFailure> {
    let Some(item) = item else {
        return Err(AuditFailure::Missing);
    };
    if item.item_index != index {
        return Err(AuditFailure::Missing);
    }
    let Some(req_item) = request.items.get(index) else {
        return Err(AuditFailure::Missing);
    };
    // Position correctness: the returned blocks must sit at exactly the
    // requested positions, in order.
    if item.inputs.len() != req_item.positions.len()
        || item
            .inputs
            .iter()
            .zip(&req_item.positions)
            .any(|(b, &p)| b.block().index() != p)
    {
        return Err(AuditFailure::WrongPositions);
    }
    // IsSignatureWrong: each input block authenticates under the DA key.
    for block in &item.inputs {
        if !block.verify(auditor, owner) {
            return Err(AuditFailure::BadSignature);
        }
    }
    // IsComputingWrong: recompute fᵢ over the authenticated readings.
    let values: Vec<u64> = item
        .inputs
        .iter()
        .flat_map(|b| b.block().values())
        .collect();
    let expected = req_item.function.eval(&values);
    if expected != item.claimed_y {
        return Err(AuditFailure::WrongResult {
            expected,
            claimed: item.claimed_y,
        });
    }
    // The audited item must agree with the commitment's published Y.
    if commitment.results.get(index) != Some(&item.claimed_y) {
        return Err(AuditFailure::CommitmentMismatch);
    }
    // IsRootWrong: the claimed yᵢ must have been committed before the tree
    // was built.
    let leaf = leaf_bytes(index, &req_item.positions, item.claimed_y);
    if !item.path.verify(&commitment.root, &leaf, index) {
        return Err(AuditFailure::BadPath);
    }
    Ok(())
}

/// Batched variant of [`verify_response`]: identical checks, but all
/// designated signatures (the input blocks *and* `Sig(R)`) fold into a
/// single pairing via [`BatchVerifier`] (Section VI).
///
/// Returns `true` iff the response is fully valid. On `false`, run
/// [`verify_response`] to locate the offending item.
pub fn verify_response_batched(
    auditor: &VerifierKey,
    owner: &UserPublic,
    server_signer: &UserPublic,
    request: &ComputationRequest,
    challenge: &AuditChallenge,
    commitment: &Commitment,
    response: &AuditResponse,
) -> bool {
    if response.nonce != challenge.nonce {
        return false;
    }
    if commitment.server_identity != server_signer.identity() {
        return false;
    }
    let mut batch = BatchVerifier::new();
    // Fold Sig(R).
    let root_msg = root_signature_message(&commitment.root, &request.digest());
    batch.push(server_signer.clone(), root_msg, commitment.root_sig.clone());

    for (slot, &index) in challenge.indices.iter().enumerate() {
        let Some(item) = response.items.get(slot) else {
            return false;
        };
        let Some(req_item) = request.items.get(index) else {
            return false;
        };
        if item.item_index != index
            || item.inputs.len() != req_item.positions.len()
            || item
                .inputs
                .iter()
                .zip(&req_item.positions)
                .any(|(b, &p)| b.block().index() != p)
        {
            return false;
        }
        for block in &item.inputs {
            let Some(sig) = block.designation_for(auditor.identity()) else {
                return false;
            };
            batch.push(owner.clone(), block.block().signed_message(), sig.clone());
        }
        let values: Vec<u64> = item
            .inputs
            .iter()
            .flat_map(|b| b.block().values())
            .collect();
        if req_item.function.eval(&values) != item.claimed_y {
            return false;
        }
        if commitment.results.get(index) != Some(&item.claimed_y) {
            return false;
        }
        let leaf = leaf_bytes(index, &req_item.positions, item.claimed_y);
        if !item.path.verify(&commitment.root, &leaf, index) {
            return false;
        }
    }
    batch.verify(auditor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sio::{Sio, VerifierCredential};
    use crate::storage::DataBlock;

    struct World {
        user: crate::sio::CloudUser,
        cs: VerifierCredential,
        da: VerifierCredential,
        stored: Vec<SignedBlock>,
        request: ComputationRequest,
    }

    fn world() -> World {
        let sio = Sio::new(b"computation-tests");
        let user = sio.register("alice");
        let cs = sio.register_verifier("cs-01");
        let da = sio.register_verifier("da");
        let blocks: Vec<DataBlock> = (0..12u64)
            .map(|i| DataBlock::from_values(i, &[i, i * i, i + 100]))
            .collect();
        let stored = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
        let request = ComputationRequest::new(vec![
            RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![0, 1, 2],
            },
            RequestItem {
                function: ComputeFunction::Max,
                positions: vec![3, 4],
            },
            RequestItem {
                function: ComputeFunction::Average,
                positions: vec![5, 6, 7],
            },
            RequestItem {
                function: ComputeFunction::WeightedSum(vec![2, 3]),
                positions: vec![8],
            },
            RequestItem {
                function: ComputeFunction::Polynomial(vec![1, 2, 1]),
                positions: vec![9, 10],
            },
            RequestItem {
                function: ComputeFunction::Min,
                positions: vec![11, 0],
            },
        ]);
        World {
            user,
            cs,
            da,
            stored,
            request,
        }
    }

    fn commit(w: &World) -> (Commitment, CommitmentSession) {
        CommitmentSession::commit(
            &w.request,
            |pos| w.stored.get(pos as usize),
            w.cs.signer(),
            w.da.public(),
        )
        .expect("all blocks present")
    }

    #[test]
    fn honest_commitment_passes_full_audit() {
        let w = world();
        let (commitment, session) = commit(&w);
        let mut drbg = HmacDrbg::new(b"challenge");
        let challenge = AuditChallenge::sample(&mut drbg, w.request.len(), 4);
        let response = session.respond(&challenge).unwrap();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert!(outcome.is_valid(), "{outcome:?}");
        assert_eq!(outcome.checked, 4);
        assert!(verify_response_batched(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        ));
    }

    #[test]
    fn parallel_verification_matches_serial() {
        let w = world();
        let (commitment, session) = commit(&w);
        // Honest case over the full challenge…
        let challenge = AuditChallenge::from_indices((0..w.request.len()).collect());
        let response = session.respond(&challenge).unwrap();
        let serial = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        let parallel = verify_response_parallel(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert_eq!(serial, parallel);
        assert!(parallel.is_valid());

        // …and with tampered items, the failure lists must agree exactly.
        let mut bad = response.clone();
        bad.items[1].claimed_y = bad.items[1].claimed_y.wrapping_add(1);
        bad.items[4].inputs[0].tamper_data(b"evil".to_vec());
        let serial = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &bad,
        );
        let parallel = verify_response_parallel(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &bad,
        );
        assert_eq!(serial, parallel);
        assert!(!parallel.is_valid());
        assert_eq!(parallel.failures.len(), 2);
    }

    #[test]
    fn full_challenge_over_every_item() {
        let w = world();
        let (commitment, session) = commit(&w);
        let challenge = AuditChallenge::from_indices((0..w.request.len()).collect());
        let response = session.respond(&challenge).unwrap();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert!(outcome.is_valid());
    }

    #[test]
    fn wrong_result_commitment_is_caught_when_sampled() {
        let w = world();
        // Cheating server: computes item 2 wrong but commits to it.
        let mut inputs = Vec::new();
        let mut results = Vec::new();
        for item in &w.request.items {
            let blocks: Vec<SignedBlock> = item
                .positions
                .iter()
                .map(|&p| w.stored[p as usize].clone())
                .collect();
            let values: Vec<u64> = blocks.iter().flat_map(|b| b.block().values()).collect();
            results.push(item.function.eval(&values));
            inputs.push(blocks);
        }
        results[2] = results[2].wrapping_add(1);
        let session = CommitmentSession::from_results(w.request.clone(), inputs, results);
        let commitment = session.sign_root(w.cs.signer(), w.da.public());

        let challenge = AuditChallenge::from_indices(vec![2]);
        let response = session.respond(&challenge).unwrap();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert!(!outcome.is_valid());
        assert!(matches!(
            outcome.failures[0],
            (2, AuditFailure::WrongResult { .. })
        ));
        // …but an unlucky sample missing item 2 does not catch it:
        let lucky = AuditChallenge::from_indices(vec![0, 1]);
        let response = session.respond(&lucky).unwrap();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &lucky,
            &commitment,
            &response,
        );
        assert!(outcome.is_valid(), "sampling can miss — that is the point");
    }

    #[test]
    fn wrong_position_data_is_caught() {
        let w = world();
        let (commitment, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![1]);
        let mut response = session.respond(&challenge).unwrap();
        // Server substitutes the block at position 5 for position 3.
        response.items[0].inputs[0] = w.stored[5].clone();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert_eq!(outcome.failures, vec![(1, AuditFailure::WrongPositions)]);
    }

    #[test]
    fn relabeled_block_fails_signature_check() {
        let w = world();
        let (commitment, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![1]);
        let mut response = session.respond(&challenge).unwrap();
        // Server relabels position-5 data as position 3 (signature must fail).
        let mut forged = w.stored[5].clone();
        forged.tamper_index(3);
        response.items[0].inputs[0] = forged;
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert_eq!(outcome.failures, vec![(1, AuditFailure::BadSignature)]);
        assert!(!verify_response_batched(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        ));
    }

    #[test]
    fn result_not_in_tree_fails_path_check() {
        let w = world();
        let (commitment, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![0]);
        let mut response = session.respond(&challenge).unwrap();
        // Server claims a different y after the fact; the path can only
        // authenticate the committed leaf. Keep the inputs consistent with
        // the claim by also lying about the computation — then the path
        // check is the one that catches it.
        let lied_y = response.items[0].claimed_y.wrapping_add(1);
        response.items[0].claimed_y = lied_y;
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        // The recompute check fires first (WrongResult) because inputs are
        // genuine.
        assert!(matches!(
            outcome.failures[0],
            (0, AuditFailure::WrongResult { .. })
        ));
    }

    #[test]
    fn root_signature_is_bound_to_request_and_signer() {
        let w = world();
        let (commitment, session) = commit(&w);
        // A different request digest must invalidate Sig(R).
        let other_request = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![0],
        }]);
        let challenge = AuditChallenge::from_indices(vec![0]);
        let response = session.respond(&challenge).unwrap();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &other_request,
            &challenge,
            &commitment,
            &response,
        );
        assert!(!outcome.root_sig_ok);

        // A different claimed signer must also fail.
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.user.public(), // not the CS
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert!(!outcome.root_sig_ok);
    }

    #[test]
    fn missing_and_misordered_items_detected() {
        let w = world();
        let (commitment, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![0, 1]);
        let mut response = session.respond(&challenge).unwrap();
        response.items.swap(0, 1);
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert_eq!(outcome.failures.len(), 2);
        response.items.clear();
        let outcome = verify_response(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &response,
        );
        assert!(outcome
            .failures
            .iter()
            .all(|(_, f)| *f == AuditFailure::Missing));
    }

    #[test]
    fn commit_errors() {
        let w = world();
        let empty = ComputationRequest::default();
        assert_eq!(
            CommitmentSession::commit(&empty, |_| None, w.cs.signer(), w.da.public())
                .err()
                .unwrap(),
            CommitError::EmptyRequest
        );
        let req = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![99],
        }]);
        assert_eq!(
            CommitmentSession::commit(
                &req,
                |pos| w.stored.get(pos as usize),
                w.cs.signer(),
                w.da.public()
            )
            .err()
            .unwrap(),
            CommitError::MissingBlock { position: 99 }
        );
    }

    #[test]
    fn respond_rejects_out_of_range_challenge() {
        let w = world();
        let (_, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![w.request.len()]);
        assert!(session.respond(&challenge).is_none());
    }

    #[test]
    fn compact_response_verifies_and_rejects_tampering() {
        let w = world();
        let (commitment, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![0, 2, 4]);
        let compact = session.respond_compact(&challenge).unwrap();
        let outcome = verify_response_compact(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &compact,
        );
        assert!(outcome.is_valid(), "{outcome:?}");

        // Tampered result: caught by the recompute check.
        let mut bad = compact.clone();
        bad.items[1].claimed_y = bad.items[1].claimed_y.wrapping_add(1);
        let outcome = verify_response_compact(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &bad,
        );
        assert!(matches!(
            outcome.failures[0],
            (2, AuditFailure::WrongResult { .. })
        ));

        // Proof from a different tree: every path fails.
        let other = CommitmentSession::from_results(
            w.request.clone(),
            (0..w.request.len())
                .map(|i| {
                    w.request.items[i]
                        .positions
                        .iter()
                        .map(|&p| w.stored[p as usize].clone())
                        .collect()
                })
                .collect(),
            vec![9; w.request.len()],
        );
        let mut swapped = compact.clone();
        swapped.proof = other.respond_compact(&challenge).unwrap().proof;
        let outcome = verify_response_compact(
            w.da.key(),
            w.user.public(),
            w.cs.signer_public(),
            &w.request,
            &challenge,
            &commitment,
            &swapped,
        );
        assert!(outcome
            .failures
            .iter()
            .all(|(_, f)| *f == AuditFailure::BadPath));
    }

    #[test]
    fn compact_response_agrees_with_full_response() {
        let w = world();
        let (commitment, session) = commit(&w);
        for indices in [
            vec![0],
            vec![1, 3],
            (0..w.request.len()).collect::<Vec<_>>(),
        ] {
            let challenge = AuditChallenge::from_indices(indices);
            let full = session.respond(&challenge).unwrap();
            let compact = session.respond_compact(&challenge).unwrap();
            let o1 = verify_response(
                w.da.key(),
                w.user.public(),
                w.cs.signer_public(),
                &w.request,
                &challenge,
                &commitment,
                &full,
            );
            let o2 = verify_response_compact(
                w.da.key(),
                w.user.public(),
                w.cs.signer_public(),
                &w.request,
                &challenge,
                &commitment,
                &compact,
            );
            assert_eq!(o1.is_valid(), o2.is_valid());
            assert!(o1.is_valid());
        }
    }

    #[test]
    fn compact_response_out_of_range_is_none() {
        let w = world();
        let (_, session) = commit(&w);
        let challenge = AuditChallenge::from_indices(vec![w.request.len()]);
        assert!(session.respond_compact(&challenge).is_none());
    }

    #[test]
    fn compute_functions_reference_values() {
        assert_eq!(ComputeFunction::Sum.eval(&[1, 2, 3]), 6);
        assert_eq!(ComputeFunction::Average.eval(&[1, 2, 3, 4]), 2);
        assert_eq!(ComputeFunction::Average.eval(&[]), 0);
        assert_eq!(ComputeFunction::Max.eval(&[5, 9, 2]), 9);
        assert_eq!(ComputeFunction::Min.eval(&[5, 9, 2]), 2);
        assert_eq!(ComputeFunction::Count.eval(&[7, 7]), 2);
        assert_eq!(
            ComputeFunction::WeightedSum(vec![1, 10]).eval(&[3, 4, 5]),
            3 + 40 + 5
        );
        assert_eq!(ComputeFunction::WeightedSum(vec![]).eval(&[3]), 0);
        // poly(x) = 1 + 2x + x²; at x=2 → 9, x=3 → 16
        assert_eq!(ComputeFunction::Polynomial(vec![1, 2, 1]).eval(&[2, 3]), 25);
        // deviations from mean(1,3)=2: 1+1 = 2
        assert_eq!(ComputeFunction::SumSquaredDeviation.eval(&[1, 3]), 2);
        // Wrapping, not panicking, on overflow.
        let big = ComputeFunction::Sum.eval(&[u64::MAX; 4]);
        assert_eq!(big, 4 * (u64::MAX as u128));
    }

    #[test]
    fn request_digest_is_structure_sensitive() {
        let r1 = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![1, 2],
        }]);
        let r2 = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![2, 1],
        }]);
        let r3 = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Max,
            positions: vec![1, 2],
        }]);
        assert_ne!(r1.digest(), r2.digest());
        assert_ne!(r1.digest(), r3.digest());
        assert_eq!(r1.digest(), r1.clone().digest());
    }
}
