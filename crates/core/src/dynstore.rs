//! Dynamic storage operations — append, update, delete with freshness.
//!
//! The paper's related-work section repeatedly calls out that early PDP
//! schemes "did not consider the dynamic data storage" ([8]) and cites the
//! dynamic constructions of Wang et al. [5] and Erway et al. [15] as the
//! state of the art. This module adds the corresponding extension to
//! SecCloud: blocks carry a **version number** folded into the signed
//! message, the owner keeps a tiny version ledger (`O(1)` per block — the
//! standard lightweight client state), and audits check *freshness*: a
//! server replaying a stale-but-correctly-signed version is caught.

use std::collections::BTreeMap;

use seccloud_ibs::{designate, sign, DesignatedSignature, UserPublic, VerifierKey, VerifierPublic};

use crate::sio::CloudUser;
use crate::storage::DataBlock;

/// A data block bound to a version number, with designated signatures over
/// `index ‖ version ‖ data`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedBlock {
    block: DataBlock,
    version: u64,
    designations: Vec<(String, DesignatedSignature)>,
}

impl VersionedBlock {
    /// The underlying block.
    pub fn block(&self) -> &DataBlock {
        &self.block
    }

    /// The version number (starts at 0, bumped by every update).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The signed byte string: `index ‖ version ‖ data`.
    pub fn signed_message(&self) -> Vec<u8> {
        versioned_message(&self.block, self.version)
    }

    /// Verifies signature validity *and* freshness against the owner's
    /// expected version.
    pub fn verify_fresh(
        &self,
        verifier: &VerifierKey,
        owner: &UserPublic,
        expected_version: u64,
    ) -> Result<(), DynAuditError> {
        if self.version != expected_version {
            return Err(DynAuditError::StaleVersion {
                expected: expected_version,
                got: self.version,
            });
        }
        let sig = self
            .designations
            .iter()
            .find(|(id, _)| id == verifier.identity())
            .map(|(_, s)| s)
            .ok_or(DynAuditError::NotDesignated)?;
        if sig.verify(verifier, owner, &self.signed_message()) {
            Ok(())
        } else {
            Err(DynAuditError::BadSignature)
        }
    }

    /// Mutation hooks for adversarial tests.
    #[doc(hidden)]
    pub fn tamper_version(&mut self, version: u64) {
        self.version = version;
    }
}

fn versioned_message(block: &DataBlock, version: u64) -> Vec<u8> {
    let mut msg = Vec::with_capacity(16 + block.data().len());
    msg.extend_from_slice(&block.index().to_be_bytes());
    msg.extend_from_slice(&version.to_be_bytes());
    msg.extend_from_slice(block.data());
    msg
}

/// Why a dynamic-storage check failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynAuditError {
    /// The served version differs from the owner's ledger (replay or
    /// rollback attack).
    StaleVersion {
        /// What the ledger expects.
        expected: u64,
        /// What the server produced.
        got: u64,
    },
    /// The block is gone although the ledger says it exists.
    Missing,
    /// The block exists although the ledger says it was deleted.
    Resurrected,
    /// The checking verifier is not designated.
    NotDesignated,
    /// The designated signature failed.
    BadSignature,
}

impl std::fmt::Display for DynAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynAuditError::StaleVersion { expected, got } => {
                write!(f, "stale version: expected {expected}, got {got}")
            }
            DynAuditError::Missing => write!(f, "block missing"),
            DynAuditError::Resurrected => write!(f, "deleted block resurfaced"),
            DynAuditError::NotDesignated => write!(f, "verifier not designated"),
            DynAuditError::BadSignature => write!(f, "signature invalid"),
        }
    }
}

impl std::error::Error for DynAuditError {}

/// The owner's constant-size-per-block ledger: current version per live
/// position, tombstones for deletions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OwnerLedger {
    versions: BTreeMap<u64, u64>,
    deleted: BTreeMap<u64, u64>, // position → last version at deletion
}

impl OwnerLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The expected version of a live block, if any.
    pub fn version_of(&self, position: u64) -> Option<u64> {
        self.versions.get(&position).copied()
    }

    /// Whether a position has been deleted.
    pub fn is_deleted(&self, position: u64) -> bool {
        self.deleted.contains_key(&position)
    }

    /// Number of live blocks.
    pub fn live_count(&self) -> usize {
        self.versions.len()
    }

    /// Live positions, ascending.
    pub fn live_positions(&self) -> impl Iterator<Item = u64> + '_ {
        self.versions.keys().copied()
    }
}

/// Owner-side dynamic operations: each returns the freshly signed
/// [`VersionedBlock`] to upload and updates the ledger.
impl CloudUser {
    /// Appends (or re-creates) a block at `position` with version 0 (or the
    /// post-deletion successor version, preventing resurrection of old
    /// signatures).
    pub fn dyn_insert(
        &self,
        ledger: &mut OwnerLedger,
        position: u64,
        data: Vec<u8>,
        verifiers: &[&VerifierPublic],
    ) -> VersionedBlock {
        // If the slot was deleted at version v, the new life starts at v+1
        // so stale pre-deletion signatures can never verify again.
        let version = ledger.deleted.remove(&position).map_or(0, |v| v + 1);
        assert!(
            ledger.versions.insert(position, version).is_none(),
            "position {position} already live — use dyn_update"
        );
        self.sign_versioned(position, version, data, verifiers)
    }

    /// Updates the block at `position`, bumping its version.
    ///
    /// # Panics
    ///
    /// Panics if the position is not live in the ledger.
    pub fn dyn_update(
        &self,
        ledger: &mut OwnerLedger,
        position: u64,
        data: Vec<u8>,
        verifiers: &[&VerifierPublic],
    ) -> VersionedBlock {
        let v = ledger
            .versions
            .get_mut(&position)
            // lint: allow(panic, reason=documented API contract, caller-side misuse of the owner ledger)
            .unwrap_or_else(|| panic!("position {position} is not live"));
        *v += 1;
        let version = *v;
        self.sign_versioned(position, version, data, verifiers)
    }

    /// Deletes the block at `position` (ledger-side tombstone; the server
    /// is instructed to drop it and audits flag any resurrection).
    ///
    /// # Panics
    ///
    /// Panics if the position is not live in the ledger.
    pub fn dyn_delete(&self, ledger: &mut OwnerLedger, position: u64) {
        let v = ledger
            .versions
            .remove(&position)
            // lint: allow(panic, reason=documented API contract, caller-side misuse of the owner ledger)
            .unwrap_or_else(|| panic!("position {position} is not live"));
        ledger.deleted.insert(position, v);
    }

    fn sign_versioned(
        &self,
        position: u64,
        version: u64,
        data: Vec<u8>,
        verifiers: &[&VerifierPublic],
    ) -> VersionedBlock {
        let block = DataBlock::new(position, data);
        let msg = versioned_message(&block, version);
        let mut nonce = Vec::with_capacity(16);
        nonce.extend_from_slice(&position.to_be_bytes());
        nonce.extend_from_slice(&version.to_be_bytes());
        let raw = sign(self.key(), &msg, &nonce);
        VersionedBlock {
            block,
            version,
            designations: verifiers
                .iter()
                .map(|v| (v.identity().to_owned(), designate(&raw, v)))
                .collect(),
        }
    }
}

/// Server-side dynamic store (honest reference implementation).
#[derive(Clone, Debug, Default)]
pub struct DynamicStore {
    blocks: BTreeMap<u64, VersionedBlock>,
}

impl DynamicStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies an insert/update upload.
    pub fn put(&mut self, block: VersionedBlock) {
        self.blocks.insert(block.block().index(), block);
    }

    /// Applies a delete instruction.
    pub fn delete(&mut self, position: u64) -> bool {
        self.blocks.remove(&position).is_some()
    }

    /// Serves a block.
    pub fn get(&self, position: u64) -> Option<&VersionedBlock> {
        self.blocks.get(&position)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Audits a dynamic store against the owner's ledger: every live position
/// must be present, fresh and correctly signed; every tombstoned position
/// must be absent.
///
/// Returns all violations, empty when healthy.
pub fn audit_dynamic(
    verifier: &VerifierKey,
    owner: &UserPublic,
    ledger: &OwnerLedger,
    store: &DynamicStore,
) -> Vec<(u64, DynAuditError)> {
    let mut violations = Vec::new();
    for (pos, &version) in &ledger.versions {
        match store.get(*pos) {
            None => violations.push((*pos, DynAuditError::Missing)),
            Some(block) => {
                if let Err(e) = block.verify_fresh(verifier, owner, version) {
                    violations.push((*pos, e));
                }
            }
        }
    }
    for pos in ledger.deleted.keys() {
        if store.get(*pos).is_some() {
            violations.push((*pos, DynAuditError::Resurrected));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sio::Sio;

    fn setup() -> (
        Sio,
        crate::sio::CloudUser,
        crate::sio::VerifierCredential,
        OwnerLedger,
        DynamicStore,
    ) {
        let sio = Sio::new(b"dynstore-tests");
        let user = sio.register("alice");
        let da = sio.register_verifier("da");
        (sio, user, da, OwnerLedger::new(), DynamicStore::new())
    }

    #[test]
    fn insert_update_delete_lifecycle() {
        let (_, user, da, mut ledger, mut store) = setup();
        store.put(user.dyn_insert(&mut ledger, 0, b"v0".to_vec(), &[da.public()]));
        store.put(user.dyn_insert(&mut ledger, 1, b"other".to_vec(), &[da.public()]));
        assert!(audit_dynamic(da.key(), user.public(), &ledger, &store).is_empty());

        // Update bumps the version; the audit still passes with the new
        // upload applied.
        store.put(user.dyn_update(&mut ledger, 0, b"v1".to_vec(), &[da.public()]));
        assert_eq!(ledger.version_of(0), Some(1));
        assert!(audit_dynamic(da.key(), user.public(), &ledger, &store).is_empty());

        // Delete: server complies, audit passes.
        user.dyn_delete(&mut ledger, 1);
        store.delete(1);
        assert!(audit_dynamic(da.key(), user.public(), &ledger, &store).is_empty());
        assert_eq!(ledger.live_count(), 1);
        assert!(ledger.is_deleted(1));
    }

    #[test]
    fn rollback_attack_is_caught() {
        let (_, user, da, mut ledger, mut store) = setup();
        let v0 = user.dyn_insert(&mut ledger, 7, b"old".to_vec(), &[da.public()]);
        store.put(v0.clone());
        let _v1 = user.dyn_update(&mut ledger, 7, b"new".to_vec(), &[da.public()]);
        // The server "forgets" to apply the update and keeps serving v0 —
        // which is correctly signed! Only the version ledger exposes it.
        let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
        assert_eq!(
            violations,
            vec![(
                7,
                DynAuditError::StaleVersion {
                    expected: 1,
                    got: 0
                }
            )]
        );
    }

    #[test]
    fn deletion_resurrection_is_caught() {
        let (_, user, da, mut ledger, mut store) = setup();
        let v0 = user.dyn_insert(&mut ledger, 3, b"zombie".to_vec(), &[da.public()]);
        store.put(v0);
        user.dyn_delete(&mut ledger, 3);
        // Server refuses to delete.
        let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
        assert_eq!(violations, vec![(3, DynAuditError::Resurrected)]);
    }

    #[test]
    fn silent_drop_is_caught() {
        let (_, user, da, mut ledger, mut store) = setup();
        store.put(user.dyn_insert(&mut ledger, 0, b"keep me".to_vec(), &[da.public()]));
        store.delete(0); // server drops it to save space
        let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
        assert_eq!(violations, vec![(0, DynAuditError::Missing)]);
    }

    #[test]
    fn reinsertion_after_delete_cannot_reuse_old_signatures() {
        let (_, user, da, mut ledger, mut store) = setup();
        let original = user.dyn_insert(&mut ledger, 5, b"life 1".to_vec(), &[da.public()]);
        store.put(original.clone());
        user.dyn_delete(&mut ledger, 5);
        store.delete(5);
        // New life at the same position starts at version 1, not 0.
        let reborn = user.dyn_insert(&mut ledger, 5, b"life 2".to_vec(), &[da.public()]);
        assert_eq!(reborn.version(), 1);
        // A malicious server serving the first-life block is caught as
        // stale even though its signature is valid.
        store.put(original);
        let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
        assert_eq!(
            violations,
            vec![(
                5,
                DynAuditError::StaleVersion {
                    expected: 1,
                    got: 0
                }
            )]
        );
    }

    #[test]
    fn forged_version_field_fails_signature() {
        let (_, user, da, mut ledger, mut store) = setup();
        let mut block = user.dyn_insert(&mut ledger, 2, b"data".to_vec(), &[da.public()]);
        let _ = user.dyn_update(&mut ledger, 2, b"data2".to_vec(), &[da.public()]);
        // Attacker bumps the stale block's version field to match the
        // ledger without a fresh signature.
        block.tamper_version(1);
        store.put(block);
        let violations = audit_dynamic(da.key(), user.public(), &ledger, &store);
        assert_eq!(violations, vec![(2, DynAuditError::BadSignature)]);
    }

    #[test]
    fn non_designated_verifier_cannot_audit() {
        let (sio, user, da, mut ledger, mut store) = setup();
        store.put(user.dyn_insert(&mut ledger, 0, b"x".to_vec(), &[da.public()]));
        let eve = sio.register_verifier("eve");
        let violations = audit_dynamic(eve.key(), user.public(), &ledger, &store);
        assert_eq!(violations, vec![(0, DynAuditError::NotDesignated)]);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn double_insert_panics() {
        let (_, user, da, mut ledger, _) = setup();
        let _ = user.dyn_insert(&mut ledger, 0, b"a".to_vec(), &[da.public()]);
        let _ = user.dyn_insert(&mut ledger, 0, b"b".to_vec(), &[da.public()]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn update_of_missing_position_panics() {
        let (_, user, da, mut ledger, _) = setup();
        let _ = user.dyn_update(&mut ledger, 9, b"x".to_vec(), &[da.public()]);
    }
}
