//! Sharded multi-tenant audits: one resilient pool per registry shard,
//! swept in parallel with per-shard verdicts.
//!
//! The registry (`seccloud-registry`) splits the tenant population into
//! epoch-sharded sets, each with its own Merkle commitment and its own
//! designated verifier. This module is the DA-side driver that audits the
//! whole deployment shard by shard: every shard lane carries its own
//! [`ResilientPool`] and job list, lanes run concurrently over
//! [`seccloud_parallel::parallel_map_mut`], and each lane's outcome folds
//! the presented set commitment check together with its audit verdicts.
//!
//! The fault-isolation contract mirrors the pool layer's: a compromised
//! or stale shard is convicted *per shard* — a forged commitment or a
//! cheating server in shard 3 must never degrade the verdict of a healthy
//! shard 5, and a shard whose servers are merely unreachable is reported
//! as such, not convicted.

use seccloud_cloudsim::rpc::WireTransport;
use seccloud_cloudsim::DesignatedAgency;
use seccloud_core::CloudUser;
use seccloud_registry::{CommitmentCheck, UserRegistry};

use crate::pool::{PoolJob, PoolVerdict, ResilientPool};

/// One shard's audit lane: the pool of that shard's servers, the
/// designated agency and data owner driving the audit, the jobs to run,
/// and the set commitment the shard's servers presented for this epoch.
pub struct ShardLane<T> {
    /// The registry shard this lane audits.
    pub shard: u32,
    /// The shard's resilient endpoint pool.
    pub pool: ResilientPool<T>,
    /// The agency auditing this shard.
    pub da: DesignatedAgency,
    /// The data owner whose blocks the jobs compute over.
    pub owner: CloudUser,
    /// The audit jobs routed across the shard's endpoints.
    pub jobs: Vec<PoolJob>,
    /// The shard commitment bytes presented by the shard's servers,
    /// checked against the registry's own view before any verdict.
    pub presented_commitment: Vec<u8>,
}

impl<T> std::fmt::Debug for ShardLane<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardLane")
            .field("shard", &self.shard)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// A shard's overall health after a sweep.
#[must_use = "an unexamined shard status silently drops a detected compromise"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// Commitment valid, every job answered by its primary, no cheating.
    Clean,
    /// Commitment valid and no cheating, but some job failed over to a
    /// replica or came back unanswered — service-level trouble only.
    Degraded,
    /// Authenticated evidence against the shard: the presented set
    /// commitment failed its check, or an audit pinned wrong results to
    /// a server's signature.
    Compromised,
    /// Nothing could be concluded: every routed job was unreachable.
    Unreachable,
}

/// The per-shard outcome of [`audit_shards`].
#[derive(Debug)]
pub struct ShardOutcome {
    /// The registry shard this outcome describes.
    pub shard: u32,
    /// The verdict on the shard's presented set commitment.
    pub commitment: CommitmentCheck,
    /// The per-job pool verdicts, in job order.
    pub verdicts: Vec<PoolVerdict>,
    /// The folded shard status (see [`ShardStatus`]).
    pub status: ShardStatus,
}

/// Folds a commitment check and a lane's job verdicts into one status.
///
/// Priority order: authenticated evidence (bad commitment or a
/// [`PoolVerdict::Detected`]) convicts the shard outright; otherwise a
/// lane where *nothing* answered is `Unreachable`; otherwise any
/// failover, unanswered job, or a lane with no jobs at all (no evidence
/// of health) is `Degraded`; only a fully answered, fully clean lane
/// with a valid commitment is `Clean`.
pub fn fold_status(commitment: &CommitmentCheck, verdicts: &[PoolVerdict]) -> ShardStatus {
    if !commitment.is_valid() || verdicts.iter().any(PoolVerdict::is_detected) {
        return ShardStatus::Compromised;
    }
    if !verdicts.is_empty() && verdicts.iter().all(|v| !v.answered()) {
        return ShardStatus::Unreachable;
    }
    let all_primary_clean = !verdicts.is_empty()
        && verdicts
            .iter()
            .all(|v| matches!(v, PoolVerdict::Clean { .. }));
    if all_primary_clean {
        ShardStatus::Clean
    } else {
        ShardStatus::Degraded
    }
}

/// Audits every lane against the registry's view of its shard, running
/// lanes in parallel (up to [`seccloud_parallel::num_threads`] workers —
/// each lane owns its pool, agency and jobs, so shards never contend).
///
/// Per lane: the presented commitment is checked against `registry`
/// (stale epochs and cross-shard swaps are classified, not just
/// rejected), the jobs run through [`ResilientPool::audit_many`], and
/// [`fold_status`] combines both into the shard's status. Outcomes come
/// back in lane order.
pub fn audit_shards<T>(
    registry: &UserRegistry,
    lanes: &mut [ShardLane<T>],
    now: u64,
) -> Vec<ShardOutcome>
where
    T: WireTransport + Send,
{
    seccloud_parallel::parallel_map_mut(lanes, |_, lane| {
        let commitment = registry.check_commitment(lane.shard, &lane.presented_commitment);
        let verdicts = lane
            .pool
            .audit_many(&mut lane.da, &lane.owner, &lane.jobs, now);
        let status = fold_status(&commitment, &verdicts);
        ShardOutcome {
            shard: lane.shard,
            commitment,
            verdicts,
            status,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{AuditResolution, RecoveryStats};
    use seccloud_cloudsim::AuditVerdict;
    use seccloud_core::computation::{AuditChallenge, AuditOutcome};

    fn clean_resolution() -> AuditResolution {
        AuditResolution::Clean {
            verdict: AuditVerdict {
                challenge: AuditChallenge {
                    indices: vec![0],
                    nonce: 7,
                },
                outcome: AuditOutcome {
                    root_sig_ok: true,
                    nonce_ok: true,
                    failures: vec![],
                    checked: 1,
                },
                detected: false,
            },
            stats: RecoveryStats::default(),
        }
    }

    fn clean() -> PoolVerdict {
        PoolVerdict::Clean {
            server: 0,
            resolution: clean_resolution(),
        }
    }

    fn degraded() -> PoolVerdict {
        PoolVerdict::Degraded {
            server: 1,
            failed_over: vec![0],
            resolution: clean_resolution(),
        }
    }

    fn unreachable() -> PoolVerdict {
        PoolVerdict::Unreachable {
            attempted: vec![0, 1],
            reason: "test".into(),
        }
    }

    #[test]
    fn status_folding_priorities() {
        let valid = CommitmentCheck::Valid;
        let stale = CommitmentCheck::WrongEpoch { presented: 0 };
        assert_eq!(fold_status(&valid, &[clean(), clean()]), ShardStatus::Clean);
        assert_eq!(
            fold_status(&valid, &[clean(), degraded()]),
            ShardStatus::Degraded
        );
        assert_eq!(
            fold_status(&valid, &[unreachable(), unreachable()]),
            ShardStatus::Unreachable
        );
        assert_eq!(
            fold_status(&valid, &[unreachable(), clean()]),
            ShardStatus::Degraded,
            "a partially reachable shard is degraded, not unreachable"
        );
        // A bad commitment convicts even with clean audits …
        assert_eq!(
            fold_status(&stale, &[clean(), clean()]),
            ShardStatus::Compromised
        );
        // … and even with no jobs at all.
        assert_eq!(fold_status(&stale, &[]), ShardStatus::Compromised);
        // No jobs and a valid commitment proves nothing about servers.
        assert_eq!(fold_status(&valid, &[]), ShardStatus::Degraded);
    }
}
