//! A from-scratch BN254 bilinear pairing.
//!
//! This crate supplies the algebra the SecCloud protocol runs on: the prime
//! fields [`Fp`]/[`Fr`], the tower [`Fp2`]→[`Fp6`]→[`Fp12`], the groups
//! [`G1`] (on `E/Fp : y² = x³ + 3`) and [`G2`] (on the sextic twist), hash-
//! to-curve for both groups, and the reduced Tate [`pairing`].
//!
//! ## Why Type-3 instead of the paper's symmetric pairing
//!
//! The paper (2010) assumed a symmetric (Type-1) Weil/Tate pairing via
//! MIRACL. Type-1 instantiations are obsolete; the standard modern port
//! keeps every protocol equation intact by hashing *user* identities into
//! `G1` and *verifier* identities (cloud server, designated agency) into
//! `G2`, with `ê : G1 × G2 → GT`. See `DESIGN.md` for the substitution
//! table.
//!
//! ## No transcribed constants
//!
//! Montgomery parameters, the `G2` cofactor, Frobenius coefficients and the
//! final-exponentiation exponent are all *derived at runtime* from the BN
//! parameter `x` and the modulus, then cross-checked in tests — see
//! [`params`].
//!
//! # Examples
//!
//! ```
//! use seccloud_pairing::{pairing, Fr, hash_to_g1, hash_to_g2};
//!
//! // Bilinearity: e([a]P, [b]Q) = e(P, Q)^(ab)
//! let p = hash_to_g1(b"P");
//! let q = hash_to_g2(b"Q");
//! let (a, b) = (Fr::from_u64(6), Fr::from_u64(7));
//! let lhs = pairing(&p.mul_fr(&a).to_affine(), &q.mul_fr(&b).to_affine());
//! let rhs = pairing(&p.to_affine(), &q.to_affine()).pow(&a.mul(&b));
//! assert_eq!(lhs, rhs);
//! ```
#![deny(unsafe_code)] // lifted to `allow` for exactly one module: arch/x86_64
#![warn(missing_docs)]

pub mod arch;
mod ate;
pub mod cache;
pub mod ec;
mod fixed_base;
mod fp;
mod fp12;
mod fp2;
mod fp6;
mod fr;
mod g1;
mod g2;
mod glv;
pub mod mont;
mod msm;
mod pairing;
pub mod params;
mod prepared;
pub mod traits;

pub use ate::{multi_pairing_ate, pairing_ate};
pub use cache::PreparedCache;
pub use ec::{Affine, CurveParams, Point};
pub use fixed_base::{g1_generator_mul, g2_generator_mul, FixedBaseTable};
pub use fp::Fp;
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use fr::Fr;
pub use g1::{hash_to_g1, G1Affine, G1Params, G1};
pub use g2::{hash_to_g2, G2Affine, G2Params, G2};
pub use msm::{weighted_fold, WEIGHT_BITS};
pub use pairing::{
    final_exponentiation, multi_pairing, multi_pairing_tate, pairing, pairing_tate, Gt,
};
pub use prepared::{multi_miller_loop, pairing_prepared, G2Prepared};
pub use traits::FieldElement;
