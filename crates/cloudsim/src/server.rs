//! A simulated cloud computing server.

use std::collections::{BTreeMap, HashMap};

use seccloud_core::computation::{
    AuditChallenge, AuditResponse, Commitment, CommitmentSession, ComputationRequest,
};
use seccloud_core::storage::SignedBlock;
use seccloud_core::warrant::{Warrant, WarrantError};
use seccloud_core::{CloudUser, Sio, VerifierCredential};
use seccloud_hash::HmacDrbg;
use seccloud_ibs::{UserPublic, VerifierPublic};

use crate::behavior::{Behavior, StorageAttack};

/// Errors a server can return to its clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// A requested position is not in storage.
    MissingBlock {
        /// The absent position.
        position: u64,
    },
    /// An uploaded block failed authentication at ingest.
    RejectedUpload {
        /// Index of the offending block within the upload.
        slot: usize,
    },
    /// No such computation job.
    UnknownJob,
    /// The audit challenge referenced indices outside the job.
    BadChallenge,
    /// The delegation warrant failed (expired, unbound, forged…).
    Warrant(WarrantError),
    /// The request was empty.
    EmptyRequest,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::MissingBlock { position } => {
                write!(f, "no block stored at position {position}")
            }
            ServerError::RejectedUpload { slot } => {
                write!(f, "upload slot {slot} failed authentication")
            }
            ServerError::UnknownJob => write!(f, "unknown computation job"),
            ServerError::BadChallenge => write!(f, "challenge indices out of range"),
            ServerError::Warrant(e) => write!(f, "warrant rejected: {e}"),
            ServerError::EmptyRequest => write!(f, "computation request is empty"),
        }
    }
}

impl ServerError {
    /// Whether retrying the same call can plausibly succeed.
    ///
    /// Always `false` today: every variant is a deterministic decision the
    /// server makes about a well-formed request (missing data, failed
    /// authentication, an expired warrant), so replaying the request
    /// verbatim returns the same answer. The method exists so the
    /// resilience layer's taxonomy stays total if a load-shedding variant
    /// is ever added.
    pub fn is_transient(&self) -> bool {
        match self {
            ServerError::MissingBlock { .. }
            | ServerError::RejectedUpload { .. }
            | ServerError::UnknownJob
            | ServerError::BadChallenge
            | ServerError::Warrant(_)
            | ServerError::EmptyRequest => false,
        }
    }
}

impl std::error::Error for ServerError {}

/// Handle to a computation job: what a client needs to later audit it.
#[derive(Clone, Debug)]
pub struct JobHandle {
    /// Server-local job id.
    pub job_id: u64,
    /// The request that was executed.
    pub request: ComputationRequest,
    /// The public commitment `{Y, R, Sig(R)}`.
    pub commitment: Commitment,
}

struct Job {
    owner: String,
    request: ComputationRequest,
    session: CommitmentSession,
}

/// A cloud computing server: stores signed blocks per owner, executes
/// computation requests into Merkle commitments, and answers audit
/// challenges — honestly or according to its [`Behavior`].
pub struct CloudServer {
    cred: VerifierCredential,
    behavior: Behavior,
    storage: HashMap<String, BTreeMap<u64, SignedBlock>>,
    jobs: HashMap<u64, Job>,
    next_job: u64,
    drbg: HmacDrbg,
    /// Blocks the privacy-leaker exfiltrates (inspected by [`crate::privacy`]).
    pub(crate) leaked: Vec<(String, SignedBlock)>,
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServer")
            .field("identity", &self.identity())
            .field("behavior", &self.behavior)
            .field("owners", &self.storage.len())
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl CloudServer {
    /// Spins up a server registered with the SIO under `identity`.
    pub fn new(sio: &Sio, identity: &str, behavior: Behavior, seed: &[u8]) -> Self {
        let mut seed_full = seed.to_vec();
        seed_full.extend_from_slice(identity.as_bytes());
        Self {
            cred: sio.register_verifier(identity),
            behavior,
            storage: HashMap::new(),
            jobs: HashMap::new(),
            next_job: 0,
            drbg: HmacDrbg::new(&seed_full),
            leaked: Vec::new(),
        }
    }

    /// The server's identity string.
    pub fn identity(&self) -> &str {
        self.cred.identity()
    }

    /// The server's public verification identity (`Q_CS`), which users
    /// designate their block signatures to.
    pub fn public(&self) -> &VerifierPublic {
        self.cred.public()
    }

    /// The server's public *signing* identity (verifies `Sig(R)`).
    pub fn signer_public(&self) -> &UserPublic {
        self.cred.signer_public()
    }

    /// The behaviour profile.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// Swaps the behaviour (epoch rotation by the Byzantine adversary).
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// Ingests uploaded blocks for `owner`, authenticating each designated
    /// signature first (paper eq. 5: "CSs or DA could checks its validity
    /// of the stored data").
    ///
    /// Storage-cheating servers apply their attack *after* ingest — the
    /// data was valid when it arrived.
    pub fn store(&mut self, owner: &CloudUser, blocks: Vec<SignedBlock>) -> usize {
        self.store_public(owner.public(), blocks)
    }

    /// Ingest path keyed by the owner's *public* identity data — what a
    /// remote server actually has (used by the byte-level [`crate::rpc`]
    /// layer).
    pub fn store_public(&mut self, owner: &UserPublic, blocks: Vec<SignedBlock>) -> usize {
        let mut accepted = 0;
        for mut block in blocks {
            if !block.verify(self.cred.key(), owner) {
                continue;
            }
            if let Behavior::PrivacyLeaker = self.behavior {
                self.leaked
                    .push((owner.identity().to_owned(), block.clone()));
            }
            if let Behavior::StorageCheater { ssc, attack } = &self.behavior {
                if self.drbg.next_f64() >= *ssc {
                    match attack {
                        StorageAttack::Delete => continue, // drop silently
                        StorageAttack::Corrupt => {
                            let garbage = self.drbg.next_bytes(block.block().data().len().max(8));
                            block.tamper_data(garbage);
                        }
                        StorageAttack::WrongPosition => {
                            // Keep the data but file it under a shifted
                            // position, relabelled to look legitimate.
                            let idx = block.block().index();
                            block.tamper_index(idx.wrapping_add(1));
                        }
                    }
                }
            }
            self.storage
                .entry(owner.identity().to_owned())
                .or_default()
                .insert(block.block().index(), block);
            accepted += 1;
        }
        accepted
    }

    /// Serves a stored block (a storage query).
    pub fn retrieve(&self, owner: &str, position: u64) -> Option<&SignedBlock> {
        self.storage.get(owner)?.get(&position)
    }

    /// Number of blocks held for `owner`.
    pub fn stored_count(&self, owner: &str) -> usize {
        self.storage.get(owner).map_or(0, BTreeMap::len)
    }

    /// Executes a computation request `{F, P}` into a signed Merkle
    /// commitment (paper Section V-C-2), honestly or per the behaviour.
    ///
    /// # Errors
    ///
    /// [`ServerError::MissingBlock`] when a requested position is absent
    /// (which a `Delete`-attacking server will eventually hit);
    /// [`ServerError::EmptyRequest`] for empty requests.
    pub fn handle_computation(
        &mut self,
        owner: &String,
        request: &ComputationRequest,
        auditor: &VerifierPublic,
    ) -> Result<JobHandle, ServerError> {
        if request.is_empty() {
            return Err(ServerError::EmptyRequest);
        }
        let store = self.storage.get(owner);
        let mut inputs = Vec::with_capacity(request.len());
        let mut results = Vec::with_capacity(request.len());
        for item in &request.items {
            let mut blocks = Vec::with_capacity(item.positions.len());
            for &pos in &item.positions {
                let block = store
                    .and_then(|s| s.get(&pos))
                    .ok_or(ServerError::MissingBlock { position: pos })?;
                blocks.push(block.clone());
            }
            let values: Vec<u64> = blocks.iter().flat_map(|b| b.block().values()).collect();
            let honest_y = item.function.eval(&values);
            let y = match &self.behavior {
                Behavior::ComputationCheater { csc, guess_range } => {
                    if self.drbg.next_f64() < *csc {
                        honest_y
                    } else {
                        // Skipped sub-task: return a uniform guess from a
                        // range containing the honest value.
                        match guess_range {
                            Some(r) => {
                                let guess = self.drbg.next_below(*r);
                                honest_y
                                    .wrapping_sub(honest_y % (*r as u128))
                                    .wrapping_add(guess as u128)
                            }
                            None => honest_y.wrapping_add(1 + self.drbg.next_u64() as u128),
                        }
                    }
                }
                _ => honest_y,
            };
            results.push(y);
            inputs.push(blocks);
        }
        let session = CommitmentSession::from_results(request.clone(), inputs, results);
        let commitment = session.sign_root(self.cred.signer(), auditor);
        let job_id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            job_id,
            Job {
                owner: owner.clone(),
                request: request.clone(),
                session,
            },
        );
        Ok(JobHandle {
            job_id,
            request: request.clone(),
            commitment,
        })
    }

    /// Answers an audit challenge after validating the delegation warrant
    /// (paper Section V-D step 2: "it first verifies the warrant to check
    /// whether it is expired").
    ///
    /// # Errors
    ///
    /// Warrant failures, unknown jobs and out-of-range challenges are
    /// reported as [`ServerError`]s.
    pub fn handle_audit(
        &self,
        job_id: u64,
        challenge: &AuditChallenge,
        warrant: &Warrant,
        owner: &UserPublic,
        auditor_identity: &str,
        now: u64,
    ) -> Result<AuditResponse, ServerError> {
        let job = self.jobs.get(&job_id).ok_or(ServerError::UnknownJob)?;
        if job.owner != owner.identity() {
            return Err(ServerError::UnknownJob);
        }
        warrant
            .verify(
                self.cred.key(),
                owner,
                auditor_identity,
                &job.request.digest(),
                now,
            )
            .map_err(ServerError::Warrant)?;
        job.session
            .respond(challenge)
            .ok_or(ServerError::BadChallenge)
    }

    /// Test/experiment hook: answers without warrant validation (used by
    /// the Monte-Carlo driver where warrants are out of scope).
    pub fn handle_audit_unwarranted(
        &self,
        job_id: u64,
        challenge: &AuditChallenge,
    ) -> Result<AuditResponse, ServerError> {
        let job = self.jobs.get(&job_id).ok_or(ServerError::UnknownJob)?;
        job.session
            .respond(challenge)
            .ok_or(ServerError::BadChallenge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_core::computation::{ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;

    fn setup(behavior: Behavior) -> (Sio, CloudUser, CloudServer, VerifierCredential) {
        let sio = Sio::new(b"server-tests");
        let user = sio.register("alice");
        let server = CloudServer::new(&sio, "cs-01", behavior, b"seed");
        let da = sio.register_verifier("da");
        (sio, user, server, da)
    }

    fn blocks(n: u64) -> Vec<DataBlock> {
        (0..n)
            .map(|i| DataBlock::from_values(i, &[i, 2 * i]))
            .collect()
    }

    fn request() -> ComputationRequest {
        ComputationRequest::new(vec![
            RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![0, 1],
            },
            RequestItem {
                function: ComputeFunction::Max,
                positions: vec![2, 3],
            },
        ])
    }

    #[test]
    fn honest_server_stores_and_computes() {
        let (_, user, mut server, da) = setup(Behavior::Honest);
        let signed = user.sign_blocks(&blocks(4), &[server.public(), da.public()]);
        assert_eq!(server.store(&user, signed), 4);
        assert_eq!(server.stored_count("alice"), 4);
        let job = server
            .handle_computation(&"alice".to_string(), &request(), da.public())
            .unwrap();
        // Sum of values at blocks 0,1 = (0+0) + (1+2) = 3; Max at 2,3 = 6.
        assert_eq!(job.commitment.results, vec![3, 6]);
    }

    #[test]
    fn forged_uploads_are_rejected_at_ingest() {
        let (sio, user, mut server, da) = setup(Behavior::Honest);
        let mut signed = user.sign_blocks(&blocks(2), &[server.public(), da.public()]);
        signed[1].tamper_data(b"evil".to_vec());
        assert_eq!(server.store(&user, signed), 1);
        // Blocks signed only for another server are also rejected.
        let other = sio.register_verifier("cs-02");
        let foreign = user.sign_blocks(&blocks(1), &[other.public()]);
        assert_eq!(server.store(&user, foreign), 0);
    }

    #[test]
    fn deleting_cheater_loses_blocks() {
        let (_, user, mut server, da) = setup(Behavior::StorageCheater {
            ssc: 0.0,
            attack: StorageAttack::Delete,
        });
        let signed = user.sign_blocks(&blocks(6), &[server.public(), da.public()]);
        server.store(&user, signed);
        assert_eq!(server.stored_count("alice"), 0);
        let err = server
            .handle_computation(&"alice".to_string(), &request(), da.public())
            .unwrap_err();
        assert!(matches!(err, ServerError::MissingBlock { .. }));
    }

    #[test]
    fn corrupting_cheater_keeps_invalid_blocks() {
        let (_, user, mut server, da) = setup(Behavior::StorageCheater {
            ssc: 0.0,
            attack: StorageAttack::Corrupt,
        });
        let signed = user.sign_blocks(&blocks(3), &[server.public(), da.public()]);
        server.store(&user, signed);
        assert_eq!(server.stored_count("alice"), 3);
        // Every stored block now fails authentication.
        let da_cred = da;
        for pos in 0..3 {
            let b = server.retrieve("alice", pos).unwrap();
            assert!(!b.verify(da_cred.key(), user.public()));
        }
    }

    #[test]
    fn missing_position_error() {
        let (_, user, mut server, da) = setup(Behavior::Honest);
        let signed = user.sign_blocks(&blocks(2), &[server.public(), da.public()]);
        server.store(&user, signed);
        let req = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![7],
        }]);
        assert_eq!(
            server
                .handle_computation(&"alice".to_string(), &req, da.public())
                .unwrap_err(),
            ServerError::MissingBlock { position: 7 }
        );
    }

    #[test]
    fn unknown_job_and_bad_challenge() {
        let (_, user, mut server, da) = setup(Behavior::Honest);
        let signed = user.sign_blocks(&blocks(4), &[server.public(), da.public()]);
        server.store(&user, signed);
        let job = server
            .handle_computation(&"alice".to_string(), &request(), da.public())
            .unwrap();
        assert_eq!(
            server
                .handle_audit_unwarranted(99, &AuditChallenge::from_indices(vec![0]))
                .unwrap_err(),
            ServerError::UnknownJob
        );
        assert_eq!(
            server
                .handle_audit_unwarranted(job.job_id, &AuditChallenge::from_indices(vec![5]))
                .unwrap_err(),
            ServerError::BadChallenge
        );
    }

    #[test]
    fn computation_cheater_with_zero_csc_always_lies() {
        let (_, user, mut server, da) = setup(Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        });
        let signed = user.sign_blocks(&blocks(4), &[server.public(), da.public()]);
        server.store(&user, signed);
        let job = server
            .handle_computation(&"alice".to_string(), &request(), da.public())
            .unwrap();
        assert_ne!(job.commitment.results, vec![3, 6], "results must be lies");
    }

    #[test]
    fn privacy_leaker_exfiltrates_but_serves_honestly() {
        let (_, user, mut server, da) = setup(Behavior::PrivacyLeaker);
        let signed = user.sign_blocks(&blocks(3), &[server.public(), da.public()]);
        server.store(&user, signed);
        assert_eq!(server.leaked.len(), 3);
        let job = server.handle_computation(&"alice".to_string(), &request(), da.public());
        // Positions 2..4 partly missing (only 3 blocks) — build a valid req:
        let req = ComputationRequest::new(vec![RequestItem {
            function: ComputeFunction::Sum,
            positions: vec![0, 1, 2],
        }]);
        let _ = job; // original request referenced position 3
        let job = server
            .handle_computation(&"alice".to_string(), &req, da.public())
            .unwrap();
        assert_eq!(job.commitment.results.len(), 1);
    }
}
