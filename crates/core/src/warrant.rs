//! Delegation warrants (paper Section V-D).
//!
//! To delegate auditing to the DA, the user sends `{F, P, Y}` together with
//! "a warrant include the identity of the delegatee and the expired time".
//! The cloud server checks the warrant before answering audit challenges.

use seccloud_ibs::{designate, sign, DesignatedSignature, UserPublic, VerifierKey, VerifierPublic};

use crate::sio::CloudUser;

/// A signed delegation of audit rights, bound to a specific computation
/// request and valid until an expiry instant (logical time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warrant {
    delegator: String,
    delegatee: String,
    expires_at: u64,
    request_digest: [u8; 32],
    designations: Vec<(String, DesignatedSignature)>,
}

/// Why a warrant was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarrantError {
    /// The warrant's expiry instant is in the past.
    Expired,
    /// The warrant names a different delegatee.
    WrongDelegatee,
    /// The warrant is bound to a different computation request.
    WrongRequest,
    /// The checking verifier is not among the designated parties.
    NotDesignated,
    /// The designated signature failed to verify.
    BadSignature,
}

impl std::fmt::Display for WarrantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            WarrantError::Expired => "warrant expired",
            WarrantError::WrongDelegatee => "warrant names a different delegatee",
            WarrantError::WrongRequest => "warrant bound to a different request",
            WarrantError::NotDesignated => "verifier is not designated on this warrant",
            WarrantError::BadSignature => "warrant signature invalid",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WarrantError {}

impl Warrant {
    /// Issues a warrant delegating audits of the request identified by
    /// `request_digest` to `delegatee`, verifiable by each of `verifiers`
    /// (typically the CS that will answer challenges and the DA itself).
    pub fn issue(
        user: &CloudUser,
        delegatee: &str,
        expires_at: u64,
        request_digest: [u8; 32],
        verifiers: &[&VerifierPublic],
    ) -> Self {
        let mut w = Self {
            delegator: user.identity().to_owned(),
            delegatee: delegatee.to_owned(),
            expires_at,
            request_digest,
            designations: Vec::new(),
        };
        let raw = sign(user.key(), &w.message(), b"warrant");
        w.designations = verifiers
            .iter()
            .map(|v| (v.identity().to_owned(), designate(&raw, v)))
            .collect();
        w
    }

    fn message(&self) -> Vec<u8> {
        let mut m = Vec::new();
        m.extend_from_slice(b"seccloud/warrant");
        m.extend_from_slice(&(self.delegator.len() as u64).to_be_bytes());
        m.extend_from_slice(self.delegator.as_bytes());
        m.extend_from_slice(&(self.delegatee.len() as u64).to_be_bytes());
        m.extend_from_slice(self.delegatee.as_bytes());
        m.extend_from_slice(&self.expires_at.to_be_bytes());
        m.extend_from_slice(&self.request_digest);
        m
    }

    /// The delegating user's identity.
    pub fn delegator(&self) -> &str {
        &self.delegator
    }

    /// The delegatee (normally the DA) identity.
    pub fn delegatee(&self) -> &str {
        &self.delegatee
    }

    /// Expiry instant (logical time).
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// Full validation: designated-signature check plus the semantic checks
    /// the cloud server runs when receiving an audit challenge ("it first
    /// verifies the warrant to check whether it is expired").
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`WarrantError`].
    pub fn verify(
        &self,
        verifier: &VerifierKey,
        owner: &UserPublic,
        expected_delegatee: &str,
        expected_request_digest: &[u8; 32],
        now: u64,
    ) -> Result<(), WarrantError> {
        if now >= self.expires_at {
            return Err(WarrantError::Expired);
        }
        if self.delegatee != expected_delegatee {
            return Err(WarrantError::WrongDelegatee);
        }
        if !seccloud_hash::ct_eq(&self.request_digest, expected_request_digest) {
            return Err(WarrantError::WrongRequest);
        }
        let sig = self
            .designations
            .iter()
            .find(|(id, _)| id == verifier.identity())
            .map(|(_, s)| s)
            .ok_or(WarrantError::NotDesignated)?;
        if !sig.verify(verifier, owner, &self.message()) {
            return Err(WarrantError::BadSignature);
        }
        Ok(())
    }

    /// Mutation hook for adversarial tests.
    #[doc(hidden)]
    pub fn tamper_expiry(&mut self, expires_at: u64) {
        self.expires_at = expires_at;
    }

    /// The bound request digest.
    pub fn request_digest(&self) -> &[u8; 32] {
        &self.request_digest
    }

    /// The `(verifier identity, designated signature)` pairs carried by the
    /// warrant.
    pub fn designations(&self) -> impl Iterator<Item = (&str, &DesignatedSignature)> {
        self.designations.iter().map(|(id, s)| (id.as_str(), s))
    }

    /// Rebuilds a warrant from serialized parts; validity is established by
    /// [`Warrant::verify`], not construction.
    pub fn from_parts(
        delegator: String,
        delegatee: String,
        expires_at: u64,
        request_digest: [u8; 32],
        designations: Vec<(String, DesignatedSignature)>,
    ) -> Self {
        Self {
            delegator,
            delegatee,
            expires_at,
            request_digest,
            designations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sio::Sio;

    fn setup() -> (
        Sio,
        CloudUser,
        crate::sio::VerifierCredential,
        crate::sio::VerifierCredential,
    ) {
        let sio = Sio::new(b"warrant-tests");
        let user = sio.register("alice");
        let cs = sio.register_verifier("cs-01");
        let da = sio.register_verifier("da");
        (sio, user, cs, da)
    }

    #[test]
    fn valid_warrant_passes_both_designees() {
        let (_, user, cs, da) = setup();
        let digest = [7u8; 32];
        let w = Warrant::issue(&user, "da", 100, digest, &[cs.public(), da.public()]);
        assert!(w.verify(cs.key(), user.public(), "da", &digest, 50).is_ok());
        assert!(w.verify(da.key(), user.public(), "da", &digest, 99).is_ok());
    }

    #[test]
    fn expiry_is_enforced() {
        let (_, user, cs, _) = setup();
        let digest = [0u8; 32];
        let w = Warrant::issue(&user, "da", 100, digest, &[cs.public()]);
        assert_eq!(
            w.verify(cs.key(), user.public(), "da", &digest, 100),
            Err(WarrantError::Expired)
        );
        assert_eq!(
            w.verify(cs.key(), user.public(), "da", &digest, 1_000),
            Err(WarrantError::Expired)
        );
    }

    #[test]
    fn delegatee_and_request_binding() {
        let (_, user, cs, _) = setup();
        let digest = [1u8; 32];
        let w = Warrant::issue(&user, "da", 100, digest, &[cs.public()]);
        assert_eq!(
            w.verify(cs.key(), user.public(), "eve", &digest, 10),
            Err(WarrantError::WrongDelegatee)
        );
        assert_eq!(
            w.verify(cs.key(), user.public(), "da", &[2u8; 32], 10),
            Err(WarrantError::WrongRequest)
        );
    }

    #[test]
    fn tampered_expiry_breaks_the_signature() {
        let (_, user, cs, _) = setup();
        let digest = [3u8; 32];
        let mut w = Warrant::issue(&user, "da", 100, digest, &[cs.public()]);
        w.tamper_expiry(10_000); // extend validity without re-signing
        assert_eq!(
            w.verify(cs.key(), user.public(), "da", &digest, 500),
            Err(WarrantError::BadSignature)
        );
    }

    #[test]
    fn non_designated_verifier_rejected() {
        let (sio, user, cs, _) = setup();
        let digest = [4u8; 32];
        let w = Warrant::issue(&user, "da", 100, digest, &[cs.public()]);
        let eve = sio.register_verifier("eve");
        assert_eq!(
            w.verify(eve.key(), user.public(), "da", &digest, 10),
            Err(WarrantError::NotDesignated)
        );
    }

    #[test]
    fn warrant_from_wrong_user_rejected() {
        let (sio, user, cs, _) = setup();
        let digest = [5u8; 32];
        let w = Warrant::issue(&user, "da", 100, digest, &[cs.public()]);
        let bob = sio.register("bob");
        assert_eq!(
            w.verify(cs.key(), bob.public(), "da", &digest, 10),
            Err(WarrantError::BadSignature)
        );
    }
}
