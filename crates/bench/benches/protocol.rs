//! Criterion benches for the end-to-end protocol steps: block signing
//! (Protocol II), commitment generation (Protocol III) and the sampling
//! audit (Algorithm 1) at several sampling sizes — including the
//! batch-vs-individual audit ablation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seccloud_core::computation::{
    verify_response, verify_response_batched, AuditChallenge, Commitment, CommitmentSession,
    ComputationRequest, ComputeFunction, RequestItem,
};
use seccloud_core::storage::{DataBlock, SignedBlock};
use seccloud_core::{CloudUser, Sio, VerifierCredential};
use seccloud_hash::HmacDrbg;

struct World {
    user: CloudUser,
    cs: VerifierCredential,
    da: VerifierCredential,
    blocks: Vec<DataBlock>,
    stored: Vec<SignedBlock>,
    request: ComputationRequest,
}

fn world(n_items: usize) -> World {
    let sio = Sio::new(b"protocol-bench");
    let user = sio.register("alice");
    let cs = sio.register_verifier("cs");
    let da = sio.register_verifier("da");
    let blocks: Vec<DataBlock> = (0..n_items as u64)
        .map(|i| DataBlock::from_values(i, &[i, i + 1, i + 2]))
        .collect();
    let stored = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
    let request = ComputationRequest::new(
        (0..n_items as u64)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i],
            })
            .collect(),
    );
    World {
        user,
        cs,
        da,
        blocks,
        stored,
        request,
    }
}

fn commit(w: &World) -> (Commitment, CommitmentSession) {
    CommitmentSession::commit(
        &w.request,
        |pos| w.stored.get(pos as usize),
        w.cs.signer(),
        w.da.public(),
    )
    .expect("blocks present")
}

fn bench_sign_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_sign_blocks");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let w = world(8);
    group.bench_function("sign_8_blocks_2_designees", |b| {
        b.iter(|| w.user.sign_blocks(&w.blocks, &[w.cs.public(), w.da.public()]))
    });
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_commit");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[16usize, 64] {
        let w = world(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| commit(&w))
        });
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_audit");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let w = world(64);
    let (commitment, session) = commit(&w);
    for &t in &[1usize, 8, 15] {
        let mut drbg = HmacDrbg::new(b"challenge");
        let challenge = AuditChallenge::sample(&mut drbg, w.request.len(), t);
        let response = session.respond(&challenge).unwrap();
        group.bench_with_input(BenchmarkId::new("respond", t), &t, |b, _| {
            b.iter(|| session.respond(&challenge).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify_individual", t), &t, |b, _| {
            b.iter(|| {
                let outcome = verify_response(
                    w.da.key(),
                    w.user.public(),
                    w.cs.signer_public(),
                    &w.request,
                    &challenge,
                    &commitment,
                    &response,
                );
                assert!(outcome.is_valid());
            })
        });
        group.bench_with_input(BenchmarkId::new("verify_batched", t), &t, |b, _| {
            b.iter(|| {
                assert!(verify_response_batched(
                    w.da.key(),
                    w.user.public(),
                    w.cs.signer_public(),
                    &w.request,
                    &challenge,
                    &commitment,
                    &response,
                ));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sign_blocks, bench_commit, bench_audit);
criterion_main!(benches);
