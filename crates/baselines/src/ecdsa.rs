//! ECDSA over the BN254 `G1` curve — the `ECDSA` row of Table II.
//!
//! One verification costs two scalar multiplications; like RSA it admits no
//! batch verification, which is what Table II records.

use seccloud_bigint::U256;
use seccloud_hash::{HmacDrbg, Sha256};
use seccloud_pairing::{Fr, G1};

/// An ECDSA signing key.
#[derive(Clone)]
pub struct EcdsaKeyPair {
    d: Fr,
    public: EcdsaPublicKey,
}

impl std::fmt::Debug for EcdsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcdsaKeyPair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// An ECDSA verification key `Q = d·G`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcdsaPublicKey {
    q: G1,
}

/// An ECDSA signature `(r, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcdsaSignature {
    r: Fr,
    s: Fr,
}

/// Hashes a message to the scalar `z`.
fn message_scalar(message: &[u8]) -> Fr {
    let digest = Sha256::digest(message);
    let mut wide = [0u8; 64];
    wide[32..].copy_from_slice(&digest);
    Fr::from_bytes_wide(&wide)
}

/// Maps a curve point's affine `x` coordinate into the scalar field
/// (`r = x mod n` in ECDSA terms).
fn x_scalar(p: &G1) -> Fr {
    let x: U256 = p.to_affine().x().to_u256();
    let mut wide = [0u8; 64];
    wide[32..].copy_from_slice(&x.to_be_bytes());
    Fr::from_bytes_wide(&wide)
}

impl EcdsaKeyPair {
    /// Generates a key pair deterministically from a seed.
    pub fn generate(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::new(seed);
        let d = Fr::random_nonzero(&mut drbg);
        Self {
            public: EcdsaPublicKey {
                q: G1::generator().mul_fr(&d),
            },
            d,
        }
    }

    /// The verification key.
    pub fn public(&self) -> &EcdsaPublicKey {
        &self.public
    }

    /// Signs a message with a deterministic (RFC-6979-style) nonce.
    pub fn sign(&self, message: &[u8]) -> EcdsaSignature {
        let z = message_scalar(message);
        let mut nonce_seed = Vec::new();
        nonce_seed.extend_from_slice(&self.d.to_u256().to_be_bytes());
        nonce_seed.extend_from_slice(&z.to_u256().to_be_bytes());
        let mut drbg = HmacDrbg::new(&nonce_seed);
        loop {
            let k = Fr::random_nonzero(&mut drbg);
            let r = x_scalar(&G1::generator().mul_fr(&k));
            if r.is_zero() {
                continue;
            }
            let k_inv = k.inverse().expect("k ≠ 0");
            let s = k_inv.mul(&z.add(&r.mul(&self.d)));
            if s.is_zero() {
                continue;
            }
            return EcdsaSignature { r, s };
        }
    }
}

impl EcdsaPublicKey {
    /// Verifies a signature: `x([z/s]G + [r/s]Q) ≡ r (mod n)`.
    pub fn verify(&self, message: &[u8], sig: &EcdsaSignature) -> bool {
        if sig.r.is_zero() || sig.s.is_zero() {
            return false;
        }
        let z = message_scalar(message);
        let Some(s_inv) = sig.s.inverse() else {
            return false;
        };
        let u1 = z.mul(&s_inv);
        let u2 = sig.r.mul(&s_inv);
        let point = G1::double_scalar_mul(&G1::generator(), &u1.to_u256(), &self.q, &u2.to_u256());
        if point.is_identity() {
            return false;
        }
        x_scalar(&point) == sig.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let key = EcdsaKeyPair::generate(b"ecdsa-1");
        let sig = key.sign(b"message");
        assert!(key.public().verify(b"message", &sig));
        assert!(!key.public().verify(b"other", &sig));
    }

    #[test]
    fn cross_key_rejection() {
        let k1 = EcdsaKeyPair::generate(b"a");
        let k2 = EcdsaKeyPair::generate(b"b");
        let sig = k1.sign(b"m");
        assert!(!k2.public().verify(b"m", &sig));
    }

    #[test]
    fn signature_component_tampering_detected() {
        let key = EcdsaKeyPair::generate(b"tamper");
        let sig = key.sign(b"m");
        let bad_r = EcdsaSignature {
            r: sig.r.add(&Fr::one()),
            s: sig.s,
        };
        let bad_s = EcdsaSignature {
            r: sig.r,
            s: sig.s.add(&Fr::one()),
        };
        assert!(!key.public().verify(b"m", &bad_r));
        assert!(!key.public().verify(b"m", &bad_s));
    }

    #[test]
    fn zero_components_rejected() {
        let key = EcdsaKeyPair::generate(b"zeros");
        let sig = key.sign(b"m");
        assert!(!key.public().verify(
            b"m",
            &EcdsaSignature {
                r: Fr::zero(),
                s: sig.s
            }
        ));
        assert!(!key.public().verify(
            b"m",
            &EcdsaSignature {
                r: sig.r,
                s: Fr::zero()
            }
        ));
    }

    #[test]
    fn deterministic_nonces_but_message_dependent() {
        let key = EcdsaKeyPair::generate(b"det");
        assert_eq!(key.sign(b"m"), key.sign(b"m"));
        let s1 = key.sign(b"m1");
        let s2 = key.sign(b"m2");
        assert_ne!(s1, s2);
        assert_ne!(s1.r, s2.r, "distinct messages use distinct nonces");
    }

    #[test]
    fn many_messages_round_trip() {
        let key = EcdsaKeyPair::generate(b"bulk");
        for i in 0..10u32 {
            let m = i.to_be_bytes();
            let sig = key.sign(&m);
            assert!(key.public().verify(&m, &sig));
        }
    }
}
