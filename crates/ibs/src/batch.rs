//! Batch verification of designated signatures (paper Section VI),
//! hardened with small-exponent randomization.
//!
//! Given `ℓ` designated signatures `{(Uᵢⱼ, Σᵢⱼ)}` from `k` users, the
//! paper's eq. 8 aggregates
//!
//! ```text
//! Σ_A = Πᵢⱼ Σᵢⱼ                      (GT multiplications)
//! U_A = Σᵢⱼ (Uᵢⱼ + H2(Uᵢⱼ‖mᵢⱼ)·Q_IDᵢ)  (G1 additions)
//! ```
//!
//! and accepts iff `ê(U_A, sk_V) = Σ_A`. That *unweighted* product is
//! not sound on its own: two corruptions whose error terms multiply to
//! one (`Σ₀·e` and `Σ₁·e⁻¹`) cancel inside the aggregate, so the batch
//! accepts a pair of signatures that each fail individually. This
//! verifier therefore draws a fresh random nonzero 64-bit weight `rᵢ`
//! per signature **at verification time** (never before the batch is
//! fixed, so a prover cannot grind against the weights) and checks the
//! standard small-exponent (Bellare–Garay–Rabin) equation
//!
//! ```text
//! ê(Σᵢⱼ rᵢⱼ·(Uᵢⱼ + hᵢⱼ·Q_IDᵢ), sk_V)  =  Πᵢⱼ Σᵢⱼ^{rᵢⱼ}
//! ```
//!
//! A batch containing any invalid signature now survives with
//! probability ≤ 2⁻⁶⁴ per verification attempt, coordinated or not.
//! Individual verification costs one pairing per signature; the batch
//! still costs one pairing total plus the weighted fold, whose marginal
//! per-signature cost is a few `G1`/`GT` group operations via the shared
//! bucket multi-exponentiation in [`seccloud_pairing::weighted_fold`] —
//! the constant-vs-linear gap of Fig. 5 and Table II is preserved.

use seccloud_hash::{entropy_seed, HmacDrbg};
use seccloud_pairing::{pairing_prepared, weighted_fold, Fr, Gt, G1};

use crate::keys::{UserPublic, VerifierKey};
use crate::sign::{challenge_hash, DesignatedSignature};

/// One signature in a batch: the signer, the message, and the designated
/// signature to fold in.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The signer's public identity data.
    pub signer: UserPublic,
    /// The signed message bytes.
    pub message: Vec<u8>,
    /// The designated signature `(U, Σ)`.
    pub signature: DesignatedSignature,
}

/// Draws one nonzero 64-bit batch weight per term, seeded from process
/// entropy. Weights must be unpredictable to whoever assembled the batch
/// — they are drawn here, at verification time, never stored.
pub(crate) fn draw_weights(n: usize) -> Vec<u64> {
    let mut drbg = HmacDrbg::new(&entropy_seed());
    (0..n)
        .map(|_| {
            let r = drbg.next_u64();
            if r == 0 {
                1
            } else {
                r
            }
        })
        .collect()
}

/// An incremental batch verifier ("the signature combination can be
/// performed incrementally", Section VI).
///
/// Each pushed signature retains its *term* `(U + h·Q_ID, Σ)` so the
/// verifier can weight every signature independently at check time; the
/// memory cost is one `G1` point and one `GT` element per pending
/// signature, released when the batch is dropped or drained.
///
/// # Examples
///
/// ```
/// use seccloud_ibs::{designate, sign, BatchVerifier, MasterKey};
///
/// let sio = MasterKey::from_seed(b"batch-doc");
/// let server = sio.extract_verifier("cs");
/// let mut batch = BatchVerifier::new();
/// for (who, msg) in [("alice", b"m1".as_slice()), ("bob", b"m2")] {
///     let user = sio.extract_user(who);
///     let sig = designate(&sign(&user, msg, b"n"), server.public());
///     batch.push(user.public().clone(), msg.to_vec(), sig);
/// }
/// assert!(batch.verify(&server));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BatchVerifier {
    /// One `(U + h·Q_ID, Σ)` term per folded signature, in push order.
    terms: Vec<(G1, Gt)>,
}

impl BatchVerifier {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of signatures folded in so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Folds one signature into the batch (cheap: one `G1` scalar-mul +
    /// addition — no pairing).
    pub fn push(&mut self, signer: UserPublic, message: Vec<u8>, signature: DesignatedSignature) {
        self.push_item(&BatchItem {
            signer,
            message,
            signature,
        });
    }

    /// Folds a [`BatchItem`] by reference.
    pub fn push_item(&mut self, item: &BatchItem) {
        let h: Fr = challenge_hash(item.signature.u(), &item.message);
        let term = item.signature.u().add(&item.signer.q().mul_fr(&h));
        self.terms.push((term, *item.signature.sigma()));
    }

    /// Runs the randomized single-pairing batch check
    /// `ê(Σ rᵢ·termᵢ, sk_V) = Π Σᵢ^{rᵢ}` with fresh weights.
    ///
    /// An empty batch verifies trivially (`1 = 1`).
    pub fn verify(&self, verifier: &VerifierKey) -> bool {
        self.verify_prepared(&verifier.sk_prepared())
    }

    /// The batch check against an explicit prepared key handle (callers
    /// that amortize `sk_V` lookups through a
    /// [`seccloud_pairing::cache::PreparedCache`] — e.g. the sharded epoch
    /// verifier — resolve the handle once and reuse it).
    pub fn verify_prepared(&self, prepared: &seccloud_pairing::G2Prepared) -> bool {
        if self.terms.is_empty() {
            return true;
        }
        let weights = draw_weights(self.terms.len());
        let (u, sigma) = weighted_fold(&self.terms, &weights);
        pairing_prepared(&u.to_affine(), prepared).ct_eq(&sigma)
    }

    /// The retained per-signature terms `[(U + h·Q_ID, Σ)]`, in push
    /// order.
    ///
    /// Exposing the terms lets a higher layer (the sharded registry's
    /// epoch verifier) fold many per-user batches into a *single*
    /// randomized `multi_miller_loop` check while still weighting each
    /// signature independently.
    pub fn terms(&self) -> &[(G1, Gt)] {
        &self.terms
    }

    /// The unweighted aggregate `(U_A, Σ_A)` of paper eq. 8, or `None`
    /// for an empty batch.
    ///
    /// This is the *transport* form — collapsing a sub-batch to one
    /// `(G1, GT)` pair for wire transfer or coarse-grained folding. A
    /// verifier consuming aggregates can only weight per *aggregate*, not
    /// per signature, so whoever produced the aggregate vouches for its
    /// internal consistency; prefer [`Self::terms`] when per-signature
    /// soundness must survive aggregation.
    pub fn aggregate(&self) -> Option<(G1, Gt)> {
        let mut iter = self.terms.iter();
        let (u0, s0) = iter.next()?;
        Some(iter.fold((*u0, *s0), |(u, s), (tu, ts)| (u.add(tu), s.mul(ts))))
    }

    /// Merges another batch into this one (useful when sub-batches are
    /// aggregated concurrently and combined at the end).
    pub fn merge(&mut self, other: &BatchVerifier) {
        self.terms.extend_from_slice(&other.terms);
    }
}

/// Verifies a slice of batch items one by one (the `2ℓ`-pairing baseline the
/// paper compares against; here each check is one pairing since `Σ` is
/// precomputed). Returns the index of the first invalid item, or `None` when
/// all verify.
pub fn verify_individually(items: &[BatchItem], verifier: &VerifierKey) -> Option<usize> {
    items
        .iter()
        .position(|item| !item.signature.verify(verifier, &item.signer, &item.message))
}

/// Parallel variant of [`verify_individually`]: fans the per-item pairing
/// checks out over [`seccloud_parallel::num_threads`] workers. Same result
/// as the serial version for any worker count (each check is independent).
pub fn verify_individually_parallel(items: &[BatchItem], verifier: &VerifierKey) -> Option<usize> {
    // Materialize the prepared key once, before the fan-out, so workers
    // share the cache instead of racing to initialize it.
    let _ = verifier.sk_prepared();
    let outcomes = seccloud_parallel::parallel_map(items, |_, item| {
        item.signature.verify(verifier, &item.signer, &item.message)
    });
    outcomes.iter().position(|ok| !ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MasterKey;
    use crate::sign::{designate, sign};
    use seccloud_pairing::pairing;

    fn make_items(n: usize, users: usize, seed: &str) -> (MasterKey, VerifierKey, Vec<BatchItem>) {
        let m = MasterKey::from_seed(seed.as_bytes());
        let v = m.extract_verifier("cs-batch");
        let items = (0..n)
            .map(|i| {
                let user = m.extract_user(&format!("user-{}", i % users));
                let msg = format!("block-{i}").into_bytes();
                let sig = designate(&sign(&user, &msg, b"n"), v.public());
                BatchItem {
                    signer: user.public().clone(),
                    message: msg,
                    signature: sig,
                }
            })
            .collect();
        (m, v, items)
    }

    #[test]
    fn batch_accepts_valid_multi_user_set() {
        let (_, v, items) = make_items(12, 4, "batch-ok");
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert_eq!(b.len(), 12);
        assert!(b.verify(&v));
        assert_eq!(verify_individually(&items, &v), None);
    }

    #[test]
    fn empty_batch_is_trivially_valid() {
        let m = MasterKey::from_seed(b"empty");
        let v = m.extract_verifier("cs");
        assert!(BatchVerifier::new().verify(&v));
        assert!(BatchVerifier::new().is_empty());
    }

    #[test]
    fn single_item_batch_equals_individual() {
        let (_, v, items) = make_items(1, 1, "single");
        let mut b = BatchVerifier::new();
        b.push_item(&items[0]);
        assert!(b.verify(&v));
    }

    #[test]
    fn one_bad_signature_poisons_the_batch() {
        let (_, v, mut items) = make_items(8, 3, "poison");
        // Corrupt item 5's message after signing.
        items[5].message = b"tampered".to_vec();
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&v));
        assert_eq!(verify_individually(&items, &v), Some(5));
    }

    #[test]
    fn coordinated_cancelling_corruptions_fail() {
        // The attack the unweighted eq.-8 product accepts: scale Σ₀ by a
        // nontrivial error e and Σ₁ by e⁻¹, so the *unweighted* product
        // Π Σᵢ is unchanged while both items fail individually. The
        // randomized weights give the pair Σ₀^{r₀}·Σ₁^{r₁} with r₀ ≠ r₁
        // (w.h.p.), so the errors no longer cancel.
        let (_, v, mut items) = make_items(4, 2, "cancel");
        let e = pairing(&G1::generator().to_affine(), &v.public().q().to_affine());
        let bump = |sig: &DesignatedSignature, factor: &Gt| {
            DesignatedSignature::from_parts(*sig.u(), sig.sigma().mul(factor))
        };
        items[0].signature = bump(&items[0].signature, &e);
        items[1].signature = bump(&items[1].signature, &e.invert());
        // Sanity: both items are individually invalid, and the unweighted
        // aggregate really is unchanged (the cancellation is real).
        assert_eq!(verify_individually(&items, &v), Some(0));
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        let honest = {
            let (_, v2, honest_items) = make_items(4, 2, "cancel");
            assert_eq!(v2.public().q(), v.public().q());
            let mut hb = BatchVerifier::new();
            for item in &honest_items {
                hb.push_item(item);
            }
            hb
        };
        assert_eq!(
            b.aggregate().map(|(_, s)| s),
            honest.aggregate().map(|(_, s)| s),
            "test premise: errors cancel in the unweighted product"
        );
        assert!(!b.verify(&v), "weighted check must catch the coordination");
    }

    #[test]
    fn wrong_verifier_rejects_batch() {
        let (m, _, items) = make_items(4, 2, "wrongv");
        let other = m.extract_verifier("someone-else");
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&other));
    }

    #[test]
    fn merge_equals_sequential_push() {
        let (_, v, items) = make_items(10, 5, "merge");
        let mut whole = BatchVerifier::new();
        for item in &items {
            whole.push_item(item);
        }
        let mut left = BatchVerifier::new();
        let mut right = BatchVerifier::new();
        for item in &items[..4] {
            left.push_item(item);
        }
        for item in &items[4..] {
            right.push_item(item);
        }
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        assert_eq!(left.terms(), whole.terms());
        assert_eq!(left.aggregate(), whole.aggregate());
        assert!(left.verify(&v));
    }

    #[test]
    fn forged_sigma_cannot_pass_even_if_u_adjusted() {
        // An adversary who scales Σ must break the pairing relation.
        let (_, v, mut items) = make_items(3, 1, "forge");
        let bad = items[0].signature.sigma().mul(items[1].signature.sigma());
        items[0].signature =
            crate::sign::DesignatedSignature::from_parts(*items[0].signature.u(), bad);
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&v));
    }

    #[test]
    fn swapped_signatures_between_messages_fail() {
        // Valid signatures attached to the wrong messages must not slip
        // through the aggregate (they cancel only with negligible prob).
        let (_, v, mut items) = make_items(2, 2, "swap");
        let s0 = items[0].signature.clone();
        items[0].signature = items[1].signature.clone();
        items[1].signature = s0;
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&v));
    }

    #[test]
    fn batch_is_order_independent() {
        let (_, v, items) = make_items(6, 3, "order");
        let mut fwd = BatchVerifier::new();
        let mut rev = BatchVerifier::new();
        for item in &items {
            fwd.push_item(item);
        }
        for item in items.iter().rev() {
            rev.push_item(item);
        }
        assert!(fwd.verify(&v) && rev.verify(&v));
        assert_eq!(fwd.aggregate(), rev.aggregate());
    }

    #[test]
    fn identity_scaled_sigma_rejected() {
        // Multiplying Σ by a nontrivial GT element must break verification.
        let (_, v, mut items) = make_items(1, 1, "scale");
        let tweak = pairing(&G1::generator().to_affine(), &v.public().q().to_affine());
        let bad = items[0].signature.sigma().mul(&tweak);
        items[0].signature =
            crate::sign::DesignatedSignature::from_parts(*items[0].signature.u(), bad);
        let mut b = BatchVerifier::new();
        b.push_item(&items[0]);
        assert!(!b.verify(&v));
        let _ = Fr::zero().is_zero(); // keep FieldElement import exercised
    }

    #[test]
    fn drawn_weights_are_nonzero_and_fresh() {
        let a = draw_weights(64);
        let b = draw_weights(64);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&r| r != 0));
        assert_ne!(a, b, "weights must differ across verification attempts");
    }
}
