//! Property suite: cross-user, cross-shard batch verification accepts
//! exactly when every individual signature verifies.
//!
//! Each case draws a random subset of tenants (with repetition), a
//! random number of signatures per tenant, and optionally corrupts one
//! signature in one of three ways — tampered message, tampered `Σ`, or
//! an impostor signer attribution. The fused epoch check
//! (`EpochVerifier`, paper eqs. 8–9) must agree with the one-pairing-
//! per-item baseline (`verify_individually`) on every draw, and when a
//! corruption was injected the baseline must pinpoint exactly the
//! corrupted item. A second suite injects *coordinated pairs* of
//! corruptions whose `Σ` errors multiply to one — the cancellation that
//! defeats an unweighted eq.-8 product — and requires the randomized
//! fused check to reject them wherever the pair lands (same batch, same
//! shard, or across shards). On failure the testkit shrinks the tape
//! toward the minimal failing subset; replay with
//! `SECCLOUD_TESTKIT_SEED`.

use std::sync::Arc;

use seccloud::ibs::{designate, sign, verify_individually, BatchItem, BatchVerifier, MasterKey};
use seccloud::pairing::G2Prepared;
use seccloud::registry::{shard_of, EpochVerifier};
use seccloud::testkit::{forall, Tape};

const SHARDS: u32 = 4;
const EPOCH: u64 = 1;
const POOL: usize = 6;

/// One corruption to inject, all coordinates tape-drawn.
#[derive(Debug, Clone, Copy)]
struct Corruption {
    /// Which user slot's batch carries the bad item.
    slot: usize,
    /// Which of the slot's signatures is corrupted.
    sig: usize,
    /// 0 = tampered message, 1 = tampered `Σ`, 2 = impostor signer.
    mode: u8,
}

/// One generated case: user slots (indices into a fixed tenant pool),
/// per-slot signature counts, and at most one corruption.
#[derive(Debug, Clone)]
struct Case {
    slots: Vec<usize>,
    sigs: Vec<usize>,
    corruption: Option<Corruption>,
}

fn gen_case(t: &mut Tape) -> Case {
    let n_slots = 1 + t.next_below(4) as usize;
    let slots: Vec<usize> = (0..n_slots)
        .map(|_| t.next_below(POOL as u64) as usize)
        .collect();
    let sigs: Vec<usize> = (0..n_slots).map(|_| 1 + t.next_below(3) as usize).collect();
    let corruption = if t.next_bool() {
        let slot = t.next_below(n_slots as u64) as usize;
        Corruption {
            slot,
            sig: t.next_below(sigs[slot] as u64) as usize,
            mode: (t.next_u8() % 3),
        }
        .into()
    } else {
        None
    };
    Case {
        slots,
        sigs,
        corruption,
    }
}

#[test]
fn fused_batch_accepts_iff_every_signature_verifies() {
    let sio = MasterKey::from_seed(b"batch-users-property");
    let users: Vec<_> = (0..POOL)
        .map(|i| sio.extract_user(&format!("tenant-{i}")))
        .collect();
    let impostor = sio.extract_user("impostor");
    let verifiers: Vec<_> = (0..SHARDS)
        .map(|s| sio.extract_verifier(&format!("da/shard-{s}")))
        .collect();
    let keys: Vec<Arc<G2Prepared>> = verifiers.iter().map(|v| v.sk_prepared()).collect();

    forall("batch-users/accept-iff-individuals", gen_case, |case| {
        let mut epoch = EpochVerifier::new(SHARDS, EPOCH);
        // Per-shard item lists for the individual baseline, and where the
        // corrupted item lands: (shard, index within that shard's list).
        let mut per_shard: Vec<Vec<BatchItem>> = vec![Vec::new(); SHARDS as usize];
        let mut corrupted_at: Option<(u32, usize)> = None;

        for (slot, (&user_ix, &n_sigs)) in case.slots.iter().zip(&case.sigs).enumerate() {
            let user = &users[user_ix];
            let shard = shard_of(user.identity(), EPOCH, SHARDS);
            let verifier = &verifiers[shard as usize];
            let mut batch = BatchVerifier::new();
            for j in 0..n_sigs {
                let mut message = format!("case block {slot}/{j}").into_bytes();
                let nonce = format!("nonce {slot}/{j}").into_bytes();
                let mut signature = designate(&sign(user, &message, &nonce), verifier.public());
                let mut signer = user.public().clone();
                if let Some(c) = case.corruption {
                    if c.slot == slot && c.sig == j {
                        match c.mode {
                            0 => message.push(b'!'),
                            1 => {
                                let sigma = signature.sigma().mul(signature.sigma());
                                signature = seccloud::ibs::DesignatedSignature::from_parts(
                                    *signature.u(),
                                    sigma,
                                );
                            }
                            _ => signer = impostor.public().clone(),
                        }
                        corrupted_at = Some((shard, per_shard[shard as usize].len()));
                    }
                }
                let item = BatchItem {
                    signer,
                    message,
                    signature,
                };
                batch.push_item(&item);
                per_shard[shard as usize].push(item);
            }
            epoch.fold(shard, &batch);
        }

        // Individual baseline, shard by shard.
        let mut first_failure: Option<(u32, usize)> = None;
        for (s, items) in per_shard.iter().enumerate() {
            if let Some(ix) = verify_individually(items, &verifiers[s]) {
                first_failure = Some((s as u32, ix));
                break;
            }
        }

        let batch_ok = epoch.verify(&keys);
        let individuals_ok = first_failure.is_none();
        if batch_ok != individuals_ok {
            return Err(format!(
                "fused batch said {batch_ok} but individual baseline said {individuals_ok} \
                 (first failure {first_failure:?})"
            ));
        }
        match (case.corruption, corrupted_at) {
            (Some(_), Some(expected)) => {
                if batch_ok {
                    return Err("a corrupted case passed the fused check".into());
                }
                // Exactly one item was corrupted, so the baseline's first
                // (and only) failure must be precisely that item.
                if first_failure != Some(expected) {
                    return Err(format!(
                        "baseline convicted {first_failure:?}, expected {expected:?}"
                    ));
                }
            }
            (None, _) => {
                if !batch_ok {
                    return Err("an honest case failed the fused check".into());
                }
            }
            (Some(_), None) => return Err("corruption drawn but never applied".into()),
        }
        Ok(())
    });
}

/// A coordinated pair of corruptions: two distinct items (by global
/// position across the whole case) whose `Σ` values are scaled by `e`
/// and `e⁻¹` respectively, so the errors cancel in any unweighted
/// product.
#[derive(Debug, Clone)]
struct CancelCase {
    slots: Vec<usize>,
    sigs: Vec<usize>,
    /// Global index of the item scaled by `e`.
    first: usize,
    /// Global index of the item scaled by `e⁻¹` (≠ `first`).
    second: usize,
}

fn gen_cancel_case(t: &mut Tape) -> CancelCase {
    let n_slots = 2 + t.next_below(3) as usize;
    let slots: Vec<usize> = (0..n_slots)
        .map(|_| t.next_below(POOL as u64) as usize)
        .collect();
    let sigs: Vec<usize> = (0..n_slots).map(|_| 1 + t.next_below(3) as usize).collect();
    let total: usize = sigs.iter().sum();
    let first = t.next_below(total as u64) as usize;
    // Any other position, wrapping past `first`.
    let second = (first + 1 + t.next_below(total as u64 - 1) as usize) % total;
    CancelCase {
        slots,
        sigs,
        first,
        second,
    }
}

#[test]
fn coordinated_cancelling_corruptions_never_pass_the_fused_check() {
    let sio = MasterKey::from_seed(b"batch-users-cancel");
    let users: Vec<_> = (0..POOL)
        .map(|i| sio.extract_user(&format!("tenant-{i}")))
        .collect();
    let verifiers: Vec<_> = (0..SHARDS)
        .map(|s| sio.extract_verifier(&format!("da/shard-{s}")))
        .collect();
    let keys: Vec<Arc<G2Prepared>> = verifiers.iter().map(|v| v.sk_prepared()).collect();
    // A fixed nontrivial GT error term; its inverse cancels it exactly.
    let error = seccloud::pairing::pairing(
        &seccloud::pairing::hash_to_g1(b"cancel-e-p").to_affine(),
        &seccloud::pairing::hash_to_g2(b"cancel-e-q").to_affine(),
    );

    forall(
        "batch-users/coordinated-cancellation",
        gen_cancel_case,
        |case| {
            let mut epoch = EpochVerifier::new(SHARDS, EPOCH);
            let mut per_shard: Vec<Vec<BatchItem>> = vec![Vec::new(); SHARDS as usize];
            let mut global_ix = 0usize;
            let mut applied = 0usize;

            for (slot, (&user_ix, &n_sigs)) in case.slots.iter().zip(&case.sigs).enumerate() {
                let user = &users[user_ix];
                let shard = shard_of(user.identity(), EPOCH, SHARDS);
                let verifier = &verifiers[shard as usize];
                let mut batch = BatchVerifier::new();
                for j in 0..n_sigs {
                    let message = format!("cancel block {slot}/{j}").into_bytes();
                    let nonce = format!("nonce {slot}/{j}").into_bytes();
                    let mut signature = designate(&sign(user, &message, &nonce), verifier.public());
                    let factor = if global_ix == case.first {
                        Some(error)
                    } else if global_ix == case.second {
                        Some(error.invert())
                    } else {
                        None
                    };
                    if let Some(f) = factor {
                        signature = seccloud::ibs::DesignatedSignature::from_parts(
                            *signature.u(),
                            signature.sigma().mul(&f),
                        );
                        applied += 1;
                    }
                    global_ix += 1;
                    let item = BatchItem {
                        signer: user.public().clone(),
                        message,
                        signature,
                    };
                    batch.push_item(&item);
                    per_shard[shard as usize].push(item);
                }
                epoch.fold(shard, &batch);
            }

            if applied != 2 {
                return Err(format!("expected 2 corruptions applied, got {applied}"));
            }
            // Both corrupted items fail individually…
            let individual_failures = per_shard
                .iter()
                .enumerate()
                .filter(|(s, items)| verify_individually(items, &verifiers[*s]).is_some())
                .count();
            if individual_failures == 0 {
                return Err("premise broken: no shard fails individually".into());
            }
            // …so the fused check must reject, even though the two errors
            // multiply to one in the unweighted aggregate.
            if epoch.verify(&keys) {
                return Err(format!(
                    "coordinated cancellation passed the fused check \
                 (items {} and {} of {global_ix})",
                    case.first, case.second
                ));
            }
            Ok(())
        },
    );
}

/// The degenerate subsets: one user, one signature — the smallest
/// honest and corrupted cases, checked explicitly so the boundary does
/// not depend on the random draw.
#[test]
fn single_user_single_signature_boundary() {
    let sio = MasterKey::from_seed(b"batch-users-boundary");
    let user = sio.extract_user("tenant-0");
    let shard = shard_of(user.identity(), EPOCH, SHARDS);
    let verifiers: Vec<_> = (0..SHARDS)
        .map(|s| sio.extract_verifier(&format!("da/shard-{s}")))
        .collect();
    let keys: Vec<Arc<G2Prepared>> = verifiers.iter().map(|v| v.sk_prepared()).collect();

    let sig = designate(&sign(&user, b"m", b"n"), verifiers[shard as usize].public());
    let mut ok = EpochVerifier::new(SHARDS, EPOCH);
    let mut batch = BatchVerifier::new();
    batch.push(user.public().clone(), b"m".to_vec(), sig.clone());
    ok.fold(shard, &batch);
    assert!(ok.verify(&keys));

    let mut bad = EpochVerifier::new(SHARDS, EPOCH);
    let mut batch = BatchVerifier::new();
    batch.push(user.public().clone(), b"tampered".to_vec(), sig);
    bad.fold(shard, &batch);
    assert!(!bad.verify(&keys));
}
