//! Storage-security scenario (paper's Storage-Cheating Model): a hospital
//! archives patient telemetry in the cloud; one server silently corrupts
//! rarely-accessed blocks and another deletes them. The designated agency's
//! storage audit (Protocol II, eq. 5) catches both, and the batch verifier
//! does it with a single pairing.
//!
//! ```text
//! cargo run --release --example storage_audit
//! ```

use seccloud::cloudsim::behavior::{Behavior, StorageAttack};
use seccloud::cloudsim::CloudServer;
use seccloud::core::storage::{audit_blocks, audit_blocks_batched, DataBlock};
use seccloud::core::Sio;

fn main() {
    let sio = Sio::new(b"storage-audit-demo");
    let hospital = sio.register("records@hospital.example");
    let da = sio.register_verifier("da.audit.example");

    // Three servers with different behaviours hold replicas.
    let mut honest = CloudServer::new(&sio, "cs-good", Behavior::Honest, b"s1");
    let mut corrupting = CloudServer::new(
        &sio,
        "cs-bitrot",
        Behavior::StorageCheater {
            ssc: 0.5,
            attack: StorageAttack::Corrupt,
        },
        b"s2",
    );
    let mut deleting = CloudServer::new(
        &sio,
        "cs-cheap",
        Behavior::StorageCheater {
            ssc: 0.5,
            attack: StorageAttack::Delete,
        },
        b"s3",
    );

    let records: Vec<DataBlock> = (0..32u64)
        .map(|i| DataBlock::from_values(i, &[98 + i % 4, 120 + i % 9, 80 + i % 6]))
        .collect();
    for server in [&mut honest, &mut corrupting, &mut deleting] {
        let signed = hospital.sign_blocks(&records, &[server.public(), da.public()]);
        let kept = server.store(&hospital, signed);
        println!("{}: accepted {kept}/32 blocks", server.identity());
    }

    // The DA audits each replica by retrieving every block and verifying
    // its designated signature.
    println!("\n== per-server storage audit (DA key, eq. 5) ==");
    for server in [&honest, &corrupting, &deleting] {
        let retrieved: Vec<_> = (0..32u64)
            .filter_map(|p| server.retrieve(hospital.identity(), p).cloned())
            .collect();
        let missing = 32 - retrieved.len();
        let report = audit_blocks(da.key(), hospital.public(), &retrieved);
        println!(
            "{:>10}: {} retrieved, {} missing, {} corrupted → {}",
            server.identity(),
            retrieved.len(),
            missing,
            report.failed.len(),
            if report.is_valid() && missing == 0 {
                "HEALTHY"
            } else {
                "DAMAGED"
            }
        );

        // Batch verification: one pairing for the whole replica set.
        let batch_ok = audit_blocks_batched(da.key(), hospital.public(), &retrieved);
        assert_eq!(batch_ok, report.is_valid(), "batch agrees with individual");
    }

    // Shape assertions for the demo.
    let honest_blocks: Vec<_> = (0..32u64)
        .filter_map(|p| honest.retrieve(hospital.identity(), p).cloned())
        .collect();
    assert_eq!(honest_blocks.len(), 32);
    assert!(audit_blocks(da.key(), hospital.public(), &honest_blocks).is_valid());

    let damaged: Vec<_> = (0..32u64)
        .filter_map(|p| corrupting.retrieve(hospital.identity(), p).cloned())
        .collect();
    assert!(!audit_blocks(da.key(), hospital.public(), &damaged).is_valid());
    assert!(deleting.stored_count(hospital.identity()) < 32);

    println!("\nThe honest replica passes; corruption and deletion are both exposed.");
}
