//! Fixture: memory-ordering sites without a `// lint: ordering(reason)`
//! justification (rule `atomics`).

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);
static FLAG: AtomicU64 = AtomicU64::new(0);

/// Unjustified Relaxed read-modify-write.
pub fn bump() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Unjustified SeqCst store — even the strongest ordering needs a reason.
pub fn publish(v: u64) {
    FLAG.store(v, Ordering::SeqCst);
}
