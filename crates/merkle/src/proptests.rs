//! Property-based tests over random tree shapes, sample sets and
//! corruption patterns.

use proptest::prelude::*;

use crate::{MerklePath, MerkleTree};

fn arb_data() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_leaf_proves_and_verifies(data in arb_data(), seed in any::<u64>()) {
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let idx = (seed as usize) % data.len();
        let proof = tree.prove(idx).expect("in range");
        prop_assert!(proof.verify(&tree.root(), &data[idx], idx));
        // And never verifies at a different index with the same data.
        let other = (idx + 1) % data.len();
        if other != idx {
            prop_assert!(!proof.verify(&tree.root(), &data[idx], other));
        }
    }

    #[test]
    fn multiproof_verifies_for_random_subsets(
        data in arb_data(),
        mask in any::<u64>(),
    ) {
        let n = data.len();
        let indices: Vec<usize> = (0..n).filter(|i| (mask >> (i % 64)) & 1 == 1).collect();
        prop_assume!(!indices.is_empty());
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let proof = tree.prove_multi(&indices).expect("in range");
        let claims: Vec<(usize, &[u8])> =
            indices.iter().map(|&i| (i, data[i].as_slice())).collect();
        prop_assert!(proof.verify(&tree.root(), &claims));
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        data in arb_data(),
        victim_seed in any::<u64>(),
        byte_seed in any::<u64>(),
    ) {
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let idx = (victim_seed as usize) % data.len();
        let proof = tree.prove(idx).expect("in range");
        let mut corrupted = data[idx].clone();
        if corrupted.is_empty() {
            corrupted.push(1);
        } else {
            let pos = (byte_seed as usize) % corrupted.len();
            corrupted[pos] ^= 1 | ((byte_seed >> 8) as u8 & 0xfe);
        }
        prop_assert!(!proof.verify(&tree.root(), &corrupted, idx));
    }

    #[test]
    fn paths_serialize_through_parts(data in arb_data(), seed in any::<u64>()) {
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let idx = (seed as usize) % data.len();
        let proof = tree.prove(idx).expect("in range");
        let (siblings, leaf_count) = proof.clone().into_parts();
        let rebuilt = MerklePath::from_parts(siblings, leaf_count);
        prop_assert_eq!(&rebuilt, &proof);
        prop_assert!(rebuilt.verify(&tree.root(), &data[idx], idx));
    }

    #[test]
    fn roots_are_injective_over_leaf_count(data in arb_data()) {
        // Dropping the last leaf must change the root (no trivial
        // extension attacks across sizes).
        prop_assume!(data.len() >= 2);
        let full = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let truncated =
            MerkleTree::from_data(data[..data.len() - 1].iter().map(Vec::as_slice));
        prop_assert_ne!(full.root(), truncated.root());
    }
}
