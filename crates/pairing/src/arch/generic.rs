//! The portable fast backend: unrolled schoolbook/CIOS limb arithmetic with
//! branchless reductions, and lazy-reduction `Fp2` kernels that accumulate
//! full 512-bit products and reduce once per output coefficient.
//!
//! ## Lazy-reduction bounds (proved, not assumed)
//!
//! Let `R = 2²⁵⁶` and `p < 2²⁵⁴` (both BN254 moduli satisfy this). The
//! Montgomery reduction [`redc`] of a 512-bit value `T` returns
//! `(T + k·p)/R` for some `k < R`, which is `< T/R + p`. Hence:
//!
//! * plain product: `T = a·b < p²` → result `< p²/R + p < 2p` — one
//!   conditional subtract yields the canonical representative;
//! * `Fp2` real part: `T = a₀b₀ + p² − a₁b₁ ∈ [0, 2p²)` (the `+p²` keeps
//!   the difference non-negative; `≡ a₀b₀ − a₁b₁ (mod p)`) → result
//!   `< 2p²/R + p < 1.5p < 2p` — one conditional subtract;
//! * `Fp2` imag part (Karatsuba): `T = (a₀+a₁)(b₀+b₁) − a₀b₀ − a₁b₁ < 4p²`
//!   with the unreduced sums `a₀+a₁, b₀+b₁ < 2p < R` → `T < 4p² < p·R`
//!   (because `4p < R`) → result `< 4p²/R + p < 2p` — one subtract.
//!
//! Every `T` above is `< p·R < 2²⁵⁵·R`, so the reduction's high half plus
//! its carry bit never overflows 512 bits. All functions return canonical
//! (`< p`) limbs; the unreduced forms live and die inside this module.

use seccloud_bigint::{adc, mac, sbb};

/// `a + b` over 4 limbs, returning the carry-out (callers pass values whose
/// sum fits 257 bits at most; the carry participates in the reduction).
#[inline(always)]
fn add4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (r0, c) = adc(a[0], b[0], 0);
    let (r1, c) = adc(a[1], b[1], c);
    let (r2, c) = adc(a[2], b[2], c);
    let (r3, c) = adc(a[3], b[3], c);
    ([r0, r1, r2, r3], c)
}

/// Branchless select-subtract: returns `r − m` when `hi ≠ 0` or `r ≥ m`,
/// else `r`. Correct for any `r + hi·2²⁵⁶ < 2m`.
#[inline(always)]
fn sub_if_above(r: &[u64; 4], hi: u64, m: &[u64; 4]) -> [u64; 4] {
    let (d0, b) = sbb(r[0], m[0], 0);
    let (d1, b) = sbb(r[1], m[1], b);
    let (d2, b) = sbb(r[2], m[2], b);
    let (d3, b) = sbb(r[3], m[3], b);
    // Take the difference when the subtraction did not underflow (b == 0)
    // or the value overflowed past 2²⁵⁶ (hi ≠ 0, so the true value is ≥ m).
    let take = ((b == 0) as u64) | ((hi != 0) as u64);
    let mask = take.wrapping_neg();
    [
        (d0 & mask) | (r[0] & !mask),
        (d1 & mask) | (r[1] & !mask),
        (d2 & mask) | (r[2] & !mask),
        (d3 & mask) | (r[3] & !mask),
    ]
}

/// Full 256×256 → 512-bit schoolbook product.
#[inline(always)]
pub(super) fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut t = [0u64; 8];
    let mut c;
    // i = 0
    (t[0], c) = mac(0, a[0], b[0], 0);
    (t[1], c) = mac(0, a[0], b[1], c);
    (t[2], c) = mac(0, a[0], b[2], c);
    (t[3], c) = mac(0, a[0], b[3], c);
    t[4] = c;
    // i = 1
    (t[1], c) = mac(t[1], a[1], b[0], 0);
    (t[2], c) = mac(t[2], a[1], b[1], c);
    (t[3], c) = mac(t[3], a[1], b[2], c);
    (t[4], c) = mac(t[4], a[1], b[3], c);
    t[5] = c;
    // i = 2
    (t[2], c) = mac(t[2], a[2], b[0], 0);
    (t[3], c) = mac(t[3], a[2], b[1], c);
    (t[4], c) = mac(t[4], a[2], b[2], c);
    (t[5], c) = mac(t[5], a[2], b[3], c);
    t[6] = c;
    // i = 3
    (t[3], c) = mac(t[3], a[3], b[0], 0);
    (t[4], c) = mac(t[4], a[3], b[1], c);
    (t[5], c) = mac(t[5], a[3], b[2], c);
    (t[6], c) = mac(t[6], a[3], b[3], c);
    t[7] = c;
    t
}

/// 512-bit add (caller guarantees the true sum fits 512 bits).
#[inline(always)]
pub(super) fn wide_add(a: &[u64; 8], b: &[u64; 8]) -> [u64; 8] {
    let mut t = [0u64; 8];
    let mut c = 0;
    let mut i = 0;
    while i < 8 {
        (t[i], c) = adc(a[i], b[i], c);
        i += 1;
    }
    debug_assert_eq!(c, 0, "wide_add overflow — lazy bound violated");
    t
}

/// 512-bit subtract (caller guarantees `a ≥ b`).
#[inline(always)]
pub(super) fn wide_sub(a: &[u64; 8], b: &[u64; 8]) -> [u64; 8] {
    let mut t = [0u64; 8];
    let mut bw = 0;
    let mut i = 0;
    while i < 8 {
        (t[i], bw) = sbb(a[i], b[i], bw);
        i += 1;
    }
    debug_assert_eq!(bw, 0, "wide_sub underflow — lazy bound violated");
    t
}

/// Montgomery reduction of a 512-bit value `T < m·2²⁵⁶` to the canonical
/// residue `T·R⁻¹ mod m` (single branchless conditional subtract — see the
/// module-level bounds proof).
#[inline(always)]
pub(super) fn redc(t: [u64; 8], m: &[u64; 4], inv: u64) -> [u64; 4] {
    let [t0, mut t1, mut t2, mut t3, mut t4, mut t5, mut t6, mut t7] = t;
    let mut carry2 = 0u64;

    let k = t0.wrapping_mul(inv);
    let (_, c) = mac(t0, k, m[0], 0);
    let (r1, c) = mac(t1, k, m[1], c);
    let (r2, c) = mac(t2, k, m[2], c);
    let (r3, c) = mac(t3, k, m[3], c);
    t1 = r1;
    t2 = r2;
    t3 = r3;
    let (r4, c2) = adc(t4, carry2, c);
    t4 = r4;
    carry2 = c2;

    let k = t1.wrapping_mul(inv);
    let (_, c) = mac(t1, k, m[0], 0);
    let (r2, c) = mac(t2, k, m[1], c);
    let (r3, c) = mac(t3, k, m[2], c);
    let (r4, c) = mac(t4, k, m[3], c);
    t2 = r2;
    t3 = r3;
    t4 = r4;
    let (r5, c2) = adc(t5, carry2, c);
    t5 = r5;
    carry2 = c2;

    let k = t2.wrapping_mul(inv);
    let (_, c) = mac(t2, k, m[0], 0);
    let (r3, c) = mac(t3, k, m[1], c);
    let (r4, c) = mac(t4, k, m[2], c);
    let (r5, c) = mac(t5, k, m[3], c);
    t3 = r3;
    t4 = r4;
    t5 = r5;
    let (r6, c2) = adc(t6, carry2, c);
    t6 = r6;
    carry2 = c2;

    let k = t3.wrapping_mul(inv);
    let (_, c) = mac(t3, k, m[0], 0);
    let (r4, c) = mac(t4, k, m[1], c);
    let (r5, c) = mac(t5, k, m[2], c);
    let (r6, c) = mac(t6, k, m[3], c);
    t4 = r4;
    t5 = r5;
    t6 = r6;
    let (r7, c2) = adc(t7, carry2, c);
    t7 = r7;
    carry2 = c2;

    sub_if_above(&[t4, t5, t6, t7], carry2, m)
}

/// Montgomery product `a·b·R⁻¹ mod m` — full product then one reduction.
#[inline]
pub fn mont_mul(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    redc(mul_wide(a, b), m, inv)
}

/// Modular addition on raw limbs with a branchless reduce.
#[inline]
pub fn add_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let (s, carry) = add4(a, b);
    sub_if_above(&s, carry, m)
}

/// Modular subtraction on raw limbs: `a − b`, plus `m` back on underflow.
#[inline]
pub fn sub_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let (d0, bw) = sbb(a[0], b[0], 0);
    let (d1, bw) = sbb(a[1], b[1], bw);
    let (d2, bw) = sbb(a[2], b[2], bw);
    let (d3, bw) = sbb(a[3], b[3], bw);
    let mask = bw.wrapping_neg();
    let (r0, c) = adc(d0, m[0] & mask, 0);
    let (r1, c) = adc(d1, m[1] & mask, c);
    let (r2, c) = adc(d2, m[2] & mask, c);
    let (r3, _) = adc(d3, m[3] & mask, c);
    [r0, r1, r2, r3]
}

/// Modular negation: `m − a`, or zero for zero.
#[inline]
pub fn neg_mod(a: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let nonzero = ((a[0] | a[1] | a[2] | a[3]) != 0) as u64;
    let mask = nonzero.wrapping_neg();
    let (d0, bw) = sbb(m[0] & mask, a[0], 0);
    let (d1, bw) = sbb(m[1] & mask, a[1], bw);
    let (d2, bw) = sbb(m[2] & mask, a[2], bw);
    let (d3, bw) = sbb(m[3] & mask, a[3], bw);
    debug_assert_eq!(bw & nonzero, 0, "neg_mod input must be canonical");
    let _ = bw;
    [d0, d1, d2, d3]
}

/// Lazy-reduction Karatsuba `Fp2` product: three 512-bit products, 512-bit
/// accumulation, and exactly **two** Montgomery reductions (vs three in the
/// strict backend). `m2` must be the 512-bit value `m²`.
#[inline]
pub fn fp2_mul(
    a0: &[u64; 4],
    a1: &[u64; 4],
    b0: &[u64; 4],
    b1: &[u64; 4],
    m: &[u64; 4],
    m2: &[u64; 8],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    let wa = mul_wide(a0, b0); // a₀·b₀ < p²
    let wb = mul_wide(a1, b1); // a₁·b₁ < p²
    let (s1, c1) = add4(a0, a1); // < 2p < 2²⁵⁶
    let (s2, c2) = add4(b0, b1);
    debug_assert_eq!(c1 | c2, 0, "canonical inputs sum below 2²⁵⁶");
    let ws = mul_wide(&s1, &s2); // < 4p² < p·R
                                 // Real part: a₀b₀ − a₁b₁ ≡ wa + p² − wb (non-negative, < 2p²).
    let real = wide_sub(&wide_add(&wa, m2), &wb);
    // Imag part: (a₀+a₁)(b₀+b₁) − a₀b₀ − a₁b₁ (exact, < 4p² < p·R).
    let imag = wide_sub(&wide_sub(&ws, &wa), &wb);
    (redc(real, m, inv), redc(imag, m, inv))
}

/// Lazy `Fp2` square: `(a₀+a₁)(a₀−a₁) + 2a₀a₁·u` with unreduced sums and
/// two Montgomery reductions.
#[inline]
pub fn fp2_sqr(a0: &[u64; 4], a1: &[u64; 4], m: &[u64; 4], inv: u64) -> ([u64; 4], [u64; 4]) {
    let (s, c) = add4(a0, a1); // a₀+a₁ < 2p, kept unreduced
    debug_assert_eq!(c, 0);
    let d = sub_mod(a0, a1, m); // canonical (must not underflow)
    let (a1x2, c) = add4(a1, a1); // 2a₁ < 2p, unreduced
    debug_assert_eq!(c, 0);
    // Products < 2p² < p·R → single-subtract reductions stay sound.
    let c0 = redc(mul_wide(&s, &d), m, inv);
    let c1 = redc(mul_wide(a0, &a1x2), m, inv);
    (c0, c1)
}
