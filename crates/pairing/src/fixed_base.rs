//! Fixed-base scalar multiplication via precomputed window tables.
//!
//! SecCloud multiplies the *group generators* far more often than arbitrary
//! points: every signature, designation and commitment computes `[k]G` for
//! fresh `k` but fixed `G`. For a fixed base the doubling chain of
//! double-and-add can be traded for memory: a [`FixedBaseTable`] stores
//! `d·16^w·B` for every window `w ∈ 0..64` and digit `d ∈ 1..16`, so a full
//! 256-bit multiplication is at most 64 point additions and **zero
//! doublings** — versus ~255 doublings + ~64 additions for
//! [`Point::mul_limbs_wnaf`].
//!
//! The per-generator tables behind [`g1_generator_mul`] and
//! [`g2_generator_mul`] are built once on first use and cached for the
//! process lifetime (≈ 960 points each).

use std::sync::OnceLock;

use seccloud_bigint::U256;

use crate::ec::{CurveParams, Point};
use crate::fr::Fr;
use crate::g1::{G1Params, G1};
use crate::g2::{G2Params, G2};

/// Number of 4-bit windows in a 256-bit scalar.
const WINDOWS: usize = 64;
/// Nonzero digits per window (`1..=15`).
const DIGITS: usize = 15;

/// Precomputed multiples of a fixed base point, indexed by radix-16 digit
/// position.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{FixedBaseTable, Fr, G1};
///
/// let table = FixedBaseTable::new(&G1::generator());
/// let k = Fr::hash(b"scalar");
/// assert_eq!(table.mul_fr(&k), G1::generator().mul_fr(&k));
/// ```
pub struct FixedBaseTable<C: CurveParams> {
    /// `windows[w][d − 1] = d·16^w·B`.
    windows: Vec<[Point<C>; DIGITS]>,
}

impl<C: CurveParams> FixedBaseTable<C> {
    /// Builds the table for `base` (64 windows × 15 points).
    pub fn new(base: &Point<C>) -> Self {
        let mut windows = Vec::with_capacity(WINDOWS);
        let mut pow = *base; // 16^w · B
        for _ in 0..WINDOWS {
            let mut row = [Point::identity(); DIGITS];
            row[0] = pow;
            for d in 1..DIGITS {
                row[d] = row[d - 1].add(&pow);
            }
            pow = row[DIGITS - 1].add(&pow); // 15·16^w·B + 16^w·B
            windows.push(row);
        }
        Self { windows }
    }

    /// `[k]B` by table lookups: one addition per nonzero radix-16 digit.
    pub fn mul_u256(&self, scalar: &U256) -> Point<C> {
        let limbs = scalar.limbs();
        let mut acc = Point::identity();
        for (w, row) in self.windows.iter().enumerate() {
            let digit = (limbs[w / 16] >> (4 * (w % 16))) & 0xf;
            if digit != 0 {
                acc = acc.add(&row[digit as usize - 1]);
            }
        }
        acc
    }

    /// `[k]B` for a scalar-field element.
    pub fn mul_fr(&self, k: &Fr) -> Point<C> {
        self.mul_u256(&k.to_u256())
    }
}

/// `[k]G₁` via the process-wide cached generator table.
pub fn g1_generator_mul(k: &Fr) -> G1 {
    static T: OnceLock<FixedBaseTable<G1Params>> = OnceLock::new();
    T.get_or_init(|| FixedBaseTable::new(&G1::generator()))
        .mul_fr(k)
}

/// `[k]G₂` via the process-wide cached generator table.
pub fn g2_generator_mul(k: &Fr) -> G2 {
    static T: OnceLock<FixedBaseTable<G2Params>> = OnceLock::new();
    T.get_or_init(|| FixedBaseTable::new(&G2::generator()))
        .mul_fr(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::hash_to_g1;

    #[test]
    fn matches_double_and_add_on_generators() {
        for i in 0..8u32 {
            let k = Fr::hash(format!("fb-{i}").as_bytes());
            assert_eq!(g1_generator_mul(&k), G1::generator().mul_fr(&k), "g1 {i}");
            assert_eq!(g2_generator_mul(&k), G2::generator().mul_fr(&k), "g2 {i}");
        }
    }

    #[test]
    fn edge_scalars() {
        assert!(g1_generator_mul(&Fr::zero()).is_identity());
        assert!(g2_generator_mul(&Fr::zero()).is_identity());
        assert_eq!(g1_generator_mul(&Fr::one()), G1::generator());
        let r_minus_1 = Fr::zero().sub(&Fr::one());
        assert_eq!(
            g1_generator_mul(&r_minus_1),
            G1::generator().neg(),
            "[r−1]G = −G"
        );
        // A scalar exercising every window.
        let all_nibbles = U256::from_limbs([u64::MAX; 4]);
        let table = FixedBaseTable::new(&G1::generator());
        assert_eq!(
            table.mul_u256(&all_nibbles),
            G1::generator().mul_u256(&all_nibbles)
        );
    }

    #[test]
    fn arbitrary_base_table() {
        let base = hash_to_g1(b"fb-base");
        let table = FixedBaseTable::new(&base);
        for i in 0..4u32 {
            let k = Fr::hash(format!("fb-arb-{i}").as_bytes());
            assert_eq!(table.mul_fr(&k), base.mul_fr(&k), "sample {i}");
        }
        assert_eq!(table.mul_fr(&Fr::zero()), Point::identity());
    }

    #[test]
    fn identity_base_stays_identity() {
        let table = FixedBaseTable::<G1Params>::new(&G1::identity());
        let k = Fr::hash(b"fb-id");
        assert!(table.mul_fr(&k).is_identity());
    }
}
