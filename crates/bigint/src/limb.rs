//! Single-limb (`u64`) primitives with explicit carry propagation.

/// Adds `a + b + carry`, returning the low 64 bits and the carry out.
///
/// # Examples
///
/// ```
/// use seccloud_bigint::adc;
/// assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
/// assert_eq!(adc(1, 2, 1), (4, 0));
/// ```
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Subtracts `a - b - borrow`, returning the low 64 bits and the borrow out
/// (`1` when the subtraction wrapped, `0` otherwise).
///
/// # Examples
///
/// ```
/// use seccloud_bigint::sbb;
/// assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
/// assert_eq!(sbb(5, 2, 1), (2, 0));
/// ```
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: computes `acc + a * b + carry`, returning the low 64
/// bits and the high 64 bits (the next carry).
///
/// The result never overflows 128 bits because
/// `u64::MAX² + 2·u64::MAX < 2¹²⁸`.
///
/// # Examples
///
/// ```
/// use seccloud_bigint::mac;
/// let (lo, hi) = mac(1, u64::MAX, u64::MAX, 0);
/// assert_eq!((lo, hi), (2, u64::MAX - 1));
/// ```
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (acc as u128) + (a as u128) * (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_propagates_carry_chain() {
        let (lo, c) = adc(u64::MAX, u64::MAX, 1);
        assert_eq!(lo, u64::MAX);
        assert_eq!(c, 1);
    }

    #[test]
    fn sbb_borrow_out_is_binary() {
        let (lo, b) = sbb(0, u64::MAX, 1);
        assert_eq!(lo, 0);
        assert_eq!(b, 1);
        let (_, b) = sbb(10, 3, 0);
        assert_eq!(b, 0);
    }

    #[test]
    fn mac_matches_u128_reference() {
        for &(acc, a, b, c) in &[
            (0u64, 0u64, 0u64, 0u64),
            (u64::MAX, u64::MAX, u64::MAX, u64::MAX),
            (1, 2, 3, 4),
            (0xdead_beef, 0x1234_5678_9abc_def0, 0xfeed_face, 7),
        ] {
            let want = (acc as u128) + (a as u128) * (b as u128) + (c as u128);
            let (lo, hi) = mac(acc, a, b, c);
            assert_eq!(((hi as u128) << 64) | lo as u128, want);
        }
    }
}
