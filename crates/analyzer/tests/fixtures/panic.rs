//! Bad fixture for the `panic` rule: protocol-path code that can abort.
//! Never compiled — lexed by the analyzer self-tests only.

pub fn decode(input: Option<&[u8]>) -> &[u8] {
    input.unwrap()
}

pub fn pick(v: &[u8]) -> u8 {
    let first = v.first().expect("non-empty");
    if *first > 200 {
        panic!("out of range");
    }
    *first
}

pub fn dispatch(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!(),
    }
}
