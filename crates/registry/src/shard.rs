//! Deterministic epoch-dependent shard assignment.

use seccloud_hash::Sha256;

/// Domain prefix for the assignment hash — versioned so a future layout
/// change cannot silently collide with this one.
const DOMAIN: &[u8] = b"seccloud-registry/shard/v1";

/// The shard an identity belongs to in `epoch`, out of `shards` (≥ 1).
///
/// The assignment is a pure function of `(epoch, identity)` so every
/// party computes it locally: `SHA-256(domain ‖ epoch ‖ id)` reduced mod
/// `shards`. Bumping the epoch re-deals the whole population, which is
/// what makes rotation a rebalancing *and* a churn-resistance mechanism
/// (a server that adapted to one epoch's neighbour set loses it at the
/// next rotation).
pub fn shard_of(identity: &str, epoch: u64, shards: u32) -> u32 {
    let shards = shards.max(1);
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(&epoch.to_be_bytes());
    h.update(identity.as_bytes());
    let digest = h.finalize();
    let mut word = [0u8; 8];
    word.copy_from_slice(&digest[..8]);
    // 64-bit reduction over a ≤ 32-bit modulus: bias < 2⁻³².
    (u64::from_be_bytes(word) % u64::from(shards)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        for i in 0..64u32 {
            let id = format!("user-{i}");
            let s = shard_of(&id, 3, 8);
            assert_eq!(s, shard_of(&id, 3, 8));
            assert!(s < 8);
        }
    }

    #[test]
    fn epoch_rotation_redeals_the_population() {
        let moved = (0..256u32)
            .filter(|i| {
                let id = format!("user-{i}");
                shard_of(&id, 0, 16) != shard_of(&id, 1, 16)
            })
            .count();
        // With 16 shards ~15/16 of identities move; anything above half
        // demonstrates the re-deal without being flaky.
        assert!(moved > 128, "only {moved}/256 identities moved");
    }

    #[test]
    fn single_shard_and_zero_shards_clamp() {
        assert_eq!(shard_of("anyone", 7, 1), 0);
        assert_eq!(shard_of("anyone", 7, 0), 0, "0 is clamped to 1 shard");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let shards = 8u32;
        let n = 4096u32;
        let mut counts = vec![0u32; shards as usize];
        for i in 0..n {
            let s = shard_of(&format!("tenant-{i}"), 42, shards);
            if let Some(c) = counts.get_mut(s as usize) {
                *c += 1;
            }
        }
        let expected = n / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "shard {s} holds {c} of {n} (expected ≈ {expected})"
            );
        }
    }
}
