//! Constant-time comparison primitives.
//!
//! Verification paths must not branch on secret-derived bytes: a
//! short-circuiting `==` on an HMAC tag or a Merkle root leaks, through
//! timing, the length of the matching prefix, which is enough for
//! byte-at-a-time tag forgery against a remote verifier. `seccloud-lint`
//! flags such comparisons (rule `ct`); this module provides the
//! replacements.

use crate::hmac_sha256;

/// Compares two byte slices in time independent of their contents.
///
/// Length-strict: slices of different lengths compare unequal, and the
/// comparison still touches every byte of the overlapping prefix so the
/// timing depends only on the input lengths, never on where the first
/// mismatch occurs.
///
/// # Examples
///
/// ```
/// use seccloud_hash::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"abcd"));
/// assert!(ct_eq(b"", b""));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut acc = a.len() ^ b.len();
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= usize::from(x ^ y);
    }
    // Keep the accumulator opaque to the optimizer so the loop above is not
    // rewritten into an early-exit memcmp.
    core::hint::black_box(acc) == 0
}

/// Verifies an HMAC-SHA256 tag in constant time.
///
/// This is the canonical tag-verification entry point: it recomputes
/// `HMAC(key, message)` and compares it to `tag` with [`ct_eq`], so a
/// caller can never accidentally reintroduce a short-circuit comparison.
///
/// # Examples
///
/// ```
/// use seccloud_hash::{hmac_sha256, hmac_verify};
/// let tag = hmac_sha256(b"key", b"message");
/// assert!(hmac_verify(b"key", b"message", &tag));
/// assert!(!hmac_verify(b"key", b"tampered", &tag));
/// ```
pub fn hmac_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices_compare_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"x", b"x"));
        assert!(ct_eq(&[0u8; 32], &[0u8; 32]));
        let d = hmac_sha256(b"k", b"m");
        assert!(ct_eq(&d, &d.clone()));
    }

    #[test]
    fn any_single_bit_flip_breaks_equality() {
        let a = hmac_sha256(b"k", b"m");
        for i in 0..a.len() {
            for bit in 0..8 {
                let mut b = a;
                b[i] ^= 1 << bit;
                assert!(!ct_eq(&a, &b), "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn length_mismatch_is_unequal_even_with_matching_prefix() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abcd", b"abc"));
        assert!(!ct_eq(b"", b"\0"));
        // Zero-padded variants must not collide either.
        assert!(!ct_eq(&[0u8; 31], &[0u8; 32]));
    }

    #[test]
    fn hmac_verify_matches_recomputation() {
        let tag = hmac_sha256(b"key", b"payload");
        assert!(hmac_verify(b"key", b"payload", &tag));
        assert!(!hmac_verify(b"key2", b"payload", &tag));
        assert!(!hmac_verify(b"key", b"payload2", &tag));
        assert!(!hmac_verify(b"key", b"payload", &tag[..31]));
    }
}
