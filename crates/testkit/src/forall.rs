//! A minimal property-test runner with byte-level shrinking.
//!
//! [`forall`] runs a property over values produced by a tape-driven
//! generator. Each case fills a fresh [`Tape`] from a seed-forked
//! [`HmacDrbg`]; on failure the runner shrinks the *tape* (truncating and
//! zeroing byte ranges), re-generating the value after every candidate
//! edit, and reports the minimal failing input together with the seed and
//! case index that reproduce it exactly.
//!
//! Environment knobs:
//!
//! * `SECCLOUD_TESTKIT_CASES` — cases per property (default 200);
//! * `SECCLOUD_TESTKIT_SEED` — base seed (default 0), printed on failure.

use std::panic::{catch_unwind, AssertUnwindSafe};

use seccloud_hash::HmacDrbg;

use crate::tape::Tape;

/// Runner configuration; [`Config::from_env`] reads the standard knobs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases per property.
    pub cases: usize,
    /// Base seed mixed into every case's tape.
    pub seed: u64,
    /// Bytes of tape per case.
    pub tape_len: usize,
    /// Maximum shrink candidates tried after a failure.
    pub max_shrink_iters: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 200,
            seed: 0,
            tape_len: 1024,
            max_shrink_iters: 2_000,
        }
    }
}

impl Config {
    /// Reads `SECCLOUD_TESTKIT_CASES` / `SECCLOUD_TESTKIT_SEED`.
    pub fn from_env() -> Self {
        Self {
            cases: cases_from_env(),
            seed: seed_from_env(),
            ..Self::default()
        }
    }
}

/// The `SECCLOUD_TESTKIT_CASES` knob (default 200).
pub fn cases_from_env() -> usize {
    std::env::var("SECCLOUD_TESTKIT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// The `SECCLOUD_TESTKIT_SEED` knob (default 0).
pub fn seed_from_env() -> u64 {
    std::env::var("SECCLOUD_TESTKIT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// How one property evaluation ended.
enum Eval {
    Pass,
    Fail(String),
}

fn evaluate<T, G, P>(tape_bytes: &[u8], gen: &G, prop: &P) -> Eval
where
    T: std::fmt::Debug,
    G: Fn(&mut Tape) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut tape = Tape::new(tape_bytes.to_vec());
        let value = gen(&mut tape);
        prop(&value)
    }));
    match outcome {
        Ok(Ok(())) => Eval::Pass,
        Ok(Err(msg)) => Eval::Fail(msg),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Eval::Fail(format!("property panicked: {msg}"))
        }
    }
}

/// Shrinks a failing tape: repeatedly tries truncations, zeroed ranges and
/// halved bytes, keeping any edit that still fails the property.
fn shrink<T, G, P>(mut tape: Vec<u8>, gen: &G, prop: &P, budget: usize) -> (Vec<u8>, String)
where
    T: std::fmt::Debug,
    G: Fn(&mut Tape) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut last_msg = match evaluate(&tape, gen, prop) {
        Eval::Fail(m) => m,
        Eval::Pass => unreachable!("shrink called on a passing tape"),
    };
    let mut iters = 0;
    let mut progress = true;
    while progress && iters < budget {
        progress = false;
        // Truncations: aggressive first (half), then chip off the tail.
        let mut candidates: Vec<Vec<u8>> = Vec::new();
        if !tape.is_empty() {
            candidates.push(tape[..tape.len() / 2].to_vec());
            candidates.push(tape[..tape.len() - 1].to_vec());
        }
        // Zero out each quarter of the tape.
        let quarter = (tape.len() / 4).max(1);
        let mut start = 0;
        while start < tape.len() {
            let end = (start + quarter).min(tape.len());
            if tape[start..end].iter().any(|&b| b != 0) {
                let mut c = tape.clone();
                c[start..end].iter_mut().for_each(|b| *b = 0);
                candidates.push(c);
            }
            start = end;
        }
        // Halve every nonzero byte (drives lengths and indices toward 0).
        if tape.iter().any(|&b| b > 1) {
            candidates.push(tape.iter().map(|&b| b / 2).collect());
        }
        for cand in candidates {
            iters += 1;
            if iters > budget {
                break;
            }
            if let Eval::Fail(msg) = evaluate(&cand, gen, prop) {
                tape = cand;
                last_msg = msg;
                progress = true;
                break;
            }
        }
    }
    (tape, last_msg)
}

/// Checks `prop` over `cfg.cases` generated values, shrinking failures.
///
/// # Panics
///
/// Panics with a reproduction report (property name, seed, case index,
/// minimal tape and value) if any case fails.
pub fn forall_with<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Tape) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let mut drbg = HmacDrbg::new(
            format!("seccloud-testkit/{name}/{seed}/{case}", seed = cfg.seed).as_bytes(),
        );
        let tape = Tape::from_drbg(&mut drbg, cfg.tape_len);
        if let Eval::Fail(first_msg) = evaluate(tape.data(), &gen, &prop) {
            let (minimal, msg) = shrink(tape.data().to_vec(), &gen, &prop, cfg.max_shrink_iters);
            let mut t = Tape::new(minimal.clone());
            let value = gen(&mut t);
            panic!(
                "property `{name}` failed\n\
                 seed: {seed} (rerun with SECCLOUD_TESTKIT_SEED={seed})\n\
                 case: {case}/{cases}\n\
                 original failure: {first_msg}\n\
                 minimal failure:  {msg}\n\
                 minimal tape ({len} bytes): {head:?}…\n\
                 minimal value: {value:?}",
                seed = cfg.seed,
                cases = cfg.cases,
                len = minimal.len(),
                head = &minimal[..minimal.len().min(32)],
            );
        }
    }
}

/// [`forall_with`] under [`Config::from_env`].
pub fn forall<T, G, P>(name: &str, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Tape) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    forall_with(name, &Config::from_env(), gen, prop);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 50,
            ..Config::default()
        };
        forall_with("u64-is-u64", &cfg, |t| t.next_u64(), |_| Ok(()));
    }

    #[test]
    fn failing_property_is_caught_and_shrunk() {
        let cfg = Config {
            cases: 50,
            ..Config::default()
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            forall_with(
                "no-large-values",
                &cfg,
                |t| t.next_u64(),
                |v| {
                    if *v < 1_000 {
                        Ok(())
                    } else {
                        Err(format!("{v} too large"))
                    }
                },
            );
        }));
        let msg = match caught {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .expect("string panic payload"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("no-large-values"), "{msg}");
        assert!(msg.contains("SECCLOUD_TESTKIT_SEED=0"), "{msg}");
        assert!(msg.contains("minimal"), "{msg}");
    }

    #[test]
    fn panicking_property_becomes_a_report() {
        let cfg = Config {
            cases: 5,
            ..Config::default()
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            forall_with(
                "prop-panics",
                &cfg,
                |t| t.next_u8(),
                |_| -> Result<(), String> { panic!("boom") },
            );
        }));
        let msg = match caught {
            Err(p) => p.downcast_ref::<String>().cloned().expect("string payload"),
            Ok(()) => panic!("should fail"),
        };
        assert!(msg.contains("property panicked: boom"), "{msg}");
    }

    #[test]
    fn shrinking_reaches_a_boundary_case() {
        // The minimal failing u64 for `v < 1000` should shrink to a small
        // tape whose value is still ≥ 1000 — all-zero bytes except the few
        // needed to stay past the boundary.
        let cfg = Config {
            cases: 10,
            ..Config::default()
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            forall_with(
                "boundary",
                &cfg,
                |t| t.next_u64(),
                |v| {
                    if *v < 1_000 {
                        Ok(())
                    } else {
                        Err("big".into())
                    }
                },
            );
        }));
        assert!(caught.is_err());
    }
}
