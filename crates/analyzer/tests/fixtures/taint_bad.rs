//! Bad fixture for the `taint` rule: a secret scalar laundered through a
//! getter and a helper before reaching format and wire-encode sinks.
//! Never compiled — lexed by the analyzer self-tests only.

// lint: secret
pub struct UserKey {
    sk: u64,
}

impl Drop for UserKey {
    fn drop(&mut self) {}
}

impl UserKey {
    fn scalar(&self) -> u64 {
        self.sk
    }
}

struct Enc;

impl Enc {
    fn put_u64(&mut self, _v: u64) {}
}

fn trace(v: u64) -> String {
    format!("derived {v}")
}

pub fn leak(w: &mut Enc, k: &UserKey) -> String {
    let x = k.scalar();
    w.put_u64(x);
    trace(x)
}
