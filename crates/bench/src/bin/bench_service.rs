//! Writes `BENCH_service.json` — loopback RPC latency histograms and audit
//! success rates over real sockets, with and without the resilience layer,
//! at socket-fault rates of 0% and 20%.
//!
//! Each honest cell spins up a fresh [`NetServer`] over an honest
//! pre-loaded `WireServer`, parks a seeded [`ChaosProxy`] in front of it,
//! and drives dispatch + full-sample audit jobs through a [`NetTransport`]
//! dialing the proxy. The *raw* arm calls the socket transport directly —
//! every surviving fault is a lost audit; the *resilient* arm runs the
//! same jobs through `ResilientTransport` + `run_job_resilient`. Per-job
//! wall-clock latency lands in p50/p99/p999 percentiles (these are real
//! kernel-socket round trips, not virtual time). A final conviction cell
//! repeats the resilient arm against a computation cheater at 20% faults —
//! the number that matters is `convicted_rate: 1.0`: chaos must never
//! launder a cheat.
//!
//! Run with `cargo run --release -p seccloud-bench --bin bench_service`.
//! `--smoke` shrinks the run to CI size; `--out PATH` redirects the JSON
//! (default `BENCH_service.json` in the current directory).
#![forbid(unsafe_code)]

use std::time::Instant;

use seccloud_cloudsim::behavior::Behavior;
// lint: allow(transport, reason=baseline arm of the with/without comparison)
use seccloud_cloudsim::rpc::{audit_over_the_wire, WireServer, WireTransport};
use seccloud_cloudsim::{CloudServer, DesignatedAgency};
use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud_core::storage::DataBlock;
use seccloud_core::wire::WireMessage;
use seccloud_core::{CloudUser, Sio};
use seccloud_net::{
    ChaosAction, ChaosConfig, ChaosProxy, NetClientConfig, NetServer, NetServerConfig, NetTransport,
};
use seccloud_resilience::{run_job_resilient, ResilientTransport, RetryPolicy};

const N_BLOCKS: u64 = 12;
const FAULT_RATES_PCT: [u32; 2] = [0, 20];

struct Params {
    mode: &'static str,
    jobs: usize,
    conviction_jobs: usize,
}

impl Params {
    fn full() -> Self {
        Self {
            mode: "full",
            jobs: 50,
            conviction_jobs: 10,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            jobs: 8,
            conviction_jobs: 3,
        }
    }
}

/// One measured cell of the rate × arm grid.
struct Cell {
    fault_rate_pct: u32,
    arm: &'static str,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    mean_us: f64,
    success_rate: f64,
    faults_injected: usize,
}

fn request(weight: u64) -> ComputationRequest {
    ComputationRequest::new(
        (0..4u64)
            .map(|i| RequestItem {
                function: ComputeFunction::WeightedSum(vec![weight, weight + 1]),
                positions: vec![i % N_BLOCKS],
            })
            .collect(),
    )
}

/// A pre-loaded server behind a `NetServer` + `ChaosProxy` stack. The
/// upload happens before the sockets exist so every cell measures only the
/// dispatch + audit path.
struct ServiceWorld {
    user: CloudUser,
    da: DesignatedAgency,
    server: NetServer,
    proxy: ChaosProxy,
    client: NetTransport,
}

fn world(behavior: Behavior, seed: u64, fault_rate_pct: u32) -> ServiceWorld {
    let sio = Sio::new(b"bench-service");
    let user = sio.register("alice");
    let mut server = CloudServer::new(&sio, "cs", behavior, b"srv");
    let da = DesignatedAgency::new(&sio, "da", b"agency");
    let blocks: Vec<DataBlock> = (0..N_BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i * 7, i + 1]))
        .collect();
    let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
    assert_eq!(server.store(&user, signed), N_BLOCKS as usize);
    let verifier = server.public().clone();
    let signer = server.signer_public().clone();
    // lint: allow(transport, reason=the harness builds the socket stack around the raw byte endpoints)
    let net = NetServer::spawn(WireServer::new(server), NetServerConfig::default())
        .expect("loopback bind");
    let proxy = ChaosProxy::spawn(
        net.addr(),
        ChaosConfig {
            seed,
            fault_rate_pct,
            stall_ms: 20,
        },
    )
    .expect("proxy bind");
    // lint: allow(transport, reason=the socket client is the system under measurement; the resilient arm wraps it)
    let client = NetTransport::new(proxy.addr(), verifier, signer, NetClientConfig::default());
    ServiceWorld {
        user,
        da,
        server: net,
        proxy,
        client,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_us
        .get(idx.min(sorted_us.len() - 1))
        .copied()
        .unwrap_or(0)
}

fn injected_faults(proxy: &ChaosProxy) -> usize {
    proxy
        .plan()
        .iter()
        .filter(|e| e.action != ChaosAction::Deliver)
        .count()
}

fn cell_from(
    fault_rate_pct: u32,
    arm: &'static str,
    mut latencies_us: Vec<u64>,
    ok: usize,
    jobs: usize,
    faults_injected: usize,
) -> Cell {
    latencies_us.sort_unstable();
    let mean = latencies_us.iter().sum::<u64>() as f64 / latencies_us.len().max(1) as f64;
    Cell {
        fault_rate_pct,
        arm,
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        p999_us: percentile(&latencies_us, 99.9),
        mean_us: mean,
        success_rate: ok as f64 / jobs.max(1) as f64,
        faults_injected,
    }
}

/// The baseline: the raw socket transport, one shot per job.
fn raw_arm(fault_rate_pct: u32, seed: u64, jobs: usize) -> Cell {
    let mut w = world(Behavior::Honest, seed, fault_rate_pct);
    let mut latencies = Vec::with_capacity(jobs);
    let mut ok = 0usize;
    for job in 0..jobs {
        let req = request(2 + job as u64);
        let start = Instant::now();
        let outcome = w
            .client
            .rpc_compute(w.user.identity(), w.da.identity(), &req.to_wire())
            .and_then(|(job_id, commitment)| {
                audit_over_the_wire(
                    &mut w.da,
                    &mut w.client,
                    &w.user,
                    &req,
                    job_id,
                    &commitment,
                    req.len(),
                    0,
                )
            });
        latencies.push(start.elapsed().as_micros() as u64);
        if matches!(&outcome, Ok(v) if !v.detected) {
            ok += 1;
        }
    }
    let faults = injected_faults(&w.proxy);
    w.proxy.shutdown();
    w.server.shutdown();
    cell_from(fault_rate_pct, "raw", latencies, ok, jobs, faults)
}

/// The resilient arm: the same jobs through the recovery runtime.
fn resilient_arm(fault_rate_pct: u32, seed: u64, jobs: usize) -> Cell {
    let mut w = world(Behavior::Honest, seed, fault_rate_pct);
    let policy = RetryPolicy {
        max_attempts: 6,
        max_rounds: 6,
        ..RetryPolicy::default()
    };
    let mut transport = ResilientTransport::new(w.client, policy, &seed.to_be_bytes());
    let mut latencies = Vec::with_capacity(jobs);
    let mut ok = 0usize;
    for job in 0..jobs {
        let req = request(2 + job as u64);
        let start = Instant::now();
        let res = run_job_resilient(&mut w.da, &mut transport, &w.user, &req, req.len(), 0);
        latencies.push(start.elapsed().as_micros() as u64);
        if res.is_clean() {
            ok += 1;
        }
    }
    let faults = injected_faults(&w.proxy);
    w.proxy.shutdown();
    w.server.shutdown();
    cell_from(fault_rate_pct, "resilient", latencies, ok, jobs, faults)
}

/// Conviction preservation: a deterministic computation cheater behind the
/// same 20% chaos, audited through the resilient runtime.
fn conviction_rate(seed: u64, jobs: usize) -> f64 {
    let mut w = world(
        Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        },
        seed,
        20,
    );
    let policy = RetryPolicy {
        max_attempts: 6,
        max_rounds: 6,
        ..RetryPolicy::default()
    };
    let mut transport = ResilientTransport::new(w.client, policy, &seed.to_be_bytes());
    let mut convicted = 0usize;
    for job in 0..jobs {
        let req = request(2 + job as u64);
        let res = run_job_resilient(&mut w.da, &mut transport, &w.user, &req, req.len(), 0);
        if matches!(res, seccloud_resilience::AuditResolution::Detected { .. }) {
            convicted += 1;
        }
    }
    w.proxy.shutdown();
    w.server.shutdown();
    convicted as f64 / jobs.max(1) as f64
}

fn main() {
    let mut p = Params::full();
    let mut out_path = "BENCH_service.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => p = Params::smoke(),
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other}"),
        }
    }

    let mut cells = Vec::new();
    for (i, &rate) in FAULT_RATES_PCT.iter().enumerate() {
        let seed = 101 + i as u64;
        let raw = raw_arm(rate, seed, p.jobs);
        let res = resilient_arm(rate, seed, p.jobs);
        println!(
            "rate {rate:>3}%: raw p50 {:>6} µs p99 {:>7} µs ({:>5.1}% ok, {} faults) | \
             resilient p50 {:>6} µs p99 {:>7} µs ({:>5.1}% ok, {} faults)",
            raw.p50_us,
            raw.p99_us,
            raw.success_rate * 100.0,
            raw.faults_injected,
            res.p50_us,
            res.p99_us,
            res.success_rate * 100.0,
            res.faults_injected,
        );
        cells.push(raw);
        cells.push(res);
    }
    let convicted = conviction_rate(211, p.conviction_jobs);
    println!(
        "cheater at 20% faults: convicted on {:.0}% of jobs",
        convicted * 100.0
    );

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"fault_rate_pct\": {}, \"arm\": \"{}\", \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"mean_us\": {:.1}, \"success_rate\": {:.4}, \
             \"faults_injected\": {} }}",
            c.fault_rate_pct,
            c.arm,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.mean_us,
            c.success_rate,
            c.faults_injected,
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"seccloud-bench-service/v1\",\n  \"mode\": \"{}\",\n  \
         \"jobs_per_cell\": {},\n  \"threads\": {},\n  \"cells\": [\n{rows}\n  ],\n  \
         \"conviction\": {{ \"fault_rate_pct\": 20, \"arm\": \"resilient\", \"jobs\": {}, \
         \"convicted_rate\": {:.4} }}\n}}\n",
        p.mode,
        p.jobs,
        seccloud_parallel::num_threads(),
        p.conviction_jobs,
        convicted,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    println!("\nwrote {out_path} ({} cells)", cells.len());
}
