//! Best-effort process entropy for verifier-side randomness.
//!
//! Small-exponent batch verification needs weights the *prover cannot
//! predict* — they must be drawn by the verifier after the batch is
//! submitted, so a deterministic seed (or one an adversary can replay)
//! would let coordinated corruptions be ground against the weights.
//!
//! [`entropy_seed`] gathers what the platform offers without any
//! dependency or `unsafe`: the OS CSPRNG via `/dev/urandom` where
//! readable, mixed with the wall clock and a process-local counter so
//! repeated calls never collide even if the OS source is unavailable
//! (then the seed is merely unpredictable to *remote* parties, which is
//! the batch-verification threat model). Everything funnels through
//! SHA-256, so any contributing entropy survives into the output.
//!
//! Tests that need reproducibility never call this — they seed
//! [`crate::HmacDrbg`] directly from a fixed test seed.

use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::sha256::Sha256;

/// Process-local uniqueness counter, consumed once per [`entropy_seed`]
/// call. Module-scoped (rather than function-local) so tests can assert
/// it advances exactly once per call under concurrency.
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A 32-byte seed mixing the OS CSPRNG (when readable), the wall clock,
/// and a process-unique counter. Never blocks, never panics; each call
/// returns a distinct value.
pub fn entropy_seed() -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(b"seccloud-entropy-v1");

    let mut os = [0u8; 32];
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        if f.read_exact(&mut os).is_ok() {
            hasher.update(&os);
        }
    }
    crate::wipe(&mut os);

    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0u128, |d| d.as_nanos());
    hasher.update(&nanos.to_be_bytes());
    // The counter is the only uniqueness guarantee when OS entropy and the
    // clock are both unavailable, so concurrent seeders must observe a
    // single total order of increments.
    // lint: ordering(counter is the sole uniqueness guarantee; increments need a single total order)
    hasher.update(&COUNTER.fetch_add(1, Ordering::SeqCst).to_be_bytes());
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_calls() {
        // The counter alone guarantees this even with no OS entropy and a
        // frozen clock.
        let a = entropy_seed();
        let b = entropy_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_is_well_formed() {
        let s = entropy_seed();
        assert_eq!(s.len(), 32);
        assert_ne!(s, [0u8; 32], "an all-zero seed is vanishingly unlikely");
    }

    #[test]
    fn concurrent_seeders_stay_distinct_and_advance_the_counter() {
        const THREADS: usize = 4;
        const CALLS: usize = 16;
        // lint: ordering(SeqCst: the assertion below compares against concurrent SeqCst increments, so the snapshots must sit in the same total order)
        let before = COUNTER.load(Ordering::SeqCst);
        let mut seeds: Vec<[u8; 32]> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| scope.spawn(|| (0..CALLS).map(|_| entropy_seed()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("seeder thread panicked"))
                .collect()
        });
        // lint: ordering(SeqCst: the assertion below compares against concurrent SeqCst increments, so the snapshots must sit in the same total order)
        let after = COUNTER.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            (THREADS * CALLS) as u64,
            "the counter must advance exactly once per call, never skip or repeat"
        );
        // Even if OS entropy were unavailable and the clock frozen, the
        // counter alone must keep every concurrent seed distinct.
        seeds.sort_unstable();
        let total = seeds.len();
        seeds.dedup();
        assert_eq!(seeds.len(), total, "concurrent seeds must never collide");
    }
}
