//! Epoch-sharded multi-tenant user registry with cross-user batch
//! verification.
//!
//! The paper's batch equations (8)–(9) aggregate designated signatures
//! *across users*, but aggregating a million tenants into one flat set
//! would serialize every audit behind a single verifier. This crate
//! supplies the scale layer between the identity scheme (`seccloud-ibs`)
//! and the audit runtime (`seccloud-resilience`):
//!
//! * **Deterministic epoch sharding** ([`shard_of`]) — every identity maps
//!   to one of `S` shards per epoch via a domain-separated hash, so any
//!   party (user, server, agency) computes the same assignment with no
//!   coordination, and rotation re-deals the whole population by bumping
//!   the epoch.
//! * **Per-shard Merkle commitments** ([`UserRegistry`]) — each shard's
//!   member set (identity, `Q_ID`, enrollment epoch) is committed under
//!   one root, so membership and set-integrity disputes are settled per
//!   shard with `O(log n)` proofs instead of per deployment.
//! * **Cross-user, cross-shard batch verification** ([`EpochVerifier`]) —
//!   per-shard aggregates `(U_A, Σ_A)` in the sense of eq. (8) fold into a
//!   *single* `multi_miller_loop` call across shards: one shared Miller
//!   loop, one final exponentiation, regardless of how many users or
//!   shards contributed.
//!
//! Prepared verifier keys are resolved through the bounded LRU in
//! [`seccloud_pairing::cache`], which is what keeps the per-audit cost at
//! "one cache hit + one `G1` add + one `GT` multiply" instead of a ~1 ms
//! key preparation.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod commit;
mod registry;
mod shard;

pub use batch::EpochVerifier;
pub use commit::{CommitmentCheck, ShardCommitment};
pub use registry::{MembershipProof, UserRecord, UserRegistry};
pub use shard::shard_of;
