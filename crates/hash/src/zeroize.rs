//! Best-effort secret wiping for `Drop` implementations.
//!
//! Key material (DRBG state, IBS master/user secrets) should not outlive
//! the value that owns it: a later heap dump, swap-out, or uninitialized
//! read must not reveal old keys. `seccloud-lint` requires every
//! `// lint: secret` type to wipe itself on drop (rule `secret`); these
//! helpers are the sanctioned way to do it.
//!
//! The workspace is `#![forbid(unsafe_code)]`, so a true `ptr::write_volatile`
//! is unavailable. Instead the writes go through [`core::hint::black_box`]
//! and are followed by a [`compiler_fence`], which together prevent the
//! optimizer from proving the stores dead and eliding them. This is the
//! strongest guarantee expressible in safe Rust and matches what the
//! `zeroize` crate does on its no-`unsafe` fallback path.

use core::sync::atomic::{compiler_fence, Ordering};

/// Overwrites a byte slice with zeros and prevents the stores from being
/// optimized away.
///
/// # Examples
///
/// ```
/// use seccloud_hash::wipe;
/// let mut key = [0xAAu8; 32];
/// wipe(&mut key);
/// assert_eq!(key, [0u8; 32]);
/// ```
pub fn wipe(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        *core::hint::black_box(b) = 0;
    }
    // lint: ordering(SeqCst compiler fence — the strongest available — keeps the wiping stores ordered before the memory is released for reuse)
    compiler_fence(Ordering::SeqCst);
}

/// Overwrites a `Copy` value with a caller-supplied "zero" and prevents the
/// store from being optimized away.
///
/// Useful for secrets that are field elements or curve points rather than
/// byte arrays: pass the type's additive identity as `zero`.
///
/// # Examples
///
/// ```
/// use seccloud_hash::wipe_copy;
/// let mut counter: u64 = 0xDEAD_BEEF;
/// wipe_copy(&mut counter, 0);
/// assert_eq!(counter, 0);
/// ```
pub fn wipe_copy<T: Copy>(slot: &mut T, zero: T) {
    *core::hint::black_box(slot) = zero;
    // lint: ordering(SeqCst compiler fence — the strongest available — keeps the wiping store ordered before the memory is released for reuse)
    compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipe_zeros_every_byte() {
        let mut buf = [0xFFu8; 64];
        wipe(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn wipe_handles_empty_slice() {
        let mut buf: [u8; 0] = [];
        wipe(&mut buf);
    }

    #[test]
    fn wipe_copy_replaces_value() {
        let mut v: u128 = u128::MAX;
        wipe_copy(&mut v, 0);
        assert_eq!(v, 0);
    }
}
