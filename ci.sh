#!/usr/bin/env bash
# Offline CI gate for the SecCloud workspace.
#
# Runs the formatting, lint, and tier-1 test gates exactly as the driver
# does — no network access required (the workspace has zero external
# dependencies). Usage: ./ci.sh
#
# SECCLOUD_TESTKIT_CASES scales the property/fault suites (default 200;
# a nightly run would use 2000). SECCLOUD_TESTKIT_SEED replays a failure.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true
export SECCLOUD_TESTKIT_CASES="${SECCLOUD_TESTKIT_CASES:-200}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 build: cargo build --release (lint below reuses the artifact) =="
cargo build --release

echo "== seccloud-lint (token rules + interprocedural taint / panic_path / arith / dispatch / ctflow / vartime / atomics / locks / blocking / deadline) =="
lint_start=$(date +%s%N)
./target/release/seccloud-lint
lint_end=$(date +%s%N)
echo "lint wall-clock: $(( (lint_end - lint_start) / 1000000 )) ms (SECCLOUD_THREADS=${SECCLOUD_THREADS:-auto})"

echo "== seccloud-lint determinism: serial and 4-thread runs must emit identical reports =="
SECCLOUD_THREADS=1 ./target/release/seccloud-lint --baseline > target/seccloud-lint-t1.json
SECCLOUD_THREADS=4 ./target/release/seccloud-lint --baseline > target/seccloud-lint-t4.json
if ! diff -u target/seccloud-lint-t1.json target/seccloud-lint-t4.json; then
    echo "lint output depends on worker scheduling — findings/allowances must be deterministic"
    exit 1
fi

echo "== seccloud-lint fixture suites (each rule catches its seeded violation, passes its clean twin) =="
for bad in panic index secret ct unsafe transport taint_bad panic_path_bad \
           arith_bad dispatch_bad ctflow_bad vartime_bad atomics_bad \
           locks_bad blocking_bad deadline_bad; do
    if ./target/release/seccloud-lint "crates/analyzer/tests/fixtures/${bad}.rs" > /dev/null; then
        echo "fixture ${bad}.rs should have tripped its rule (exit 1), but passed"
        exit 1
    fi
done
for clean in clean taint_clean panic_path_clean arith_clean dispatch_clean \
             ctflow_clean vartime_clean atomics_clean \
             locks_clean blocking_clean deadline_clean; do
    ./target/release/seccloud-lint "crates/analyzer/tests/fixtures/${clean}.rs" > /dev/null
done

echo "== seccloud-lint SARIF artifact: valid JSON with the expected rule ids =="
./target/release/seccloud-lint --format sarif > target/seccloud-lint.sarif
python3 - <<'EOF'
import json
with open("target/seccloud-lint.sarif") as f:
    sarif = json.load(f)
assert sarif["version"] == "2.1.0", sarif["version"]
rules = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
expected = {"panic", "index", "secret", "ct", "unsafe", "transport", "annotation",
            "taint", "panic_path", "arith", "dispatch", "ctflow", "vartime", "atomics",
            "locks", "blocking", "deadline"}
missing = expected - rules
assert not missing, f"SARIF driver.rules missing ids: {sorted(missing)}"
print(f"sarif ok: {len(rules)} rules, {len(sarif['runs'][0]['results'])} results")
EOF

echo "== seccloud-lint baseline drift vs crates/baselines (both directions) =="
./target/release/seccloud-lint --baseline > target/seccloud-lint-baseline.json
if ! diff -u crates/baselines/seccloud-lint-baseline.json target/seccloud-lint-baseline.json; then
    echo "lint baseline drifted — additions *and* removals must be committed deliberately"
    echo "(regenerate with: ./target/release/seccloud-lint --baseline > crates/baselines/seccloud-lint-baseline.json)"
    exit 1
fi

echo "== tier-1: cargo test -q (auto-detected arithmetic backend) =="
cargo test -q

echo "== arithmetic backend sweep: pairing + equivalence suites per SECCLOUD_ARCH =="
# The full workspace already ran under the auto-detected backend above; the
# sweep pins each portable backend and re-runs the crate that dispatches on
# it (unit tests + the cross-backend property suite).
for arch in reference generic; do
    echo "-- SECCLOUD_ARCH=${arch} --"
    SECCLOUD_ARCH="${arch}" cargo test -q -p seccloud-pairing
done

echo "== resilience unit suite (clock/policy/breaker/transport/driver/pool/sharded) =="
cargo test -q -p seccloud-resilience

echo "== registry suite (sharding, commitments, fused cross-shard batch) =="
cargo test -q -p seccloud-registry

echo "== scale smoke bench + sharded/batch-user suites per SECCLOUD_ARCH =="
# The smoke bench (≤10k simulated users) exercises enrollment, per-shard
# commitments, epoch rotation and both cache arms end to end; the new
# suites re-run under each pinned backend with a reduced case count (the
# reference backend is ~20x slower per pairing).
for arch in reference generic; do
    echo "-- SECCLOUD_ARCH=${arch} --"
    SECCLOUD_ARCH="${arch}" ./target/release/bench_scale --smoke \
        --out "target/BENCH_scale_smoke_${arch}.json"
    SECCLOUD_ARCH="${arch}" SECCLOUD_TESTKIT_CASES=25 cargo test -q --test batch_users
    SECCLOUD_ARCH="${arch}" cargo test -q --test fault_injection sharded
done

echo "== fault/property/recovery suites: serial and 4-thread (${SECCLOUD_TESTKIT_CASES} cases) =="
SECCLOUD_THREADS=1 cargo test -q --test fault_injection --test wire_roundtrip --test batch_users
SECCLOUD_THREADS=4 cargo test -q --test fault_injection --test wire_roundtrip --test batch_users

echo "== socket runtime suite: real TCP + chaos proxy, serial and 4-worker server =="
SECCLOUD_THREADS=1 cargo test -q --test net_rpc
SECCLOUD_THREADS=4 cargo test -q --test net_rpc

echo "== service smoke bench: loopback latency + audit success under socket faults =="
./target/release/bench_service --smoke --out target/BENCH_service_smoke.json

echo "CI OK"
